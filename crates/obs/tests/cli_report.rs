//! CLI behaviour of `mec-obs-report`: trace and profile rendering,
//! empty input, and truncated-final-line salvage. Drives the real
//! binary via `CARGO_BIN_EXE_mec-obs-report`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn report_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mec-obs-report"))
}

fn run_on(content: &str, name: &str) -> Output {
    let path = scratch(name);
    std::fs::write(&path, content).expect("write fixture");
    let out = report_bin().arg(&path).output().expect("spawn report");
    let _ = std::fs::remove_file(&path);
    out
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mec-obs-cli-{}-{name}", std::process::id()));
    p
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const TRACE: &str = concat!(
    r#"{"slot":0,"kind":"run_start","shards":2,"policy":"DynamicRR","seed":7}"#,
    "\n",
    r#"{"slot":3,"kind":"admission","admitted":10,"buffered":0,"spilled":1,"shed":2,"shed_down":0}"#,
    "\n",
    r#"{"slot":9,"kind":"run_end","admitted":10,"shed":2,"completed":9}"#,
    "\n",
);

#[test]
fn renders_a_complete_trace() {
    let out = run_on(TRACE, "ok.jsonl");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("mec-obs report (3 events)"), "{text}");
    assert!(text.contains("admission funnel"), "{text}");
}

#[test]
fn empty_trace_diagnoses_and_fails() {
    for content in ["", "\n\n  \n"] {
        let out = run_on(content, "empty.jsonl");
        assert!(!out.status.success(), "empty input must exit nonzero");
        assert_eq!(stdout(&out), "", "no report for empty input");
        let err = stderr(&out);
        assert!(err.contains("is empty: no events to report"), "{err}");
    }
}

#[test]
fn truncated_last_line_salvages_the_rest() {
    // The writer died mid-flush: the final line is half a JSON object.
    let torn = format!("{TRACE}{}", r#"{"slot":12,"kind":"admis"#);
    let out = run_on(&torn, "torn.jsonl");
    assert!(!out.status.success(), "truncation must exit nonzero");
    let text = stdout(&out);
    assert!(
        text.contains("mec-obs report (3 events)"),
        "complete events still reported: {text}"
    );
    let err = stderr(&out);
    assert!(err.contains("last line 4 is truncated"), "{err}");
    assert!(err.contains("3 complete event(s)"), "{err}");
}

#[test]
fn mid_stream_corruption_is_a_plain_error() {
    let bad = concat!(
        r#"{"slot":0,"kind":"run_start","shards":2}"#,
        "\nnot json at all\n",
        r#"{"slot":9,"kind":"run_end","admitted":1}"#,
        "\n",
    );
    let out = run_on(bad, "corrupt.jsonl");
    assert!(!out.status.success());
    assert_eq!(stdout(&out), "", "corrupt stream renders nothing");
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
}

#[test]
fn profile_stream_renders_phase_report() {
    let profile = concat!(
        r#"{"kind":"profile","version":1,"phases":2}"#,
        "\n",
        r#"{"kind":"phase","id":0,"parent":null,"name":"engine.step","calls":4,"self_ns":1000,"total_ns":5000}"#,
        "\n",
        r#"{"kind":"phase","id":1,"parent":0,"name":"engine.schedule","calls":4,"self_ns":4000,"total_ns":4000}"#,
        "\n",
        r#"{"kind":"phase_slot","id":0,"slot":0,"self_ns":1000}"#,
        "\n",
    );
    let out = run_on(profile, "profile.jsonl");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("engine.step"), "{text}");
    assert!(text.contains("engine.schedule"), "{text}");
}

#[test]
fn truncated_profile_salvages_and_fails() {
    let torn = concat!(
        r#"{"kind":"profile","version":1,"phases":1}"#,
        "\n",
        r#"{"kind":"phase","id":0,"parent":null,"name":"engine.step","calls":4,"self_ns":1000,"total_ns":1000}"#,
        "\n",
        r#"{"kind":"phase_slot","id":0,"sl"#,
    );
    let out = run_on(torn, "profile-torn.jsonl");
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("engine.step"), "{text}");
    assert!(
        stderr(&out).contains("truncated"),
        "stderr: {}",
        stderr(&out)
    );
}
