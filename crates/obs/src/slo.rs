//! Declarative service-level objectives with multi-window error-budget
//! burn rates.
//!
//! A spec is a compact string — `deadline_hit_rate>=0.95@512` or
//! `p99_latency<=250@512` — parsed into an [`SloSpec`]: an objective, a
//! threshold, and a sliding window in slots. The [`SloEngine`] consumes
//! one [`SlotSample`] per slot (request outcomes and latency samples,
//! all derived from deterministic quantities, so SLO state and its
//! trace events stay byte-reproducible for a fixed seed) and maintains,
//! per spec:
//!
//! * the **value** over the window (hit rate, or the latency quantile
//!   estimated from a log-linear windowed histogram);
//! * the **error-budget burn rate** at two window lengths — the full
//!   window and a fast window of one eighth its length — where a burn
//!   of 1.0 means "spending the budget exactly as fast as the SLO
//!   allows";
//! * a breach state machine in the multi-window style: **breach** when
//!   both burns reach 1.0 (the fast window confirms the slow one, so a
//!   short blip does not page), **recover** when the fast window's burn
//!   drops below 1.0 (the slow window may stay polluted by the outage
//!   long after the system is healthy again).
//!
//! Transitions are returned to the caller for `slo_breach` /
//! `slo_recovered` trace events; [`SloEngine::render_json`] produces
//! the deterministic document served at `/slo.json`.

use crate::registry::{log_linear_bounds, WindowedHistogram};
use std::collections::VecDeque;

/// Typed parse failure for SLO spec strings. [`std::fmt::Display`]
/// preserves the exact human-readable messages earlier releases
/// returned as bare strings, so CLI error output is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloParseError {
    /// No `@window` suffix.
    MissingWindow(String),
    /// The `@window` suffix did not parse as a slot count.
    BadWindow(String),
    /// The window parsed but was zero.
    ZeroWindow(String),
    /// Neither `>=` nor `<=` appeared in the expression.
    MissingComparator(String),
    /// The threshold did not parse as a number.
    BadThreshold(String),
    /// `deadline_hit_rate` used with a comparator other than `>=`.
    HitRateNeedsGe(String),
    /// A hit-rate threshold outside `(0, 1)`.
    HitRateOutOfRange(String),
    /// A latency objective used with a comparator other than `<=`.
    LatencyNeedsLe(String),
    /// A latency threshold that is not positive and finite.
    LatencyOutOfRange(String),
    /// A metric name this engine does not know.
    UnknownMetric {
        /// The unrecognized metric token.
        metric: String,
        /// The full spec it appeared in.
        raw: String,
    },
}

impl std::fmt::Display for SloParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingWindow(raw) => write!(f, "missing '@window' suffix in {raw:?}"),
            Self::BadWindow(raw) => {
                write!(f, "bad window in {raw:?} (want a positive slot count)")
            }
            Self::ZeroWindow(raw) => write!(f, "window must be positive in {raw:?}"),
            Self::MissingComparator(raw) => write!(f, "missing '>=' or '<=' in {raw:?}"),
            Self::BadThreshold(raw) => write!(f, "bad threshold in {raw:?}"),
            Self::HitRateNeedsGe(raw) => write!(f, "deadline_hit_rate needs '>=' in {raw:?}"),
            Self::HitRateOutOfRange(raw) => {
                write!(f, "hit-rate threshold must be in (0,1) in {raw:?}")
            }
            Self::LatencyNeedsLe(raw) => write!(f, "latency objectives need '<=' in {raw:?}"),
            Self::LatencyOutOfRange(raw) => {
                write!(f, "latency threshold must be positive in {raw:?}")
            }
            Self::UnknownMetric { metric, raw } => {
                write!(f, "unknown SLO metric {metric:?} in {raw:?}")
            }
        }
    }
}

impl std::error::Error for SloParseError {}

/// What an SLO constrains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Fraction of dispatched requests that completed in time
    /// (completions vs. expiries + aborts + sheds).
    DeadlineHitRate,
    /// A latency quantile in virtual milliseconds; the payload is the
    /// quantile `q` in `(0, 1)`.
    LatencyQuantile(f64),
}

/// One parsed SLO specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    raw: String,
    kind: SloKind,
    threshold: f64,
    window: u64,
}

impl SloSpec {
    /// Parses specs like `deadline_hit_rate>=0.95@512` and
    /// `p99_latency<=250@512`. Supported metrics: `deadline_hit_rate`
    /// (with `>=`, threshold in `(0, 1)`) and `p50_latency` /
    /// `p95_latency` / `p99_latency` / `p999_latency` (with `<=`,
    /// threshold in virtual milliseconds). The `@N` suffix is the
    /// sliding window in slots.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SloParseError`] for unknown metrics, wrong
    /// comparison direction, or out-of-range thresholds/windows; its
    /// `Display` carries the same human-readable message as before.
    pub fn parse(text: &str) -> Result<Self, SloParseError> {
        let raw = text.trim().to_string();
        let (expr, window) = raw
            .split_once('@')
            .ok_or_else(|| SloParseError::MissingWindow(raw.clone()))?;
        let window: u64 = window
            .trim()
            .parse()
            .map_err(|_| SloParseError::BadWindow(raw.clone()))?;
        if window == 0 {
            return Err(SloParseError::ZeroWindow(raw));
        }
        let (metric, op, threshold) = if let Some((m, t)) = expr.split_once(">=") {
            (m.trim(), ">=", t.trim())
        } else if let Some((m, t)) = expr.split_once("<=") {
            (m.trim(), "<=", t.trim())
        } else {
            return Err(SloParseError::MissingComparator(raw));
        };
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| SloParseError::BadThreshold(raw.clone()))?;
        let kind = match metric {
            "deadline_hit_rate" => {
                if op != ">=" {
                    return Err(SloParseError::HitRateNeedsGe(raw));
                }
                if !(threshold > 0.0 && threshold < 1.0) {
                    return Err(SloParseError::HitRateOutOfRange(raw));
                }
                SloKind::DeadlineHitRate
            }
            "p50_latency" | "p95_latency" | "p99_latency" | "p999_latency" => {
                if op != "<=" {
                    return Err(SloParseError::LatencyNeedsLe(raw));
                }
                if !(threshold > 0.0 && threshold.is_finite()) {
                    return Err(SloParseError::LatencyOutOfRange(raw));
                }
                let q = match metric {
                    "p50_latency" => 0.50,
                    "p95_latency" => 0.95,
                    "p99_latency" => 0.99,
                    _ => 0.999,
                };
                SloKind::LatencyQuantile(q)
            }
            other => {
                return Err(SloParseError::UnknownMetric {
                    metric: other.to_string(),
                    raw,
                })
            }
        };
        Ok(Self {
            raw,
            kind,
            threshold,
            window,
        })
    }

    /// The spec exactly as written (label value for gauges and events).
    pub fn label(&self) -> &str {
        &self.raw
    }

    /// What this spec constrains.
    pub fn kind(&self) -> SloKind {
        self.kind
    }

    /// The threshold (a rate or virtual milliseconds, per the kind).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The sliding window in slots.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The error budget: the bad-event fraction the SLO tolerates.
    fn budget(&self) -> f64 {
        match self.kind {
            SloKind::DeadlineHitRate => 1.0 - self.threshold,
            SloKind::LatencyQuantile(q) => 1.0 - q,
        }
    }
}

/// One slot's worth of SLO-relevant outcomes, all deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotSample<'a> {
    /// Requests that completed in time this slot.
    pub good: u64,
    /// Requests lost this slot: expired, aborted, or shed.
    pub bad: u64,
    /// Latencies (virtual ms) of this slot's completions.
    pub latencies_ms: &'a [f64],
}

/// A breach-state change to surface as a trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTransition {
    /// Index into [`SloEngine::specs`].
    pub index: usize,
    /// `true` = entered breach, `false` = recovered.
    pub breached: bool,
    /// The windowed value at the transition.
    pub value: f64,
    /// Fast-window burn rate at the transition.
    pub burn_fast: f64,
    /// Slow-window burn rate at the transition.
    pub burn_slow: f64,
}

/// Good/bad totals over a sliding slot window (subtract-on-evict).
#[derive(Debug)]
struct WindowCounts {
    ring: VecDeque<(u64, u64)>,
    cap: usize,
    good: u64,
    bad: u64,
}

impl WindowCounts {
    fn new(cap: u64) -> Self {
        Self {
            ring: VecDeque::new(),
            cap: cap.max(1) as usize,
            good: 0,
            bad: 0,
        }
    }

    fn push(&mut self, good: u64, bad: u64) {
        self.ring.push_back((good, bad));
        self.good += good;
        self.bad += bad;
        if self.ring.len() > self.cap {
            let (g, b) = self.ring.pop_front().expect("non-empty ring");
            self.good -= g;
            self.bad -= b;
        }
    }

    fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Bad-event fraction; 0 when the window saw no traffic.
    fn bad_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.bad as f64 / total as f64
        }
    }
}

/// Windowed latency distribution. A thin wrapper over the shared
/// [`WindowedHistogram`]: bucket filling and quantile estimation live in
/// one place (`registry.rs`) instead of being re-implemented here.
#[derive(Debug)]
struct LatencyWindow {
    hist: WindowedHistogram,
}

impl LatencyWindow {
    fn new(cap: u64) -> Self {
        // 1 ms to 100 s at nine steps per decade resolves p999 for any
        // latency profile this workspace produces.
        let bounds = log_linear_bounds(1.0, 100_000.0, 9);
        Self {
            hist: WindowedHistogram::new(&bounds, cap.max(1) as usize),
        }
    }

    fn push(&mut self, latencies_ms: &[f64]) {
        self.hist.push_slot(latencies_ms);
    }

    fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }
}

#[derive(Debug)]
struct SpecState {
    fast: WindowCounts,
    slow: WindowCounts,
    latency: Option<LatencyWindow>,
    breached: bool,
    breaches: u64,
    value: f64,
    burn_fast: f64,
    burn_slow: f64,
}

/// The point-in-time state of one SLO, for gauges and `/slo.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The windowed value (hit rate or latency quantile).
    pub value: f64,
    /// Fast-window burn rate.
    pub burn_fast: f64,
    /// Slow-window burn rate.
    pub burn_slow: f64,
    /// Whether the SLO is currently in breach.
    pub breached: bool,
    /// Breaches entered so far.
    pub breaches: u64,
}

/// Evaluates a set of [`SloSpec`]s slot by slot.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
}

impl SloEngine {
    /// An engine over `specs` (possibly empty — then it is a no-op).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs
            .iter()
            .map(|s| SpecState {
                fast: WindowCounts::new(s.window / 8),
                slow: WindowCounts::new(s.window),
                latency: match s.kind {
                    SloKind::LatencyQuantile(_) => Some(LatencyWindow::new(s.window)),
                    SloKind::DeadlineHitRate => None,
                },
                breached: false,
                breaches: 0,
                value: match s.kind {
                    SloKind::DeadlineHitRate => 1.0,
                    SloKind::LatencyQuantile(_) => 0.0,
                },
                burn_fast: 0.0,
                burn_slow: 0.0,
            })
            .collect();
        Self { specs, states }
    }

    /// Whether there is anything to evaluate.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specs, in evaluation order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Feeds one slot's outcomes to every spec and returns the breach
    /// transitions that fired.
    pub fn observe_slot(&mut self, sample: SlotSample<'_>) -> Vec<SloTransition> {
        let mut transitions = Vec::new();
        for (index, (spec, state)) in self.specs.iter().zip(&mut self.states).enumerate() {
            let (good, bad) = match spec.kind {
                SloKind::DeadlineHitRate => (sample.good, sample.bad),
                SloKind::LatencyQuantile(_) => {
                    let slow = sample
                        .latencies_ms
                        .iter()
                        .filter(|&&v| v > spec.threshold)
                        .count() as u64;
                    (sample.latencies_ms.len() as u64 - slow, slow)
                }
            };
            state.fast.push(good, bad);
            state.slow.push(good, bad);
            let budget = spec.budget();
            state.burn_fast = state.fast.bad_fraction() / budget;
            state.burn_slow = state.slow.bad_fraction() / budget;
            state.value = match spec.kind {
                SloKind::DeadlineHitRate => {
                    if state.slow.total() == 0 {
                        1.0
                    } else {
                        state.slow.good as f64 / state.slow.total() as f64
                    }
                }
                SloKind::LatencyQuantile(q) => {
                    let lat = state.latency.as_mut().expect("latency spec has a window");
                    lat.push(sample.latencies_ms);
                    lat.quantile(q)
                }
            };
            let was = state.breached;
            if !was && state.burn_fast >= 1.0 && state.burn_slow >= 1.0 {
                state.breached = true;
                state.breaches += 1;
            } else if was && state.burn_fast < 1.0 {
                state.breached = false;
            }
            if state.breached != was {
                transitions.push(SloTransition {
                    index,
                    breached: state.breached,
                    value: state.value,
                    burn_fast: state.burn_fast,
                    burn_slow: state.burn_slow,
                });
            }
        }
        transitions
    }

    /// The current state of spec `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn status(&self, index: usize) -> SloStatus {
        let s = &self.states[index];
        SloStatus {
            value: s.value,
            burn_fast: s.burn_fast,
            burn_slow: s.burn_slow,
            breached: s.breached,
            breaches: s.breaches,
        }
    }

    /// Renders the deterministic `/slo.json` document for slot `slot`.
    pub fn render_json(&self, slot: u64) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        }
        let slos = self
            .specs
            .iter()
            .zip(&self.states)
            .map(|(spec, s)| {
                format!(
                    "{{\"spec\":\"{}\",\"window\":{},\"value\":{},\"burn_fast\":{},\
                     \"burn_slow\":{},\"breached\":{},\"breaches\":{}}}",
                    crate::trace::escape_json(&spec.raw),
                    spec.window,
                    num(s.value),
                    num(s.burn_fast),
                    num(s.burn_slow),
                    s.breached,
                    s.breaches
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"slot\":{slot},\"slos\":[{slos}]}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit_rate(spec: &str) -> SloSpec {
        SloSpec::parse(spec).unwrap()
    }

    #[test]
    fn parses_both_metric_families() {
        let s = hit_rate("deadline_hit_rate>=0.95@512");
        assert_eq!(s.kind(), SloKind::DeadlineHitRate);
        assert_eq!(s.threshold(), 0.95);
        assert_eq!(s.window(), 512);
        assert_eq!(s.label(), "deadline_hit_rate>=0.95@512");
        let l = hit_rate(" p99_latency <= 250 @ 64 ");
        assert_eq!(l.kind(), SloKind::LatencyQuantile(0.99));
        assert_eq!(l.threshold(), 250.0);
        assert_eq!(l.window(), 64);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "deadline_hit_rate>=0.95",    // no window
            "deadline_hit_rate<=0.95@10", // wrong direction
            "deadline_hit_rate>=1.5@10",  // out of range
            "p99_latency>=250@10",        // wrong direction
            "p99_latency<=-1@10",         // negative
            "throughput>=5@10",           // unknown metric
            "deadline_hit_rate>=0.95@0",  // zero window
            "deadline_hit_rate~=0.95@10", // bad operator
            "deadline_hit_rate>=zero@10", // bad threshold
            "deadline_hit_rate>=0.9@-2",  // bad window
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        use SloParseError as E;
        let err = |s: &str| SloSpec::parse(s).unwrap_err();
        assert_eq!(
            err("deadline_hit_rate>=0.95"),
            E::MissingWindow("deadline_hit_rate>=0.95".into())
        );
        assert_eq!(
            err("deadline_hit_rate>=0.9@-2"),
            E::BadWindow("deadline_hit_rate>=0.9@-2".into())
        );
        assert_eq!(
            err("deadline_hit_rate>=0.95@0"),
            E::ZeroWindow("deadline_hit_rate>=0.95@0".into())
        );
        assert_eq!(
            err("deadline_hit_rate~=0.95@10"),
            E::MissingComparator("deadline_hit_rate~=0.95@10".into())
        );
        assert_eq!(
            err("deadline_hit_rate>=zero@10"),
            E::BadThreshold("deadline_hit_rate>=zero@10".into())
        );
        assert_eq!(
            err("deadline_hit_rate<=0.95@10"),
            E::HitRateNeedsGe("deadline_hit_rate<=0.95@10".into())
        );
        assert_eq!(
            err("deadline_hit_rate>=1.5@10"),
            E::HitRateOutOfRange("deadline_hit_rate>=1.5@10".into())
        );
        assert_eq!(
            err("p99_latency>=250@10"),
            E::LatencyNeedsLe("p99_latency>=250@10".into())
        );
        assert_eq!(
            err("p99_latency<=-1@10"),
            E::LatencyOutOfRange("p99_latency<=-1@10".into())
        );
        assert_eq!(
            err("throughput>=5@10"),
            E::UnknownMetric {
                metric: "throughput".into(),
                raw: "throughput>=5@10".into()
            }
        );
        // Display keeps the legacy message text.
        assert_eq!(
            err("deadline_hit_rate>=0.95").to_string(),
            "missing '@window' suffix in \"deadline_hit_rate>=0.95\""
        );
    }

    #[test]
    fn breach_needs_both_windows_and_recovery_needs_only_fast() {
        // Window 16 → fast window 2. Budget = 5%.
        let mut e = SloEngine::new(vec![hit_rate("deadline_hit_rate>=0.95@16")]);
        // Healthy traffic: no transitions.
        for _ in 0..16 {
            let t = e.observe_slot(SlotSample {
                good: 100,
                bad: 0,
                latencies_ms: &[],
            });
            assert!(t.is_empty());
        }
        assert!(!e.status(0).breached);
        assert_eq!(e.status(0).value, 1.0);
        // A partial outage: 20% of each slot's requests fail (4x the
        // 5% budget). The fast window trips right away but the slow
        // window needs several bad slots' mass to confirm: no breach on
        // the very first bad slot.
        let first = e.observe_slot(SlotSample {
            good: 80,
            bad: 20,
            latencies_ms: &[],
        });
        assert!(first.is_empty(), "slow window must confirm first");
        assert!(e.status(0).burn_fast >= 1.0, "fast window alone trips");
        let mut breach_seen = false;
        for _ in 0..8 {
            for t in e.observe_slot(SlotSample {
                good: 80,
                bad: 20,
                latencies_ms: &[],
            }) {
                assert!(t.breached);
                assert!(t.burn_fast >= 1.0 && t.burn_slow >= 1.0);
                breach_seen = true;
            }
        }
        assert!(breach_seen);
        assert!(e.status(0).breached);
        assert_eq!(e.status(0).breaches, 1);
        // Recovery: two healthy slots clear the fast window even though
        // the slow window still remembers the outage.
        let mut recovered = false;
        for _ in 0..2 {
            for t in e.observe_slot(SlotSample {
                good: 100,
                bad: 0,
                latencies_ms: &[],
            }) {
                assert!(!t.breached);
                recovered = true;
            }
        }
        assert!(recovered);
        assert!(!e.status(0).breached);
        assert!(e.status(0).burn_slow >= 1.0, "slow window stays polluted");
    }

    #[test]
    fn empty_slots_keep_previous_state() {
        let mut e = SloEngine::new(vec![hit_rate("deadline_hit_rate>=0.9@8")]);
        for _ in 0..20 {
            assert!(e
                .observe_slot(SlotSample {
                    good: 0,
                    bad: 0,
                    latencies_ms: &[],
                })
                .is_empty());
        }
        let s = e.status(0);
        assert!(!s.breached);
        assert_eq!(s.value, 1.0);
        assert_eq!(s.burn_fast, 0.0);
    }

    #[test]
    fn latency_quantile_tracks_the_window() {
        let mut e = SloEngine::new(vec![hit_rate("p99_latency<=250@8")]);
        // All fast: no breach, low p99.
        for _ in 0..8 {
            let t = e.observe_slot(SlotSample {
                good: 0,
                bad: 0,
                latencies_ms: &[10.0; 100],
            });
            assert!(t.is_empty());
        }
        assert!(e.status(0).value <= 20.0, "{}", e.status(0).value);
        // All slow: p99 climbs past the threshold and the SLO breaches.
        let mut breached = false;
        for _ in 0..8 {
            for t in e.observe_slot(SlotSample {
                good: 0,
                bad: 0,
                latencies_ms: &[400.0; 100],
            }) {
                breached |= t.breached;
            }
        }
        assert!(breached);
        assert!(e.status(0).value > 250.0);
    }

    #[test]
    fn render_json_is_deterministic_and_parseable() {
        let mut e = SloEngine::new(vec![
            hit_rate("deadline_hit_rate>=0.95@16"),
            hit_rate("p99_latency<=250@16"),
        ]);
        e.observe_slot(SlotSample {
            good: 99,
            bad: 1,
            latencies_ms: &[12.0, 200.0],
        });
        let doc = e.render_json(41);
        assert_eq!(doc, e.render_json(41));
        let parsed = crate::json::parse_json(&doc).unwrap();
        assert_eq!(parsed.get("slot").and_then(|v| v.as_u64()), Some(41));
        let slos = parsed.get("slos").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(slos.len(), 2);
        assert_eq!(
            slos[0].get("spec").and_then(|v| v.as_str()),
            Some("deadline_hit_rate>=0.95@16")
        );
        assert_eq!(
            slos[0].get("breached"),
            Some(&crate::json::JsonValue::Bool(false))
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `label()` is the canonical rendering: every valid spec
            /// re-parses from its label to an identical spec.
            #[test]
            fn spec_parse_render_round_trips(
                metric in 0usize..5,
                window in 1u64..100_000,
                hit_bp in 1u64..9_999,
                latency_ms in 1u64..1_000_000,
            ) {
                let metric_name = [
                    "deadline_hit_rate",
                    "p50_latency",
                    "p95_latency",
                    "p99_latency",
                    "p999_latency",
                ][metric];
                let text = if metric == 0 {
                    format!("{metric_name}>={}@{window}", hit_bp as f64 / 10_000.0)
                } else {
                    format!("{metric_name}<={latency_ms}@{window}")
                };
                let spec = SloSpec::parse(&text).expect("generated specs are valid");
                prop_assert_eq!(spec.window(), window);
                if metric == 0 {
                    prop_assert_eq!(spec.kind(), SloKind::DeadlineHitRate);
                    prop_assert!((spec.threshold() - hit_bp as f64 / 10_000.0).abs() < 1e-12);
                } else {
                    prop_assert_eq!(spec.threshold(), latency_ms as f64);
                }
                let again = SloSpec::parse(spec.label()).expect("label re-parses");
                prop_assert_eq!(again, spec);
            }
        }
    }
}
