//! # mec-obs
//!
//! The observability layer for the MEC serving stack: a lock-cheap
//! metrics [`Registry`] (counters, gauges, striped-atomic histograms)
//! with Prometheus-text and JSON exposition, a slot-attributed
//! structured event-tracing API ([`event!`], [`span!`], [`TraceRing`],
//! [`TraceWriter`]), a tiny scrape server ([`MetricsServer`]), and a
//! post-hoc report builder ([`report`]) that renders arm-elimination
//! timelines, admission funnels, and latency histograms from a JSONL
//! trace.
//!
//! ## Feature gating
//!
//! This crate itself has no features. The [`event!`] and [`span!`]
//! macros expand to code guarded by `#[cfg(feature = "obs")]` — the cfg
//! is evaluated in the **calling** crate, so a consumer that declares
//! an `obs` feature gets tracing and wall-clock spans compiled in only
//! when that feature is on, and a compile-time no-op (arguments
//! type-checked, never evaluated) when it is off. The [`lifecycle!`]
//! macro works the same way against a consumer `lifecycle` feature for
//! per-request lifecycle records. The registry is not gated: counters
//! are integer atomics cheap enough to stay always-on, which lets
//! runtime snapshots source their counters from the registry
//! unconditionally.
//!
//! ## Determinism contract
//!
//! Everything that feeds snapshots or traces must derive from
//! deterministic quantities — virtual slots, event counts, rewards.
//! Wall-clock timings ([`span!`]) go to live histograms only and must
//! never cross into snapshots or the trace; the supervisor drains
//! worker [`TraceRing`]s at the slot barrier in shard order, so a traced
//! run replayed with the same seed yields an identical event stream.
//!
//! ## Example
//!
//! ```
//! use mec_obs::{Registry, TraceRing, EventSink};
//!
//! let registry = Registry::new();
//! let restarts = registry.counter("mec_serve_restarts_total", "shard restarts", &[("shard", "0")]);
//! restarts.inc();
//! assert!(registry.render_prometheus().contains("mec_serve_restarts_total{shard=\"0\"} 1"));
//!
//! let ring = TraceRing::with_capacity(1024);
//! // In a crate with an `obs` feature this is the `mec_obs::event!` macro;
//! // the expansion records through the EventSink trait:
//! ring.record(mec_obs::TraceEvent {
//!     slot: 3,
//!     kind: "fault_injected".into(),
//!     fields: vec![("shard", 0u64.into())],
//! });
//! assert_eq!(ring.drain().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod flight;
pub mod json;
pub mod lifecycle;
pub mod prof;
pub mod registry;
pub mod report;
pub mod server;
pub mod slo;
pub mod trace;

pub use drift::PageHinkley;
pub use flight::{
    DecisionSnapshot, FlightRecorder, FlightTrigger, FlightTriggerParseError, FlightTriggerSet,
};
pub use lifecycle::{LifecycleRecord, LifecycleRing, LifecycleSink, LifecycleWriter};
pub use prof::{PhaseNode, ProfileReport};
pub use registry::{
    log_linear_bounds, BoundsMismatch, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    WindowedHistogram, STRIPES,
};
pub use report::{
    build_flight_report, build_lifecycle_report, build_report, sniff_flight, sniff_lifecycle,
    FlightStreamReport, LifecycleReport, RunReport, LATENCY_MS_BOUNDS,
};
pub use server::{MetricsServer, SharedDoc};
pub use slo::{SloEngine, SloParseError, SloSpec, SloStatus, SloTransition, SlotSample};
pub use trace::{EventSink, TraceEvent, TraceRing, TraceWriter, Value};

/// Bucket bounds (ms) for wall-clock engine-step timing histograms.
pub const STEP_MS_BOUNDS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0];

/// Bucket bounds (slots) for recovery-outage histograms.
pub const RECOVERY_SLOTS_BOUNDS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0];

/// Anything that can lend a [`Histogram`] to [`span!`] — a histogram,
/// an `Arc` of one, or an `Option` of either (recording is skipped on
/// `None`).
pub trait AsHistogram {
    /// The histogram to record into, if any.
    fn as_histogram(&self) -> Option<&Histogram>;
}

impl AsHistogram for Histogram {
    fn as_histogram(&self) -> Option<&Histogram> {
        Some(self)
    }
}

impl AsHistogram for std::sync::Arc<Histogram> {
    fn as_histogram(&self) -> Option<&Histogram> {
        Some(self)
    }
}

impl<T: AsHistogram> AsHistogram for Option<T> {
    fn as_histogram(&self) -> Option<&Histogram> {
        self.as_ref().and_then(AsHistogram::as_histogram)
    }
}

impl<T: AsHistogram> AsHistogram for &T {
    fn as_histogram(&self) -> Option<&Histogram> {
        (*self).as_histogram()
    }
}

/// Records one structured [`TraceEvent`] into an [`EventSink`].
///
/// ```ignore
/// mec_obs::event!(sink, slot, "restart", shard = shard, replayed = n, ok = true);
/// ```
///
/// In a consumer crate compiled **with** its `obs` feature this
/// constructs the event (field keys are the identifiers, values go
/// through [`Value::from`]) and calls [`EventSink::record`]. Without
/// the feature it compiles to nothing: the arguments are type-checked
/// but never evaluated.
#[macro_export]
macro_rules! event {
    ($sink:expr, $slot:expr, $kind:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[cfg(feature = "obs")]
        {
            $crate::EventSink::record(
                &$sink,
                $crate::TraceEvent {
                    slot: $slot,
                    kind: ::std::string::String::from($kind),
                    fields: ::std::vec![$((stringify!($key), $crate::Value::from($val))),*],
                },
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            if false {
                let _ = (&$sink, &$slot, &$kind);
                $(let _ = &$val;)*
            }
        }
    }};
}

/// Times an expression into a wall-clock [`Histogram`] (milliseconds),
/// returning the expression's value.
///
/// ```ignore
/// let report = mec_obs::span!(step_hist, engine.step(policy)?);
/// ```
///
/// The first argument is anything implementing [`AsHistogram`]; `None`
/// skips recording. Without the consumer's `obs` feature the timing
/// disappears entirely and only the body remains. Wall-clock spans are
/// live-telemetry only — never write them into snapshots or traces.
#[macro_export]
macro_rules! span {
    ($hist:expr, $body:expr) => {{
        #[cfg(feature = "obs")]
        {
            let __obs_start = ::std::time::Instant::now();
            let __obs_out = $body;
            if let ::std::option::Option::Some(h) = $crate::AsHistogram::as_histogram(&$hist) {
                h.observe(__obs_start.elapsed().as_secs_f64() * 1e3);
            }
            __obs_out
        }
        #[cfg(not(feature = "obs"))]
        {
            if false {
                let _ = &$hist;
            }
            $body
        }
    }};
}

/// Records one [`LifecycleRecord`] into a [`LifecycleSink`].
///
/// ```ignore
/// mec_obs::lifecycle!(sink, id, "admit", slot, shard as i64, bs as i64);
/// ```
///
/// Mirrors [`event!`]: in a consumer crate compiled **with** its
/// `lifecycle` feature this builds the record and calls
/// [`LifecycleSink::life`]; without the feature it compiles to nothing
/// (arguments type-checked, never evaluated), so the per-request hot
/// path carries zero cost in plain builds.
#[macro_export]
macro_rules! lifecycle {
    ($sink:expr, $id:expr, $stage:expr, $slot:expr, $shard:expr, $bs:expr $(,)?) => {{
        #[cfg(feature = "lifecycle")]
        {
            $crate::LifecycleSink::life(
                &$sink,
                $crate::LifecycleRecord {
                    id: $id,
                    stage: $stage,
                    slot: $slot,
                    shard: $shard,
                    bs: $bs,
                },
            );
        }
        #[cfg(not(feature = "lifecycle"))]
        {
            if false {
                let _ = (&$sink, &$id, &$stage, &$slot, &$shard, &$bs);
            }
        }
    }};
}

/// Opens a profiler span that lasts to the end of the enclosing scope.
///
/// ```ignore
/// mec_obs::prof_scope!("engine.step");
/// ```
///
/// In a consumer crate compiled **with** its `prof` feature this binds
/// an RAII guard from [`prof::enter`]; without the feature it compiles
/// to nothing (the name is type-checked, never evaluated). Like
/// [`event!`]/[`span!`], the cfg is evaluated in the calling crate.
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        #[cfg(feature = "prof")]
        let __prof_guard = $crate::prof::enter($name);
        #[cfg(not(feature = "prof"))]
        let __prof_guard = {
            if false {
                let _ = &$name;
            }
        };
        let _ = &__prof_guard;
    };
}

/// Times an expression as a profiler span, returning its value.
///
/// ```ignore
/// let frac = mec_obs::prof_span!("slotlp.solve", lp.solve(len)?);
/// ```
#[macro_export]
macro_rules! prof_span {
    ($name:expr, $body:expr) => {{
        #[cfg(feature = "prof")]
        {
            let __prof_guard = $crate::prof::enter($name);
            let __prof_out = $body;
            drop(__prof_guard);
            __prof_out
        }
        #[cfg(not(feature = "prof"))]
        {
            if false {
                let _ = &$name;
            }
            $body
        }
    }};
}

/// Sets the virtual slot subsequent spans on this thread are attributed
/// to (see [`prof::set_slot`]). No-op without the caller's `prof`
/// feature.
#[macro_export]
macro_rules! prof_slot {
    ($slot:expr) => {{
        #[cfg(feature = "prof")]
        {
            $crate::prof::set_slot($slot);
        }
        #[cfg(not(feature = "prof"))]
        {
            if false {
                let _ = &$slot;
            }
        }
    }};
}

/// Adds to a named counter on the currently open profiler span (see
/// [`prof::add_count`]). No-op without the caller's `prof` feature.
#[macro_export]
macro_rules! prof_count {
    ($name:expr, $n:expr) => {{
        #[cfg(feature = "prof")]
        {
            $crate::prof::add_count($name, $n);
        }
        #[cfg(not(feature = "prof"))]
        {
            if false {
                let _ = (&$name, &$n);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_histogram_resolves_options_and_arcs() {
        let h = std::sync::Arc::new(Histogram::with_bounds(&[1.0]));
        assert!(h.as_histogram().is_some());
        assert!(Some(std::sync::Arc::clone(&h)).as_histogram().is_some());
        let none: Option<std::sync::Arc<Histogram>> = None;
        assert!(none.as_histogram().is_none());
    }
}
