//! A minimal reader for the JSON this workspace writes.
//!
//! The workspace vendors no JSON library. The trace format is
//! deliberately restricted to one-line objects with scalar values
//! (string / number / bool / null); [`parse_flat_object`] covers
//! exactly what [`crate::report`] needs and still rejects nesting — by
//! construction the tracer never emits it. The bench baselines
//! (`results/BENCH_*.json`) do nest, so [`parse_json`] additionally
//! accepts arbitrary arrays and objects.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array (only produced by [`parse_json`]).
    Arr(Vec<JsonValue>),
    /// An object (only produced by [`parse_json`]).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            Self::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8
                    // because it arrived as &str).
                    let rest = &self.as_str()[self.pos..];
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn as_str(&self) -> &'a str {
        std::str::from_utf8(self.bytes).expect("input was a str")
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        self.as_str()[start..self.pos]
            .parse::<f64>()
            .map_err(|_| ParseError {
                at: start,
                message: "bad number".to_string(),
            })
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.as_str()[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't' | b'f' | b'n') => {
                for (word, value) in [
                    ("true", JsonValue::Bool(true)),
                    ("false", JsonValue::Bool(false)),
                    ("null", JsonValue::Null),
                ] {
                    if self.literal(word) {
                        return Ok(value);
                    }
                }
                self.err("expected a scalar value")
            }
            Some(b'-' | b'0'..=b'9') => Ok(JsonValue::Num(self.number()?)),
            Some(b'{' | b'[') => self.err("nested values are not supported"),
            _ => self.err("expected a scalar value"),
        }
    }

    /// Recursion depth cap for [`parse_json`] — bounds stack use on
    /// adversarial input.
    const MAX_DEPTH: usize = 64;

    fn any_value(&mut self, depth: usize) -> Result<JsonValue, ParseError> {
        if depth >= Self::MAX_DEPTH {
            return self.err("too deeply nested");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth).map(JsonValue::Obj),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.any_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            _ => self.value(),
        }
    }

    fn object(&mut self, depth: usize) -> Result<BTreeMap<String, JsonValue>, ParseError> {
        let mut out = BTreeMap::new();
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            out.insert(key, self.any_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one complete JSON value, nesting allowed.
///
/// # Errors
///
/// Fails on malformed JSON, trailing input, or nesting deeper than an
/// internal cap.
pub fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = c.any_value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing input after value");
    }
    Ok(value)
}

/// Parses one flat JSON object line into key → scalar pairs.
///
/// # Errors
///
/// Fails on anything that is not a single flat object of scalar values
/// (see module docs).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, ParseError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    c.skip_ws();
    c.expect(b'{')?;
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.value()?;
            out.insert(key, value);
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                _ => return c.err("expected ',' or '}'"),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing input after object");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_tracer_output() {
        use crate::trace::{TraceEvent, Value};
        let e = TraceEvent {
            slot: 42,
            kind: "arm_eliminated".to_string(),
            fields: vec![
                ("shard", Value::U64(2)),
                ("value_mhz", Value::F64(437.5)),
                ("note", Value::Str("a \"b\"\nc".to_string())),
                ("ok", Value::Bool(false)),
            ],
        };
        let parsed = parse_flat_object(&e.to_json_line()).unwrap();
        assert_eq!(parsed["slot"].as_u64(), Some(42));
        assert_eq!(parsed["kind"].as_str(), Some("arm_eliminated"));
        assert_eq!(parsed["shard"].as_u64(), Some(2));
        assert_eq!(parsed["value_mhz"].as_f64(), Some(437.5));
        assert_eq!(parsed["note"].as_str(), Some("a \"b\"\nc"));
        assert_eq!(parsed["ok"], JsonValue::Bool(false));
    }

    #[test]
    fn handles_empty_and_whitespace() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
        let m = parse_flat_object(" { \"a\" : 1 , \"b\" : null } ").unwrap();
        assert_eq!(m["a"].as_u64(), Some(1));
        assert_eq!(m["b"], JsonValue::Null);
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_flat_object("{\"a\":[1]}").is_err());
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_err());
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
    }

    #[test]
    fn parse_json_accepts_nested_structures() {
        let v = parse_json(
            "{\"bench\":\"lp\",\"machine\":{\"cpus\":8},\
             \"results\":[{\"name\":\"a\",\"median_ns\":1500.0},{\"name\":\"b\"}]}",
        )
        .unwrap();
        assert_eq!(v.get("bench").and_then(JsonValue::as_str), Some("lp"));
        assert_eq!(
            v.get("machine")
                .and_then(|m| m.get("cpus"))
                .and_then(JsonValue::as_u64),
            Some(8)
        );
        let results = v.get("results").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("median_ns").and_then(JsonValue::as_f64),
            Some(1500.0)
        );
        assert_eq!(
            parse_json("[1,[2,[3]]]").unwrap().as_arr().unwrap().len(),
            2
        );
    }

    #[test]
    fn parse_json_rejects_malformed_and_bottomless_input() {
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn numbers_parse_with_exponents_and_sign() {
        let m = parse_flat_object("{\"a\":-1.5e2,\"b\":0.25,\"c\":12}").unwrap();
        assert_eq!(m["a"].as_f64(), Some(-150.0));
        assert_eq!(m["b"].as_f64(), Some(0.25));
        assert_eq!(m["c"].as_u64(), Some(12));
        assert_eq!(m["a"].as_u64(), None);
    }
}
