//! A minimal reader for the *flat* JSON objects this crate writes.
//!
//! The workspace vendors no JSON library, and the trace format is
//! deliberately restricted to one-line objects with scalar values
//! (string / number / bool / null), so a small handwritten parser
//! covers exactly what [`crate::report`] needs. Nested objects and
//! arrays are rejected — by construction the tracer never emits them.

use std::collections::BTreeMap;

/// A parsed scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8
                    // because it arrived as &str).
                    let rest = &self.as_str()[self.pos..];
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn as_str(&self) -> &'a str {
        std::str::from_utf8(self.bytes).expect("input was a str")
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        self.as_str()[start..self.pos]
            .parse::<f64>()
            .map_err(|_| ParseError {
                at: start,
                message: "bad number".to_string(),
            })
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.as_str()[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't' | b'f' | b'n') => {
                for (word, value) in [
                    ("true", JsonValue::Bool(true)),
                    ("false", JsonValue::Bool(false)),
                    ("null", JsonValue::Null),
                ] {
                    if self.literal(word) {
                        return Ok(value);
                    }
                }
                self.err("expected a scalar value")
            }
            Some(b'-' | b'0'..=b'9') => Ok(JsonValue::Num(self.number()?)),
            Some(b'{' | b'[') => self.err("nested values are not supported"),
            _ => self.err("expected a scalar value"),
        }
    }
}

/// Parses one flat JSON object line into key → scalar pairs.
///
/// # Errors
///
/// Fails on anything that is not a single flat object of scalar values
/// (see module docs).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, ParseError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    c.skip_ws();
    c.expect(b'{')?;
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.value()?;
            out.insert(key, value);
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                _ => return c.err("expected ',' or '}'"),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing input after object");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_tracer_output() {
        use crate::trace::{TraceEvent, Value};
        let e = TraceEvent {
            slot: 42,
            kind: "arm_eliminated".to_string(),
            fields: vec![
                ("shard", Value::U64(2)),
                ("value_mhz", Value::F64(437.5)),
                ("note", Value::Str("a \"b\"\nc".to_string())),
                ("ok", Value::Bool(false)),
            ],
        };
        let parsed = parse_flat_object(&e.to_json_line()).unwrap();
        assert_eq!(parsed["slot"].as_u64(), Some(42));
        assert_eq!(parsed["kind"].as_str(), Some("arm_eliminated"));
        assert_eq!(parsed["shard"].as_u64(), Some(2));
        assert_eq!(parsed["value_mhz"].as_f64(), Some(437.5));
        assert_eq!(parsed["note"].as_str(), Some("a \"b\"\nc"));
        assert_eq!(parsed["ok"], JsonValue::Bool(false));
    }

    #[test]
    fn handles_empty_and_whitespace() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
        let m = parse_flat_object(" { \"a\" : 1 , \"b\" : null } ").unwrap();
        assert_eq!(m["a"].as_u64(), Some(1));
        assert_eq!(m["b"], JsonValue::Null);
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_flat_object("{\"a\":[1]}").is_err());
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_err());
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
    }

    #[test]
    fn numbers_parse_with_exponents_and_sign() {
        let m = parse_flat_object("{\"a\":-1.5e2,\"b\":0.25,\"c\":12}").unwrap();
        assert_eq!(m["a"].as_f64(), Some(-150.0));
        assert_eq!(m["b"].as_f64(), Some(0.25));
        assert_eq!(m["c"].as_u64(), Some(12));
        assert_eq!(m["a"].as_u64(), None);
    }
}
