//! Slot-attributed structured event tracing.
//!
//! A [`TraceEvent`] is a flat record — a virtual slot, an event kind,
//! and scalar fields — serialized as one JSON line. Worker threads push
//! events into a shared [`TraceRing`]; the supervisor drains the rings
//! at the slot barrier (in shard order) and appends to a
//! [`TraceWriter`], so the stream order is a pure function of the run's
//! deterministic decisions, never of thread scheduling.
//!
//! The deliberate restriction to *flat scalar fields* keeps the format
//! parseable by the dependency-free reader in [`crate::json`] (this
//! workspace vendors no JSON library).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A scalar field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (slots, counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rewards, bounds, milliseconds).
    F64(f64),
    /// Short string (kinds, names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// One traced event: what happened, at which virtual slot, with which
/// scalar attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The virtual slot the event is attributed to.
    pub slot: u64,
    /// Event kind (e.g. `"restart"`, `"arm_eliminated"`).
    pub kind: String,
    /// Flat scalar attributes, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn value_json(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_string()
            }
        }
        Value::Str(s) => format!("\"{}\"", escape_json(s)),
        Value::Bool(b) => b.to_string(),
    }
}

impl TraceEvent {
    /// Serializes the event as one JSON object (no trailing newline).
    /// `slot` and `kind` always lead; fields follow in emission order.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"slot\":{},\"kind\":\"{}\"",
            self.slot,
            escape_json(&self.kind)
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", escape_json(k), value_json(v)));
        }
        out.push('}');
        out
    }
}

/// Anything events can be recorded into. The [`crate::event!`] macro is
/// generic over this, so workers record into rings while the supervisor
/// records straight into the writer.
pub trait EventSink {
    /// Accepts one event.
    fn record(&self, event: TraceEvent);
}

// The macro expands to `EventSink::record(&$sink, ...)`, a path call that
// gets no auto-deref — these blanket impls let any reference to a sink
// serve as the sink.
impl<T: EventSink + ?Sized> EventSink for &T {
    fn record(&self, event: TraceEvent) {
        (**self).record(event);
    }
}

impl<T: EventSink + ?Sized> EventSink for &mut T {
    fn record(&self, event: TraceEvent) {
        (**self).record(event);
    }
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

/// A bounded, shareable event buffer: workers push, the supervisor
/// drains at the slot barrier. When full, the *newest* event is dropped
/// (and counted) — keeping the prefix preserves causality for whatever
/// was already recorded.
#[derive(Clone)]
pub struct TraceRing {
    inner: Arc<Mutex<RingInner>>,
}

impl TraceRing {
    /// Ring state is a plain buffer with no invariants a panicking
    /// recorder could break mid-update, so a poisoned lock is safe to
    /// recover — one crashed worker must not take tracing down with it.
    fn lock(&self) -> MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("TraceRing")
            .field("len", &inner.buf.len())
            .field("cap", &inner.cap)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at most `cap` undrained events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            })),
        }
    }

    /// Removes and returns every buffered event, in push order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut inner = self.lock();
        inner.buf.drain(..).collect()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

impl EventSink for TraceRing {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.lock();
        if inner.buf.len() >= inner.cap {
            inner.dropped += 1;
            return;
        }
        inner.buf.push_back(event);
    }
}

impl EventSink for Option<TraceRing> {
    fn record(&self, event: TraceEvent) {
        if let Some(ring) = self {
            ring.record(event);
        }
    }
}

/// Appends events to a byte sink as JSON lines.
pub struct TraceWriter {
    out: Box<dyn Write + Send>,
    written: u64,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("written", &self.written)
            .finish()
    }
}

impl TraceWriter {
    /// Wraps a byte sink (file, buffer, pipe).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out, written: 0 }
    }

    /// Writes one event as a JSON line. Write errors are swallowed after
    /// the first (tracing must never take the run down); the error count
    /// is visible as the difference between events offered and
    /// [`TraceWriter::written`].
    pub fn write(&mut self, event: &TraceEvent) {
        let line = event.to_json_line();
        if writeln!(self.out, "{line}").is_ok() {
            self.written += 1;
        }
    }

    /// Events successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64, kind: &str, fields: Vec<(&'static str, Value)>) -> TraceEvent {
        TraceEvent {
            slot,
            kind: kind.to_string(),
            fields,
        }
    }

    #[test]
    fn event_serializes_flat_json() {
        let e = ev(
            7,
            "restart",
            vec![
                ("shard", Value::U64(1)),
                ("ok", Value::Bool(true)),
                ("latency_ms", Value::F64(1.5)),
                ("why", Value::Str("stall \"x\"".to_string())),
            ],
        );
        assert_eq!(
            e.to_json_line(),
            "{\"slot\":7,\"kind\":\"restart\",\"shard\":1,\"ok\":true,\
             \"latency_ms\":1.5,\"why\":\"stall \\\"x\\\"\"}"
        );
    }

    #[test]
    fn ring_preserves_order_and_counts_drops() {
        let ring = TraceRing::with_capacity(2);
        for slot in 0..3 {
            ring.record(ev(slot, "x", vec![]));
        }
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].slot, 0);
        assert_eq!(drained[1].slot, 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn writer_emits_json_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(Box::new(Shared(Arc::clone(&buf))));
        w.write(&ev(1, "a", vec![]));
        w.write(&ev(2, "b", vec![("n", Value::U64(3))]));
        w.flush();
        assert_eq!(w.written(), 2);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"slot\":1,\"kind\":\"a\"}\n{\"slot\":2,\"kind\":\"b\",\"n\":3}\n"
        );
    }
}
