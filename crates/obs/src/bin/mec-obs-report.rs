//! Renders a post-hoc run report from a `mec-serve --trace-out` JSONL
//! trace: arm-elimination timeline, admission funnel, fault/restart
//! log, per-shard latency histograms, final bandit state.
//!
//! Also understands three sibling streams, each detected from its
//! first line: profile streams from `--profile-out` (a
//! `{"kind":"profile",...}` header), request-lifecycle streams from
//! `--lifecycle-out` (`id`/`stage` records with no `kind`), and
//! decision flight-recorder streams from `--flight-out`
//! (`flight_dump`/`flight` events) — rendering the matching summary
//! instead of the trace report.
//!
//! ```text
//! mec-obs-report events.jsonl
//! mec-obs-report profile.jsonl
//! mec-obs-report lifecycle.jsonl
//! mec-obs-report flight.jsonl
//! mec-serve --trace-out - ... | mec-obs-report -
//! ```
//!
//! A truncated final line (the writer was killed mid-flush) does not
//! hide the rest of the run: the report is rendered from the complete
//! lines, the truncation is diagnosed on stderr, and the exit code is
//! nonzero so scripts still notice.

use mec_obs::ProfileReport;
use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;

const USAGE: &str = "\
mec-obs-report: render a run report from a mec-serve trace

USAGE:
    mec-obs-report <TRACE.jsonl>    read a trace or profile ('-' for stdin)
    mec-obs-report --help           print this help
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if p == "--help" || p == "-h" => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(p) => p,
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.next().is_some() {
        eprintln!("too many arguments\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let reader: Box<dyn Read> = if path == "-" {
        Box::new(std::io::stdin())
    } else {
        match std::fs::File::open(&path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("cannot open trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let mut lines = Vec::new();
    for line in BufReader::new(reader).lines() {
        match line {
            Ok(line) => lines.push(line),
            Err(e) => {
                eprintln!("cannot read trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // 1-based number of the last non-blank line: an error exactly there
    // is (very likely) a truncated final write, not a corrupt stream.
    let last_line_no = lines
        .iter()
        .rposition(|l| !l.trim().is_empty())
        .map(|i| i + 1);
    let Some(last_line_no) = last_line_no else {
        eprintln!("trace {path:?} is empty: no events to report");
        return ExitCode::FAILURE;
    };

    let text = lines.join("\n");
    if ProfileReport::sniff(&text) {
        return render_profile(&path, &lines, &text, last_line_no);
    }
    let first_line = lines
        .iter()
        .find(|l| !l.trim().is_empty())
        .map(String::as_str)
        .unwrap_or("");
    if mec_obs::sniff_lifecycle(first_line) {
        return render_salvaged("lifecycle stream", &path, &lines, last_line_no, |lines| {
            mec_obs::build_lifecycle_report(lines).map(|r| (r.records, r.render()))
        });
    }
    if mec_obs::sniff_flight(first_line) {
        return render_salvaged("flight stream", &path, &lines, last_line_no, |lines| {
            mec_obs::build_flight_report(lines).map(|r| (r.events, r.render()))
        });
    }

    match mec_obs::build_report(&lines) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err((line_no, e)) if line_no == last_line_no => {
            // Salvage everything before the torn tail.
            match mec_obs::build_report(&lines[..line_no - 1]) {
                Ok(report) => {
                    print!("{}", report.render());
                    eprintln!(
                        "trace {path:?}: last line {line_no} is truncated ({e}); \
                         reported the {} complete event(s) before it",
                        report.events
                    );
                    ExitCode::FAILURE
                }
                Err((line_no, e)) => {
                    eprintln!("trace {path:?} line {line_no}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err((line_no, e)) => {
            eprintln!("trace {path:?} line {line_no}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds and prints a stream summary via `build`, salvaging a torn
/// final line exactly like the trace path: the report is rendered from
/// the complete lines, the truncation is diagnosed on stderr, and the
/// exit code is nonzero.
fn render_salvaged(
    what: &str,
    path: &str,
    lines: &[String],
    last_line_no: usize,
    build: impl Fn(&[String]) -> Result<(u64, String), (usize, mec_obs::json::ParseError)>,
) -> ExitCode {
    match build(lines) {
        Ok((_, text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err((line_no, e)) if line_no == last_line_no => match build(&lines[..line_no - 1]) {
            Ok((complete, text)) => {
                print!("{text}");
                eprintln!(
                    "{what} {path:?}: last line {line_no} is truncated ({e}); \
                     reported the {complete} complete record(s) before it"
                );
                ExitCode::FAILURE
            }
            Err((line_no, e)) => {
                eprintln!("{what} {path:?} line {line_no}: {e}");
                ExitCode::FAILURE
            }
        },
        Err((line_no, e)) => {
            eprintln!("{what} {path:?} line {line_no}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a `--profile-out` stream; hot-phase table capped at 10.
fn render_profile(path: &str, lines: &[String], text: &str, last_line_no: usize) -> ExitCode {
    match ProfileReport::from_jsonl(text) {
        Ok(report) => {
            print!("{}", report.render_text(10));
            ExitCode::SUCCESS
        }
        Err(e) if e.line == last_line_no => {
            let head = lines[..last_line_no - 1].join("\n");
            match ProfileReport::from_jsonl(&head) {
                Ok(report) => {
                    print!("{}", report.render_text(10));
                    eprintln!(
                        "profile {path:?}: last line {last_line_no} is truncated ({e}); \
                         reported the complete lines before it"
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("profile {path:?}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("profile {path:?}: {e}");
            ExitCode::FAILURE
        }
    }
}
