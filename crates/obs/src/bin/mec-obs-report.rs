//! Renders a post-hoc run report from a `mec-serve --trace-out` JSONL
//! trace: arm-elimination timeline, admission funnel, fault/restart
//! log, per-shard latency histograms, final bandit state.
//!
//! ```text
//! mec-obs-report events.jsonl
//! mec-serve --trace-out - ... | mec-obs-report -
//! ```

use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;

const USAGE: &str = "\
mec-obs-report: render a run report from a mec-serve trace

USAGE:
    mec-obs-report <TRACE.jsonl>    read a trace file ('-' for stdin)
    mec-obs-report --help           print this help
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if p == "--help" || p == "-h" => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(p) => p,
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.next().is_some() {
        eprintln!("too many arguments\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let reader: Box<dyn Read> = if path == "-" {
        Box::new(std::io::stdin())
    } else {
        match std::fs::File::open(&path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("cannot open trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let mut lines = Vec::new();
    for line in BufReader::new(reader).lines() {
        match line {
            Ok(line) => lines.push(line),
            Err(e) => {
                eprintln!("cannot read trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match mec_obs::build_report(&lines) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err((line_no, e)) => {
            eprintln!("trace {path:?} line {line_no}: {e}");
            ExitCode::FAILURE
        }
    }
}
