//! A live terminal view of a running `mec-serve --metrics-addr` server.
//!
//! Scrapes `/healthz`, `/metrics.json`, `/slo.json`, and `/learning.json`
//! over plain TCP and renders one compact frame: run header (uptime,
//! slot), the admission funnel with rates, the per-shard work vs
//! barrier-wait split, fine-grained latency quantiles, live SLO
//! burn-rate state, and — when a learner probe is attached — a learner
//! panel with one sparkline of arm means per shard, eliminated arms
//! marked `·`, and live cumulative regret.
//!
//! ```text
//! mec-obs-top                          # watch 127.0.0.1:9464, 1s cadence
//! mec-obs-top --addr 127.0.0.1:9000 --interval-ms 500
//! mec-obs-top --once                   # one frame, no screen clear (CI smoke)
//! ```
//!
//! Purely an observer: nothing about a run's determinism depends on
//! whether (or how often) this tool scrapes it.

use mec_obs::json::{parse_json, JsonValue};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
mec-obs-top: live terminal view of a mec-serve metrics endpoint

USAGE:
    mec-obs-top [OPTIONS]

OPTIONS:
    --addr HOST:PORT     endpoint to scrape [default: 127.0.0.1:9464]
    --interval-ms MS     refresh cadence [default: 1000]
    --once               render a single frame and exit (no screen clear)
    --help               print this help
";

struct Args {
    addr: String,
    interval_ms: u64,
    once: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:9464".to_string(),
        interval_ms: 1000,
        once: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--interval-ms" => {
                args.interval_ms = it
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
            }
            "--once" => args.once = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One `GET path` against `addr`; returns the body on a 200, `None` on
/// any other status or transport error.
fn get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let (head, body) = raw.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

/// A histogram series pulled out of `/metrics.json`.
struct Hist {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
}

impl Hist {
    fn from_obj(obj: &BTreeMap<String, JsonValue>) -> Option<Self> {
        let arr = |key: &str| -> Option<&[JsonValue]> { obj.get(key)?.as_arr() };
        let bounds: Vec<f64> = arr("bounds")?
            .iter()
            .filter_map(JsonValue::as_f64)
            .collect();
        let counts: Vec<u64> = arr("counts")?
            .iter()
            .filter_map(JsonValue::as_u64)
            .collect();
        (counts.len() == bounds.len() + 1).then(|| Self {
            bounds,
            counts,
            count: obj.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
        })
    }

    fn merge(&mut self, other: &Hist) {
        if other.bounds == self.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.count += other.count;
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// The flat `/metrics.json` object, indexed by full series key
/// (`name{labels}`).
struct Metrics(BTreeMap<String, JsonValue>);

impl Metrics {
    fn scalar(&self, key: &str) -> f64 {
        self.0.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
    }

    /// Sums every series of `name` across label sets (e.g. per-shard
    /// counters).
    fn sum(&self, name: &str) -> f64 {
        self.0
            .iter()
            .filter(|(k, _)| series_name(k) == name)
            .filter_map(|(_, v)| v.as_f64())
            .sum()
    }

    /// Per-shard values of `name`, keyed by the `shard` label.
    fn per_shard(&self, name: &str) -> BTreeMap<u64, f64> {
        self.0
            .iter()
            .filter(|(k, _)| series_name(k) == name)
            .filter_map(|(k, v)| Some((shard_label(k)?, v.as_f64()?)))
            .collect()
    }

    /// All histogram series of `name`, merged across label sets.
    fn histogram(&self, name: &str) -> Option<Hist> {
        let mut merged: Option<Hist> = None;
        for (_, v) in self.0.iter().filter(|(k, _)| series_name(k) == name) {
            let h = Hist::from_obj(v.as_obj()?)?;
            match &mut merged {
                Some(m) => m.merge(&h),
                None => merged = Some(h),
            }
        }
        merged
    }
}

fn series_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

fn shard_label(key: &str) -> Option<u64> {
    let (_, rest) = key.split_once("shard=\"")?;
    rest.split('"').next()?.parse().ok()
}

fn fmt_quantile(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "+Inf".to_string()
    }
}

/// One glyph per arm: the empirical mean scaled into `▁..█` across the
/// shard's currently active arms; eliminated arms render as `·`.
fn spark(arms: &[(f64, bool)]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(mean, active) in arms {
        if active && mean.is_finite() {
            lo = lo.min(mean);
            hi = hi.max(mean);
        }
    }
    arms.iter()
        .map(|&(mean, active)| {
            if !active {
                '·'
            } else if !mean.is_finite() || hi <= lo {
                GLYPHS[3]
            } else {
                let t = (mean - lo) / (hi - lo);
                GLYPHS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn render(
    addr: &str,
    health: Option<&str>,
    metrics: Option<&Metrics>,
    slo: Option<&str>,
    learning: Option<&str>,
) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };

    match health {
        Some(body) => {
            let (uptime, scrapes) = parse_json(body).ok().map_or((0.0, 0.0), |v| {
                let get = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
                (get("uptime_ms"), get("scrapes"))
            });
            push(
                &mut out,
                format!(
                    "mec-obs-top — {addr}  up {:.0}s  scrapes {scrapes:.0}",
                    uptime / 1e3
                ),
            );
        }
        None => {
            push(&mut out, format!("mec-obs-top — {addr}  (unreachable)"));
            return out;
        }
    }

    let Some(m) = metrics else {
        push(&mut out, "  /metrics.json unavailable".to_string());
        return out;
    };

    let slot = m.scalar("mec_serve_slot");
    let admitted = m.scalar("mec_serve_admitted_total");
    let completed = m.sum("mec_serve_completed_total");
    let expired = m.sum("mec_serve_expired_total");
    let aborted = m.sum("mec_serve_aborted_total");
    let shed = m.scalar("mec_serve_shed_total") + m.scalar("mec_serve_shed_while_down_total");
    let spilled = m.scalar("mec_serve_spilled_total");
    let backlog: f64 = m.per_shard("mec_serve_backlog").values().sum();
    push(&mut out, format!("slot {slot:.0}  backlog {backlog:.0}"));
    push(
        &mut out,
        format!(
            "funnel  admitted {admitted:.0}  completed {completed:.0}  expired {expired:.0}  \
             aborted {aborted:.0}  shed {shed:.0}  spilled {spilled:.0}"
        ),
    );

    // Fine-grained latency quantiles (log-linear buckets, all shards).
    if let Some(h) = m.histogram("mec_serve_latency_fine_ms") {
        if h.count > 0 {
            push(
                &mut out,
                format!(
                    "latency (ms, n={})  p50 {}  p95 {}  p99 {}  p99.9 {}",
                    h.count,
                    fmt_quantile(h.quantile(0.50)),
                    fmt_quantile(h.quantile(0.95)),
                    fmt_quantile(h.quantile(0.99)),
                    fmt_quantile(h.quantile(0.999)),
                ),
            );
        }
    }

    // Per-shard work vs mailbox vs watermark-wait split (always-on stall
    // gauges). Pre-epoch runtimes published the wait as
    // `mec_serve_wait_ms_total`; fall back so old servers still render.
    let work = m.per_shard("mec_serve_work_ms_total");
    let mbox = m.per_shard("mec_serve_mailbox_wait_ms_total");
    let mut wait = m.per_shard("mec_serve_watermark_wait_ms_total");
    if wait.is_empty() {
        wait = m.per_shard("mec_serve_wait_ms_total");
    }
    if !work.is_empty() {
        push(
            &mut out,
            "shard  work-ms     mbox-ms     wmark-ms    work%".to_string(),
        );
        for (shard, w) in &work {
            let mb = mbox.get(shard).copied().unwrap_or(0.0);
            let idle = wait.get(shard).copied().unwrap_or(0.0);
            let total = w + mb + idle;
            let share = if total > 0.0 { 100.0 * w / total } else { 0.0 };
            let bar = "#".repeat((share / 5.0).round() as usize);
            push(
                &mut out,
                format!("{shard:>5}  {w:>10.0}  {mb:>10.0}  {idle:>10.0}  {share:>5.1} {bar}"),
            );
        }
    }

    // Learner panel: per-shard arm sparkline + live regret, fed by the
    // `/learning.json` document the serve runtime publishes when a
    // learner probe is attached (`--learner-events`).
    if let Some(doc) = learning.and_then(|body| parse_json(body).ok()) {
        let shards = doc.get("shards").and_then(JsonValue::as_arr).unwrap_or(&[]);
        if !shards.is_empty() {
            push(
                &mut out,
                "learner  (arm means ▁..█, · = eliminated)".to_string(),
            );
            for row in shards {
                let f = |k: &str| row.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
                let arms = row.get("arms").and_then(JsonValue::as_arr).unwrap_or(&[]);
                let states: Vec<(f64, bool)> = arms
                    .iter()
                    .map(|arm| {
                        (
                            arm.get("mean").and_then(JsonValue::as_f64).unwrap_or(0.0),
                            matches!(arm.get("active"), Some(JsonValue::Bool(true))),
                        )
                    })
                    .collect();
                let active_n = states.iter().filter(|(_, a)| *a).count();
                let drift = f("drift_suspected");
                let drift_tag = if drift > 0.0 {
                    format!("  drift x{drift:.0}")
                } else {
                    String::new()
                };
                push(
                    &mut out,
                    format!(
                        "{:>5}  {} {active_n:>3}/{:<3} active  regret {:>9.3}  steps {:.0}{drift_tag}",
                        f("shard"),
                        spark(&states),
                        states.len(),
                        f("regret"),
                        f("steps"),
                    ),
                );
            }
        }
    }

    match slo.and_then(|body| parse_json(body).ok()) {
        Some(doc) => {
            let rows = doc.get("slos").and_then(JsonValue::as_arr).unwrap_or(&[]);
            if !rows.is_empty() {
                push(&mut out, "slo".to_string());
                for row in rows {
                    let s = |k: &str| row.get(k).and_then(JsonValue::as_str).unwrap_or("?");
                    let f = |k: &str| row.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                    let state = match row.get("breached") {
                        Some(JsonValue::Bool(true)) => "BREACHED",
                        Some(JsonValue::Bool(false)) => "ok",
                        _ => "?",
                    };
                    push(
                        &mut out,
                        format!(
                            "  {:<32} {state:>8}  value {:.4}  burn {:.2}/{:.2}  breaches {:.0}",
                            s("spec"),
                            f("value"),
                            f("burn_fast"),
                            f("burn_slow"),
                            f("breaches"),
                        ),
                    );
                }
            }
        }
        None => push(&mut out, "slo: (no engine attached)".to_string()),
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("{msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    loop {
        let health = get(&args.addr, "/healthz");
        let metrics = get(&args.addr, "/metrics.json")
            .and_then(|body| parse_json(&body).ok())
            .and_then(|v| match v {
                JsonValue::Obj(map) => Some(Metrics(map)),
                _ => None,
            });
        let slo = get(&args.addr, "/slo.json");
        let learning = get(&args.addr, "/learning.json");

        let frame = render(
            &args.addr,
            health.as_deref(),
            metrics.as_ref(),
            slo.as_deref(),
            learning.as_deref(),
        );
        if args.once {
            print!("{frame}");
            if health.is_none() {
                eprintln!("cannot reach {}", args.addr);
                return ExitCode::from(1);
            }
            return ExitCode::SUCCESS;
        }
        // Clear screen + home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(args.interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_scales_means_and_marks_eliminated() {
        let s = spark(&[(0.1, true), (0.5, true), (0.9, true), (0.7, false)]);
        let glyphs: Vec<char> = s.chars().collect();
        assert_eq!(glyphs.len(), 4);
        assert_eq!(glyphs[0], '▁', "lowest active mean maps to the floor");
        assert_eq!(glyphs[2], '█', "highest active mean maps to the cap");
        assert_eq!(glyphs[3], '·', "eliminated arm renders as a dot");
        // Flat field (single distinct mean) stays mid-glyph, no div-by-zero.
        assert_eq!(spark(&[(0.4, true), (0.4, true)]), "▄▄");
        assert_eq!(spark(&[]), "");
    }

    #[test]
    fn learner_panel_renders_from_learning_doc() {
        let health = r#"{"uptime_ms":1000,"scrapes":3}"#;
        let learning = r#"{"slot":42,"shards":[
            {"shard":0,"regret":1.25,"steps":40,"drift_suspected":2,
             "arms":[{"arm":0,"mean":0.2,"active":true},
                     {"arm":1,"mean":0.8,"active":true},
                     {"arm":2,"mean":0.1,"active":false}]}]}"#;
        let m = Metrics(BTreeMap::new());
        let frame = render("x:1", Some(health), Some(&m), None, Some(learning));
        assert!(frame.contains("learner"), "panel header missing:\n{frame}");
        assert!(frame.contains("2/3"), "active-arm ratio missing:\n{frame}");
        assert!(
            frame.contains("regret     1.250"),
            "regret missing:\n{frame}"
        );
        assert!(frame.contains("drift x2"), "drift tag missing:\n{frame}");
        assert!(frame.contains('·'), "eliminated mark missing:\n{frame}");
        // No learning doc → no panel, frame still renders.
        let bare = render("x:1", Some(health), Some(&m), None, None);
        assert!(!bare.contains("learner"));
    }
}
