//! Post-hoc run reports rendered from a JSONL trace.
//!
//! [`build_report`] folds the event stream emitted by a traced serving
//! run (see the `mec-serve --trace-out` schema in DESIGN.md §10) into a
//! [`RunReport`]; [`RunReport::render`] produces the human-readable
//! text: run header, admission funnel, arm-elimination timeline, fault
//! and restart log, disk-recovery summary (checkpoint mirror sizes,
//! salvage and corruption incidents, per-handoff moved state), per-shard
//! latency histograms, and the final bandit state per shard.

use crate::json::{parse_flat_object, JsonValue, ParseError};
use crate::registry::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Latency bucket bounds (ms) used when rebuilding per-shard
/// distributions from `served` events.
pub const LATENCY_MS_BOUNDS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

/// Install-latency bucket bounds (slots) used when rebuilding the
/// distribution from `install` events.
pub const INSTALL_SLOT_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 13.0];

/// One `arm_eliminated` event.
#[derive(Debug, Clone, PartialEq)]
pub struct Elimination {
    /// Slot the elimination was observed at.
    pub slot: u64,
    /// Shard whose learner eliminated the arm.
    pub shard: u64,
    /// Eliminated arm index.
    pub arm: u64,
    /// The arm's threshold value in MHz.
    pub value_mhz: f64,
    /// Active arms remaining after the elimination.
    pub active_left: u64,
}

/// One `reconfig` or `handoff` event, in stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconfig {
    /// Slot the op (or handoff) applied at.
    pub slot: u64,
    /// `join`, `leave`, `drain`, or `handoff`.
    pub op: String,
    /// The station it targets.
    pub station: u64,
    /// For handoffs: the takeover station (-1 when the fleet was empty).
    pub takeover: i64,
    /// For handoffs: in-flight jobs migrated to the takeover station.
    pub migrated: u64,
    /// For handoffs: encoded station-slice bytes shipped.
    pub bytes: u64,
}

/// One `journal_salvage` event: a shard's disk mirror came back damaged
/// and was salvaged during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// Slot the salvage happened at.
    pub slot: u64,
    /// The shard whose files were damaged.
    pub shard: u64,
    /// CRC-failed records detected.
    pub corrupt_records: u64,
    /// Bytes truncated away to reach the last valid record.
    pub salvaged_bytes: u64,
    /// Read retries spent before the files yielded.
    pub retries: u64,
    /// Checkpoint reads that fell back from current to previous.
    pub checkpoint_fallbacks: u64,
}

/// One `disk_fault` event: an injected chaos fault landing on the store.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFault {
    /// Slot the fault applied at.
    pub slot: u64,
    /// The shard whose files it hit.
    pub shard: u64,
    /// `journal` or `ckpt`.
    pub target: String,
    /// `truncate`, `corrupt`, or `slowdisk`.
    pub kind: String,
    /// Bytes affected.
    pub bytes: u64,
}

/// One `restart` event.
#[derive(Debug, Clone, PartialEq)]
pub struct Restart {
    /// Slot the restart completed at.
    pub slot: u64,
    /// The restarted shard.
    pub shard: u64,
    /// Journal entries replayed during catch-up.
    pub replayed: u64,
    /// Outage length in slots.
    pub latency_slots: u64,
    /// Whether the replacement worker came up.
    pub ok: bool,
}

/// One `slo_breach` / `slo_recovered` transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// Slot the transition fired at.
    pub slot: u64,
    /// The spec string (e.g. `deadline_hit_rate>=0.95@512`).
    pub spec: String,
    /// `true` = entered breach, `false` = recovered.
    pub breached: bool,
    /// The windowed value at the transition.
    pub value: f64,
    /// Fast-window burn rate at the transition.
    pub burn_fast: f64,
    /// Slow-window burn rate at the transition.
    pub burn_slow: f64,
}

/// One `drift_suspected` / `drift_cleared` event from the per-arm
/// Page–Hinkley detectors.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// Slot the detector fired (or cleared) at.
    pub slot: u64,
    /// Shard whose learner the arm belongs to.
    pub shard: u64,
    /// The arm whose reward stream drifted.
    pub arm: u64,
    /// The detector's running mean at the transition.
    pub mean: f64,
    /// The Page–Hinkley statistic at the transition.
    pub score: f64,
    /// `true` = drift suspected, `false` = cleared.
    pub suspected: bool,
}

/// Final per-shard regret accounting (from the last `learning_state`
/// sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningState {
    /// Slot of the sweep.
    pub slot: u64,
    /// Realized cumulative (normalized) reward.
    pub cum_reward: f64,
    /// The moving hindsight-oracle total.
    pub oracle: f64,
    /// Cumulative regret (oracle − realized, floored at 0).
    pub regret: f64,
    /// Learner updates accounted.
    pub steps: u64,
}

/// Final per-shard LP introspection (from the last `lp_state` sweep).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LpState {
    /// Slot of the sweep.
    pub slot: u64,
    /// Slot-LP solves so far.
    pub solves: u64,
    /// Warm starts that installed and survived.
    pub warm_hits: u64,
    /// Warm starts that fell back to a cold solve.
    pub warm_fallbacks: u64,
    /// Solves with no usable cached basis.
    pub cold_starts: u64,
    /// Simplex pivots performed.
    pub pivots: u64,
    /// Basis refactorizations performed.
    pub refactorizations: u64,
}

/// One `flight_dump` header from the decision flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Slot the trigger fired at.
    pub slot: u64,
    /// What tripped the dump (`slo`, `drift`, `crash`, `manual`).
    pub trigger: String,
    /// Snapshots in the dump.
    pub snapshots: u64,
}

/// One `stall_shard` event: a shard's run-total wall-time split under
/// the epoch/actor runtime — time executing leased slots, time handling
/// mailbox commands, and time idle waiting for the next lease (the
/// watermark). Legacy traces from the lockstep runtime carry a single
/// `wait_ms` field; it parses into `watermark_ms` (the old barrier wait
/// was exactly the wait for the next tick grant).
#[derive(Debug, Clone, PartialEq)]
pub struct StallShard {
    /// The shard.
    pub shard: u64,
    /// Total time executing leased slots (ms).
    pub work_ms: f64,
    /// Total time handling mailbox commands — injections, station
    /// extract/absorb (ms). Zero in legacy traces.
    pub mailbox_ms: f64,
    /// Total time idle waiting for the watermark to extend the lease
    /// (ms). Parsed from `wait_ms` in legacy lockstep traces.
    pub watermark_ms: f64,
}

/// The `stall_driver` event: the driver's run-total phase split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallDriver {
    /// Wall time of the serve loop (ms).
    pub wall_ms: f64,
    /// Time spent routing/injecting arrivals (ms).
    pub dispatch_ms: f64,
    /// Time spent detecting faults and restarting workers (ms).
    pub recovery_ms: f64,
    /// Time spent granting leases and folding tick reports at the
    /// watermark (ms). Parsed from `barrier_ms` in legacy traces.
    pub fold_ms: f64,
    /// Slots the loop ran.
    pub slots: u64,
}

/// Final per-arm learner state (from the last `arm_state` sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmRow {
    /// Arm index.
    pub arm: u64,
    /// Threshold value in MHz.
    pub value_mhz: f64,
    /// Times pulled.
    pub pulls: u64,
    /// Empirical mean reward.
    pub mean: f64,
    /// Upper confidence bound.
    pub ucb: f64,
    /// Lower confidence bound.
    pub lcb: f64,
    /// Still active?
    pub active: bool,
}

/// Everything the report extracted from the trace.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Total events read.
    pub events: u64,
    /// `run_start` attributes (shards, policy, seed, ...), rendered as-is.
    pub run_start: BTreeMap<String, String>,
    /// `run_end` attributes (admitted, completed, ...), rendered as-is.
    pub run_end: BTreeMap<String, String>,
    /// Admission funnel totals summed over per-slot `admission` events.
    pub funnel: BTreeMap<&'static str, u64>,
    /// Placement totals summed over per-slot `placement` events.
    pub placement: BTreeMap<&'static str, u64>,
    /// Completed installs: total count and warm count.
    pub installs: (u64, u64),
    /// Install-latency distribution (slots) from `install` events.
    pub install_latency: Option<HistogramSnapshot>,
    /// Reconfiguration timeline: `reconfig` and `handoff` events in
    /// stream order.
    pub reconfigs: Vec<Reconfig>,
    /// Every arm elimination, in stream order.
    pub eliminations: Vec<Elimination>,
    /// Every restart, in stream order.
    pub restarts: Vec<Restart>,
    /// `fault_injected` events as `(slot, shard, kind)`.
    pub faults_injected: Vec<(u64, u64, String)>,
    /// `fault_detected` events as `(slot, shard, reason)`.
    pub faults_detected: Vec<(u64, u64, String)>,
    /// `checkpoint_write` totals: (writes, framed bytes).
    pub checkpoint_writes: (u64, u64),
    /// Every `journal_salvage` event, in stream order.
    pub salvages: Vec<Salvage>,
    /// `disk_fallback` events as `(slot, shard)`.
    pub disk_fallbacks: Vec<(u64, u64)>,
    /// Every injected `disk_fault` event, in stream order.
    pub disk_faults: Vec<DiskFault>,
    /// `disk_error` events as `(slot, shard, op)` (shard -1 = store-wide).
    pub disk_errors: Vec<(u64, i64, String)>,
    /// Per-shard latency distribution from `served` events.
    pub latency: BTreeMap<u64, HistogramSnapshot>,
    /// Final per-shard arm table (last `arm_state` sweep wins).
    pub arms: BTreeMap<u64, BTreeMap<u64, ArmRow>>,
    /// Per-shard slot of the last `arm_state` sweep seen.
    pub arms_as_of: BTreeMap<u64, u64>,
    /// SLO breach/recovery transitions, in stream order.
    pub slo_events: Vec<SloEvent>,
    /// Per-shard wall-time splits from `stall_shard` events.
    pub stall_shards: Vec<StallShard>,
    /// The driver's wall-time split, when traced with `--stall-events`.
    pub stall_driver: Option<StallDriver>,
    /// Trace events dropped to ring saturation (from `trace_drops`).
    pub trace_dropped: u64,
    /// Lifecycle records dropped to ring saturation (from
    /// `lifecycle_drops`).
    pub lifecycle_dropped: u64,
    /// Arm-lifecycle event counts by kind (`activate`, `sample`, ...),
    /// from `arm_lifecycle` events.
    pub arm_lifecycle: BTreeMap<String, u64>,
    /// Learner-probe events dropped at the policy buffer (from
    /// `arm_lifecycle_drops`).
    pub arm_lifecycle_dropped: u64,
    /// Drift suspected/cleared transitions, in stream order.
    pub drift_events: Vec<DriftEvent>,
    /// Final per-shard regret accounting (last `learning_state` wins).
    pub learning: BTreeMap<u64, LearningState>,
    /// Final per-shard LP introspection (last `lp_state` wins).
    pub lp: BTreeMap<u64, LpState>,
    /// Flight-recorder dump headers, in stream order.
    pub flight_dumps: Vec<FlightDump>,
}

fn get_u64(m: &BTreeMap<String, JsonValue>, key: &str) -> u64 {
    m.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn get_f64(m: &BTreeMap<String, JsonValue>, key: &str) -> f64 {
    m.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn get_str(m: &BTreeMap<String, JsonValue>, key: &str) -> String {
    m.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string()
}

/// Renders one parsed object's non-(slot, kind) fields for the header
/// sections, deterministically (keys sorted).
fn render_attrs(m: &BTreeMap<String, JsonValue>) -> BTreeMap<String, String> {
    m.iter()
        .filter(|(k, _)| k.as_str() != "slot" && k.as_str() != "kind")
        .map(|(k, v)| {
            let rendered = match v {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                JsonValue::Bool(b) => b.to_string(),
                JsonValue::Null => "null".to_string(),
                // parse_flat_object never produces these.
                JsonValue::Arr(_) | JsonValue::Obj(_) => "<nested>".to_string(),
            };
            (k.clone(), rendered)
        })
        .collect()
}

/// Folds trace lines into a [`RunReport`]. Blank lines are skipped;
/// unknown event kinds are counted but otherwise ignored (forward
/// compatibility).
///
/// # Errors
///
/// Fails on the first malformed line, reporting its 1-based number.
pub fn build_report<I, S>(lines: I) -> Result<RunReport, (usize, ParseError)>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut r = RunReport::default();
    for (i, line) in lines.into_iter().enumerate() {
        let line = line.as_ref().trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| (i + 1, e))?;
        r.events += 1;
        let slot = get_u64(&obj, "slot");
        let shard = get_u64(&obj, "shard");
        match get_str(&obj, "kind").as_str() {
            "run_start" => r.run_start = render_attrs(&obj),
            "run_end" => r.run_end = render_attrs(&obj),
            "admission" => {
                for key in ["admitted", "buffered", "spilled", "shed", "shed_down"] {
                    *r.funnel.entry(key).or_insert(0) += get_u64(&obj, key);
                }
            }
            "placement" => {
                for key in ["hits", "misses", "redirects", "rehomed", "held", "shed"] {
                    *r.placement.entry(key).or_insert(0) += get_u64(&obj, key);
                }
            }
            "install" => {
                r.installs.0 += 1;
                if obj.get("warm") == Some(&JsonValue::Bool(true)) {
                    r.installs.1 += 1;
                }
                r.install_latency
                    .get_or_insert_with(|| HistogramSnapshot::empty(INSTALL_SLOT_BOUNDS))
                    .record(get_f64(&obj, "latency_slots"));
            }
            "reconfig" => r.reconfigs.push(Reconfig {
                slot,
                op: get_str(&obj, "op"),
                station: get_u64(&obj, "station"),
                takeover: -1,
                migrated: 0,
                bytes: 0,
            }),
            "handoff" => r.reconfigs.push(Reconfig {
                slot,
                op: "handoff".to_string(),
                station: get_u64(&obj, "station"),
                takeover: obj
                    .get("takeover")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(-1.0) as i64,
                migrated: get_u64(&obj, "migrated"),
                bytes: get_u64(&obj, "bytes"),
            }),
            "checkpoint_write" => {
                r.checkpoint_writes.0 += 1;
                r.checkpoint_writes.1 += get_u64(&obj, "bytes");
            }
            "journal_salvage" => r.salvages.push(Salvage {
                slot,
                shard,
                corrupt_records: get_u64(&obj, "corrupt_records"),
                salvaged_bytes: get_u64(&obj, "salvaged_bytes"),
                retries: get_u64(&obj, "retries"),
                checkpoint_fallbacks: get_u64(&obj, "checkpoint_fallbacks"),
            }),
            "disk_fallback" => r.disk_fallbacks.push((slot, shard)),
            "disk_fault" => r.disk_faults.push(DiskFault {
                slot,
                shard,
                target: get_str(&obj, "target"),
                kind: get_str(&obj, "fault"),
                bytes: get_u64(&obj, "bytes"),
            }),
            "disk_error" => r.disk_errors.push((
                slot,
                obj.get("shard").and_then(JsonValue::as_f64).unwrap_or(-1.0) as i64,
                get_str(&obj, "op"),
            )),
            "arm_eliminated" => r.eliminations.push(Elimination {
                slot,
                shard,
                arm: get_u64(&obj, "arm"),
                value_mhz: get_f64(&obj, "value_mhz"),
                active_left: get_u64(&obj, "active_left"),
            }),
            "restart" => r.restarts.push(Restart {
                slot,
                shard,
                replayed: get_u64(&obj, "replayed"),
                latency_slots: get_u64(&obj, "latency_slots"),
                ok: obj.get("ok") == Some(&JsonValue::Bool(true)),
            }),
            "fault_injected" => r
                .faults_injected
                .push((slot, shard, get_str(&obj, "fault"))),
            "fault_detected" => r
                .faults_detected
                .push((slot, shard, get_str(&obj, "reason"))),
            "served" => {
                r.latency
                    .entry(shard)
                    .or_insert_with(|| HistogramSnapshot::empty(LATENCY_MS_BOUNDS))
                    .record(get_f64(&obj, "lat_ms"));
            }
            kind @ ("slo_breach" | "slo_recovered") => r.slo_events.push(SloEvent {
                slot,
                spec: get_str(&obj, "slo"),
                breached: kind == "slo_breach",
                value: get_f64(&obj, "value"),
                burn_fast: get_f64(&obj, "burn_fast"),
                burn_slow: get_f64(&obj, "burn_slow"),
            }),
            "stall_shard" => {
                // Legacy lockstep traces carry `wait_ms` (barrier wait);
                // it folds into the watermark column.
                let watermark = if obj.contains_key("watermark_ms") {
                    get_f64(&obj, "watermark_ms")
                } else {
                    get_f64(&obj, "wait_ms")
                };
                r.stall_shards.push(StallShard {
                    shard,
                    work_ms: get_f64(&obj, "work_ms"),
                    mailbox_ms: get_f64(&obj, "mailbox_ms"),
                    watermark_ms: watermark,
                });
            }
            "stall_driver" => {
                let fold = if obj.contains_key("fold_ms") {
                    get_f64(&obj, "fold_ms")
                } else {
                    get_f64(&obj, "barrier_ms")
                };
                r.stall_driver = Some(StallDriver {
                    wall_ms: get_f64(&obj, "wall_ms"),
                    dispatch_ms: get_f64(&obj, "dispatch_ms"),
                    recovery_ms: get_f64(&obj, "recovery_ms"),
                    fold_ms: fold,
                    slots: get_u64(&obj, "slots"),
                });
            }
            "trace_drops" => r.trace_dropped += get_u64(&obj, "count"),
            "lifecycle_drops" => r.lifecycle_dropped += get_u64(&obj, "count"),
            "arm_lifecycle" => {
                *r.arm_lifecycle.entry(get_str(&obj, "event")).or_insert(0) += 1;
            }
            "arm_lifecycle_drops" => r.arm_lifecycle_dropped += get_u64(&obj, "count"),
            kind @ ("drift_suspected" | "drift_cleared") => r.drift_events.push(DriftEvent {
                slot,
                shard,
                arm: get_u64(&obj, "arm"),
                mean: get_f64(&obj, "mean"),
                score: get_f64(&obj, "score"),
                suspected: kind == "drift_suspected",
            }),
            "learning_state" => {
                r.learning.insert(
                    shard,
                    LearningState {
                        slot,
                        cum_reward: get_f64(&obj, "cum_reward"),
                        oracle: get_f64(&obj, "oracle"),
                        regret: get_f64(&obj, "regret"),
                        steps: get_u64(&obj, "steps"),
                    },
                );
            }
            "lp_state" => {
                r.lp.insert(
                    shard,
                    LpState {
                        slot,
                        solves: get_u64(&obj, "solves"),
                        warm_hits: get_u64(&obj, "warm_hits"),
                        warm_fallbacks: get_u64(&obj, "warm_fallbacks"),
                        cold_starts: get_u64(&obj, "cold_starts"),
                        pivots: get_u64(&obj, "pivots"),
                        refactorizations: get_u64(&obj, "refactorizations"),
                    },
                );
            }
            "flight_dump" => r.flight_dumps.push(FlightDump {
                slot,
                trigger: get_str(&obj, "trigger"),
                snapshots: get_u64(&obj, "snapshots"),
            }),
            "arm_state" => {
                let arm = get_u64(&obj, "arm");
                // A new sweep (later slot) replaces the previous table.
                let as_of = r.arms_as_of.entry(shard).or_insert(slot);
                if *as_of != slot {
                    *as_of = slot;
                    r.arms.insert(shard, BTreeMap::new());
                }
                r.arms.entry(shard).or_default().insert(
                    arm,
                    ArmRow {
                        arm,
                        value_mhz: get_f64(&obj, "value_mhz"),
                        pulls: get_u64(&obj, "pulls"),
                        mean: get_f64(&obj, "mean"),
                        ucb: get_f64(&obj, "ucb"),
                        lcb: get_f64(&obj, "lcb"),
                        active: obj.get("active") == Some(&JsonValue::Bool(true)),
                    },
                );
            }
            _ => {}
        }
    }
    Ok(r)
}

fn section(out: &mut String, title: &str) {
    let _ = writeln!(out, "\n== {title} ==");
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

impl RunReport {
    /// Renders the report as plain text.
    #[allow(clippy::too_many_lines)]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mec-obs report ({} events)", self.events);
        if self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: trace ring saturated — {} event(s) dropped; \
                 this report may be incomplete (raise the ring capacity)",
                self.trace_dropped
            );
        }
        if self.lifecycle_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: lifecycle ring saturated — {} record(s) dropped; \
                 request journeys may have gaps (raise the lifecycle ring capacity)",
                self.lifecycle_dropped
            );
        }

        if !self.run_start.is_empty() {
            section(&mut out, "run");
            for (k, v) in &self.run_start {
                let _ = writeln!(out, "  {k}: {v}");
            }
        }
        if !self.run_end.is_empty() {
            section(&mut out, "outcome");
            for (k, v) in &self.run_end {
                let _ = writeln!(out, "  {k}: {v}");
            }
        }

        section(&mut out, "admission funnel");
        if self.funnel.values().all(|&v| v == 0) {
            let _ = writeln!(out, "  (no admission events traced)");
        } else {
            let total: u64 = self.funnel.values().sum();
            let _ = writeln!(out, "  offered: {total}");
            for key in ["admitted", "buffered", "spilled", "shed", "shed_down"] {
                let v = self.funnel.get(key).copied().unwrap_or(0);
                let pct = if total > 0 {
                    100.0 * v as f64 / total as f64
                } else {
                    0.0
                };
                let _ = writeln!(out, "  {key:>9}: {v} ({pct:.1}%)");
            }
        }

        if !self.slo_events.is_empty() {
            section(&mut out, "slo");
            for e in &self.slo_events {
                let verdict = if e.breached { "BREACHED" } else { "recovered" };
                let _ = writeln!(
                    out,
                    "  slot {:>6}  {} {verdict} (value {:.4}, burn fast {:.2} / slow {:.2})",
                    e.slot, e.spec, e.value, e.burn_fast, e.burn_slow
                );
            }
            // Final state per spec: the last transition wins.
            let mut last: BTreeMap<&str, &SloEvent> = BTreeMap::new();
            for e in &self.slo_events {
                last.insert(e.spec.as_str(), e);
            }
            for (spec, e) in &last {
                let state = if e.breached {
                    "still breached at end of trace"
                } else {
                    "healthy at end of trace"
                };
                let _ = writeln!(out, "  {spec}: {state}");
            }
        }

        let placement_active = self.placement.values().any(|&v| v > 0)
            || self.installs.0 > 0
            || !self.reconfigs.is_empty();
        if placement_active {
            section(&mut out, "placement");
            for key in ["hits", "misses", "redirects", "rehomed", "held", "shed"] {
                let v = self.placement.get(key).copied().unwrap_or(0);
                let _ = writeln!(out, "  {key:>9}: {v}");
            }
            let (total, warm) = self.installs;
            let _ = writeln!(out, "   installs: {total} ({warm} warm)");
            if let Some(hist) = &self.install_latency {
                let _ = writeln!(
                    out,
                    "  install latency (slots): n={} mean={:.1} p50~{:.1} p95~{:.1}",
                    hist.count,
                    if hist.count > 0 {
                        hist.sum / hist.count as f64
                    } else {
                        0.0
                    },
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                );
            }
            if !self.reconfigs.is_empty() {
                let _ = writeln!(out, "  reconfiguration timeline:");
                for r in &self.reconfigs {
                    if r.op == "handoff" {
                        let takeover = if r.takeover < 0 {
                            "nobody".to_string()
                        } else {
                            format!("station {}", r.takeover)
                        };
                        let _ = writeln!(
                            out,
                            "    slot {:>6}  station {} handed off to {takeover} \
                             ({} journal entr(ies) migrated)",
                            r.slot, r.station, r.migrated
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "    slot {:>6}  {} station {}",
                            r.slot, r.op, r.station
                        );
                    }
                }
            }
        }

        section(&mut out, "arm-elimination timeline");
        if self.eliminations.is_empty() {
            let _ = writeln!(out, "  (no eliminations recorded)");
        } else {
            for e in &self.eliminations {
                let _ = writeln!(
                    out,
                    "  slot {:>6}  shard {}  arm {} ({:.1} MHz) eliminated, {} active left",
                    e.slot, e.shard, e.arm, e.value_mhz, e.active_left
                );
            }
        }

        let learning_active = !self.arm_lifecycle.is_empty()
            || !self.drift_events.is_empty()
            || !self.learning.is_empty()
            || !self.lp.is_empty()
            || !self.flight_dumps.is_empty()
            || self.arm_lifecycle_dropped > 0;
        if learning_active {
            section(&mut out, "learning");
            if !self.arm_lifecycle.is_empty() {
                let total: u64 = self.arm_lifecycle.values().sum();
                let _ = writeln!(out, "  arm-lifecycle events: {total}");
                for kind in [
                    "activate",
                    "sample",
                    "bound_update",
                    "eliminate",
                    "reactivate",
                ] {
                    if let Some(&n) = self.arm_lifecycle.get(kind) {
                        let _ = writeln!(out, "    {kind:>12}: {n}");
                    }
                }
                for (kind, n) in &self.arm_lifecycle {
                    if !matches!(
                        kind.as_str(),
                        "activate" | "sample" | "bound_update" | "eliminate" | "reactivate"
                    ) {
                        let _ = writeln!(out, "    {kind:>12}: {n}");
                    }
                }
            }
            if self.arm_lifecycle_dropped > 0 {
                let _ = writeln!(
                    out,
                    "  WARNING: learner probe buffer saturated — {} event(s) dropped \
                     before the driver drained them",
                    self.arm_lifecycle_dropped
                );
            }
            for (shard, l) in &self.learning {
                let _ = writeln!(
                    out,
                    "  shard {shard} regret (as of slot {}): {:.4} \
                     (realized {:.4} vs oracle {:.4} over {} step(s))",
                    l.slot, l.regret, l.cum_reward, l.oracle, l.steps
                );
            }
            for (shard, lp) in &self.lp {
                let warm_pct = pct(lp.warm_hits as f64, lp.solves as f64);
                let _ = writeln!(
                    out,
                    "  shard {shard} slot-lp (as of slot {}): {} solve(s), \
                     {} warm hit(s) ({warm_pct:.1}%), {} fallback(s), {} cold, \
                     {} pivot(s), {} refactorization(s)",
                    lp.slot,
                    lp.solves,
                    lp.warm_hits,
                    lp.warm_fallbacks,
                    lp.cold_starts,
                    lp.pivots,
                    lp.refactorizations
                );
            }
            if !self.drift_events.is_empty() {
                let _ = writeln!(out, "  drift timeline:");
                for d in &self.drift_events {
                    let verdict = if d.suspected { "SUSPECTED" } else { "cleared" };
                    let _ = writeln!(
                        out,
                        "    slot {:>6}  shard {}  arm {} drift {verdict} \
                         (mean {:.4}, score {:.3})",
                        d.slot, d.shard, d.arm, d.mean, d.score
                    );
                }
            }
            for f in &self.flight_dumps {
                let _ = writeln!(
                    out,
                    "  slot {:>6}  flight recorder dumped {} snapshot(s) \
                     (trigger: {})",
                    f.slot, f.snapshots, f.trigger
                );
            }
        }

        if !self.faults_injected.is_empty()
            || !self.faults_detected.is_empty()
            || !self.restarts.is_empty()
        {
            section(&mut out, "faults and recovery");
            for (slot, shard, kind) in &self.faults_injected {
                let _ = writeln!(out, "  slot {slot:>6}  shard {shard}  injected: {kind}");
            }
            for (slot, shard, reason) in &self.faults_detected {
                let _ = writeln!(out, "  slot {slot:>6}  shard {shard}  detected: {reason}");
            }
            for r in &self.restarts {
                let verdict = if r.ok { "recovered" } else { "failed" };
                let _ = writeln!(
                    out,
                    "  slot {:>6}  shard {}  restart {verdict}: {} arrival(s) replayed, \
                     outage {} slot(s)",
                    r.slot, r.shard, r.replayed, r.latency_slots
                );
            }
        }

        let handoffs: Vec<&Reconfig> = self
            .reconfigs
            .iter()
            .filter(|r| r.op == "handoff")
            .collect();
        let recovery_active = self.checkpoint_writes.0 > 0
            || !self.salvages.is_empty()
            || !self.disk_fallbacks.is_empty()
            || !self.disk_faults.is_empty()
            || !self.disk_errors.is_empty()
            || !self.restarts.is_empty()
            || handoffs.iter().any(|h| h.bytes > 0);
        if recovery_active {
            section(&mut out, "recovery");
            let (writes, bytes) = self.checkpoint_writes;
            if writes > 0 {
                let _ = writeln!(
                    out,
                    "  checkpoints mirrored: {writes} ({bytes} bytes, mean {:.0})",
                    bytes as f64 / writes as f64
                );
            }
            let ok: Vec<&Restart> = self.restarts.iter().filter(|r| r.ok).collect();
            if !ok.is_empty() {
                let total: u64 = ok.iter().map(|r| r.latency_slots).sum();
                let max = ok.iter().map(|r| r.latency_slots).max().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  restores: {} (outage mean {:.1} slot(s), max {max})",
                    ok.len(),
                    total as f64 / ok.len() as f64
                );
            }
            for f in &self.disk_faults {
                let _ = writeln!(
                    out,
                    "  slot {:>6}  shard {}  injected disk fault: {} {} ({} byte(s))",
                    f.slot, f.shard, f.kind, f.target, f.bytes
                );
            }
            for s in &self.salvages {
                let _ = writeln!(
                    out,
                    "  slot {:>6}  shard {}  salvage: {} corrupt record(s), \
                     {} byte(s) truncated, {} retr(ies), {} checkpoint fallback(s)",
                    s.slot,
                    s.shard,
                    s.corrupt_records,
                    s.salvaged_bytes,
                    s.retries,
                    s.checkpoint_fallbacks
                );
            }
            for (slot, shard) in &self.disk_fallbacks {
                let _ = writeln!(
                    out,
                    "  slot {slot:>6}  shard {shard}  disk mirror distrusted; \
                     recovered from memory and healed"
                );
            }
            for (slot, shard, op) in &self.disk_errors {
                let who = if *shard < 0 {
                    "store".to_string()
                } else {
                    format!("shard {shard}")
                };
                let _ = writeln!(out, "  slot {slot:>6}  {who}  disk {op} error absorbed");
            }
            if handoffs.iter().any(|h| h.bytes > 0) {
                let _ = writeln!(out, "  per-handoff moved state:");
                for h in &handoffs {
                    let _ = writeln!(
                        out,
                        "    slot {:>6}  station {}: {} job(s), {} byte(s)",
                        h.slot, h.station, h.migrated, h.bytes
                    );
                }
            }
        }

        if !self.stall_shards.is_empty() || self.stall_driver.is_some() {
            section(&mut out, "barrier-stall attribution");
            let wall = self.stall_driver.map_or(0.0, |d| d.wall_ms);
            if let Some(d) = &self.stall_driver {
                let _ = writeln!(
                    out,
                    "  driver wall {:.1} ms over {} slot(s): dispatch {:.1} ms ({:.1}%), \
                     recovery {:.1} ms ({:.1}%), watermark fold {:.1} ms ({:.1}%)",
                    d.wall_ms,
                    d.slots,
                    d.dispatch_ms,
                    pct(d.dispatch_ms, wall),
                    d.recovery_ms,
                    pct(d.recovery_ms, wall),
                    d.fold_ms,
                    pct(d.fold_ms, wall),
                );
            }
            let mut work_shares = Vec::new();
            let mut wait_shares = Vec::new();
            for s in &self.stall_shards {
                let total = s.work_ms + s.mailbox_ms + s.watermark_ms;
                let denom = if wall > 0.0 { wall } else { total };
                work_shares.push(pct(s.work_ms, denom));
                wait_shares.push(pct(s.watermark_ms, denom));
                let _ = writeln!(
                    out,
                    "  shard {}: work {:.1} ms ({:.1}%) + mailbox {:.1} ms ({:.1}%) \
                     + watermark-wait {:.1} ms ({:.1}%) = {:.1} ms ({:.1}% of wall)",
                    s.shard,
                    s.work_ms,
                    pct(s.work_ms, denom),
                    s.mailbox_ms,
                    pct(s.mailbox_ms, denom),
                    s.watermark_ms,
                    pct(s.watermark_ms, denom),
                    total,
                    pct(total, denom),
                );
            }
            if !work_shares.is_empty() {
                let mean = work_shares.iter().sum::<f64>() / work_shares.len() as f64;
                let wait = wait_shares.iter().sum::<f64>() / wait_shares.len() as f64;
                let _ = writeln!(
                    out,
                    "  mean shard work share: {mean:.1}%; mean watermark-wait share: \
                     {wait:.1}% — watermark waits are where a lease span too short \
                     (or a straggler shard) caps scaling"
                );
            }
        }

        if !self.latency.is_empty() {
            section(&mut out, "per-shard latency (ms, from served events)");
            for (shard, hist) in &self.latency {
                let _ = writeln!(
                    out,
                    "  shard {shard}: n={} mean={:.1} p50~{:.1} p95~{:.1} p99~{:.1}",
                    hist.count,
                    if hist.count > 0 {
                        hist.sum / hist.count as f64
                    } else {
                        0.0
                    },
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                );
                let peak = hist.counts.iter().copied().max().unwrap_or(0).max(1);
                for (i, &c) in hist.counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let le = hist
                        .bounds
                        .get(i)
                        .map_or_else(|| "+Inf".to_string(), |b| format!("{b}"));
                    let bar = "#".repeat((1 + c * 40 / peak) as usize);
                    let _ = writeln!(out, "    le {le:>6}: {c:>7} {bar}");
                }
            }
        }

        if !self.arms.is_empty() {
            section(&mut out, "final bandit state");
            for (shard, arms) in &self.arms {
                let as_of = self.arms_as_of.get(shard).copied().unwrap_or(0);
                let _ = writeln!(out, "  shard {shard} (as of slot {as_of}):");
                let _ = writeln!(
                    out,
                    "    {:>3} {:>9} {:>7} {:>7} {:>7} {:>7}  state",
                    "arm", "mhz", "pulls", "mean", "lcb", "ucb"
                );
                for row in arms.values() {
                    let state = if row.active { "active" } else { "eliminated" };
                    let _ = writeln!(
                        out,
                        "    {:>3} {:>9.1} {:>7} {:>7.3} {:>7.3} {:>7.3}  {state}",
                        row.arm, row.value_mhz, row.pulls, row.mean, row.lcb, row.ucb
                    );
                }
            }
        }
        out
    }
}

/// Summary of a `--lifecycle-out` request-journey stream.
#[derive(Debug, Default)]
pub struct LifecycleReport {
    /// Records read.
    pub records: u64,
    /// Distinct request ids seen.
    pub requests: u64,
    /// Records per stage name, sorted.
    pub stages: BTreeMap<String, u64>,
    /// Slot range covered (first, last).
    pub slots: Option<(u64, u64)>,
}

/// Does this line look like a lifecycle record? (`id` and `stage`
/// fields, no `kind` — trace events always carry `kind`.)
pub fn sniff_lifecycle(first_line: &str) -> bool {
    parse_flat_object(first_line.trim()).is_ok_and(|obj| {
        obj.contains_key("id") && obj.contains_key("stage") && !obj.contains_key("kind")
    })
}

/// Folds a lifecycle JSONL stream into a [`LifecycleReport`]. Blank
/// lines are skipped.
///
/// # Errors
///
/// Fails on the first malformed line, reporting its 1-based number —
/// callers salvage a torn tail exactly like they do for traces.
pub fn build_lifecycle_report<I, S>(lines: I) -> Result<LifecycleReport, (usize, ParseError)>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut r = LifecycleReport::default();
    let mut ids = std::collections::BTreeSet::new();
    for (i, line) in lines.into_iter().enumerate() {
        let line = line.as_ref().trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| (i + 1, e))?;
        r.records += 1;
        ids.insert(get_u64(&obj, "id"));
        *r.stages.entry(get_str(&obj, "stage")).or_insert(0) += 1;
        let slot = get_u64(&obj, "slot");
        r.slots = Some(match r.slots {
            None => (slot, slot),
            Some((lo, hi)) => (lo.min(slot), hi.max(slot)),
        });
    }
    r.requests = ids.len() as u64;
    Ok(r)
}

impl LifecycleReport {
    /// Renders the summary as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mec-obs lifecycle report ({} record(s), {} request(s))",
            self.records, self.requests
        );
        if let Some((lo, hi)) = self.slots {
            let _ = writeln!(out, "  slots {lo}..={hi}");
        }
        for (stage, n) in &self.stages {
            let _ = writeln!(out, "  {stage:>9}: {n}");
        }
        out
    }
}

/// One dump block inside a flight-recorder stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDumpBlock {
    /// The header (trigger, slot, advertised snapshot count).
    pub header: FlightDump,
    /// Snapshot lines actually present under this header.
    pub snapshots: u64,
    /// Slot range the snapshots cover.
    pub slots: Option<(u64, u64)>,
    /// Distinct shards contributing snapshots.
    pub shards: u64,
}

/// Summary of a `--flight-out` decision flight-recorder stream.
#[derive(Debug, Default)]
pub struct FlightStreamReport {
    /// Lines read.
    pub events: u64,
    /// The dump blocks, in stream order.
    pub dumps: Vec<FlightDumpBlock>,
}

/// Does this line look like a flight-recorder stream? (First event is
/// always a `flight_dump` header; a bare `flight` line means a torn
/// stream, still recognizably flight data.)
pub fn sniff_flight(first_line: &str) -> bool {
    parse_flat_object(first_line.trim())
        .is_ok_and(|obj| matches!(get_str(&obj, "kind").as_str(), "flight_dump" | "flight"))
}

/// Folds a flight-recorder JSONL stream into a [`FlightStreamReport`].
///
/// # Errors
///
/// Fails on the first malformed line, reporting its 1-based number —
/// callers salvage a torn tail exactly like they do for traces.
pub fn build_flight_report<I, S>(lines: I) -> Result<FlightStreamReport, (usize, ParseError)>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut r = FlightStreamReport::default();
    let mut shards = std::collections::BTreeSet::new();
    for (i, line) in lines.into_iter().enumerate() {
        let line = line.as_ref().trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| (i + 1, e))?;
        r.events += 1;
        let slot = get_u64(&obj, "slot");
        match get_str(&obj, "kind").as_str() {
            "flight_dump" => {
                if let Some(last) = r.dumps.last_mut() {
                    last.shards = shards.len() as u64;
                }
                shards.clear();
                r.dumps.push(FlightDumpBlock {
                    header: FlightDump {
                        slot,
                        trigger: get_str(&obj, "trigger"),
                        snapshots: get_u64(&obj, "snapshots"),
                    },
                    snapshots: 0,
                    slots: None,
                    shards: 0,
                });
            }
            "flight" => {
                shards.insert(get_u64(&obj, "shard"));
                if let Some(dump) = r.dumps.last_mut() {
                    dump.snapshots += 1;
                    dump.slots = Some(match dump.slots {
                        None => (slot, slot),
                        Some((lo, hi)) => (lo.min(slot), hi.max(slot)),
                    });
                    dump.shards = shards.len() as u64;
                }
            }
            _ => {}
        }
    }
    Ok(r)
}

impl FlightStreamReport {
    /// Renders the summary as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mec-obs flight report ({} dump(s), {} line(s))",
            self.dumps.len(),
            self.events
        );
        for d in &self.dumps {
            let range = d.slots.map_or_else(
                || "no snapshots".to_string(),
                |(lo, hi)| format!("slots {lo}..={hi}"),
            );
            let _ = writeln!(
                out,
                "  slot {:>6}  trigger {}: {} snapshot(s) over {} shard(s), {range}",
                d.header.slot, d.header.trigger, d.snapshots, d.shards
            );
            if d.snapshots != d.header.snapshots {
                let _ = writeln!(
                    out,
                    "    WARNING: header advertised {} snapshot(s) but {} present \
                     (torn dump?)",
                    d.header.snapshots, d.snapshots
                );
            }
            if let Some((_, hi)) = d.slots {
                if hi != d.header.slot {
                    let _ = writeln!(
                        out,
                        "    note: last snapshot slot {hi} != trigger slot {} \
                         (shards may have lagged the trigger)",
                        d.header.slot
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[&str] = &[
        r#"{"slot":0,"kind":"run_start","shards":2,"policy":"DynamicRR","seed":7}"#,
        r#"{"slot":3,"kind":"admission","admitted":10,"buffered":0,"spilled":1,"shed":2,"shed_down":0}"#,
        r#"{"slot":4,"kind":"admission","admitted":5,"buffered":1,"spilled":0,"shed":0,"shed_down":3}"#,
        r#"{"slot":5,"kind":"fault_injected","shard":1,"fault":"crash"}"#,
        r#"{"slot":5,"kind":"fault_detected","shard":1,"reason":"disconnect"}"#,
        r#"{"slot":9,"kind":"restart","shard":1,"replayed":12,"latency_slots":4,"ok":true}"#,
        r#"{"slot":10,"kind":"served","shard":0,"lat_ms":42.0}"#,
        r#"{"slot":11,"kind":"served","shard":0,"lat_ms":180.0}"#,
        r#"{"slot":12,"kind":"arm_eliminated","shard":0,"arm":8,"value_mhz":1000.0,"active_left":8}"#,
        r#"{"slot":20,"kind":"arm_state","shard":0,"arm":0,"value_mhz":100.0,"pulls":9,"mean":0.5,"ucb":0.9,"lcb":0.1,"active":true}"#,
        r#"{"slot":40,"kind":"arm_state","shard":0,"arm":0,"value_mhz":100.0,"pulls":19,"mean":0.6,"ucb":0.8,"lcb":0.4,"active":true}"#,
        r#"{"slot":40,"kind":"arm_state","shard":0,"arm":8,"value_mhz":1000.0,"pulls":4,"mean":0.1,"ucb":0.5,"lcb":-0.3,"active":false}"#,
        r#"{"slot":99,"kind":"run_end","admitted":15,"shed":2,"completed":14}"#,
    ];

    #[test]
    fn builds_and_renders_all_sections() {
        let report = build_report(SAMPLE.iter().copied()).unwrap();
        assert_eq!(report.events, 13);
        assert_eq!(report.funnel["admitted"], 15);
        assert_eq!(report.funnel["shed_down"], 3);
        assert_eq!(report.eliminations.len(), 1);
        assert_eq!(report.restarts[0].replayed, 12);
        assert_eq!(report.latency[&0].count, 2);
        // The slot-40 sweep replaced the slot-20 one.
        assert_eq!(report.arms[&0][&0].pulls, 19);
        assert_eq!(report.arms_as_of[&0], 40);

        let text = report.render();
        assert!(text.contains("arm-elimination timeline"), "{text}");
        assert!(
            text.contains("arm 8 (1000.0 MHz) eliminated, 8 active left"),
            "{text}"
        );
        assert!(text.contains("admission funnel"), "{text}");
        assert!(
            text.contains("restart recovered: 12 arrival(s) replayed"),
            "{text}"
        );
        assert!(text.contains("final bandit state"), "{text}");
        assert!(text.contains("eliminated"), "{text}");
    }

    #[test]
    fn placement_events_render_their_own_section() {
        let lines = [
            r#"{"slot":3,"kind":"placement","hits":4,"misses":6,"redirects":2,"rehomed":1,"held":3,"shed":0}"#,
            r#"{"slot":5,"kind":"placement","hits":6,"misses":1,"redirects":0,"rehomed":0,"held":0,"shed":1}"#,
            r#"{"slot":6,"kind":"install","station":2,"service":17,"warm":false,"latency_slots":4}"#,
            r#"{"slot":7,"kind":"install","station":2,"service":3,"warm":true,"latency_slots":2}"#,
            r#"{"slot":8,"kind":"reconfig","op":"drain","station":5}"#,
            r#"{"slot":12,"kind":"handoff","station":5,"takeover":9,"migrated":7,"leave":false}"#,
            r#"{"slot":20,"kind":"handoff","station":9,"takeover":-1,"migrated":0,"leave":true}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.placement["hits"], 10);
        assert_eq!(report.placement["misses"], 7);
        assert_eq!(report.installs, (2, 1));
        assert_eq!(report.install_latency.as_ref().unwrap().count, 2);
        assert_eq!(report.reconfigs.len(), 3);
        assert_eq!(report.reconfigs[1].takeover, 9);

        let text = report.render();
        assert!(text.contains("== placement =="), "{text}");
        assert!(text.contains("installs: 2 (1 warm)"), "{text}");
        assert!(text.contains("drain station 5"), "{text}");
        assert!(
            text.contains("station 5 handed off to station 9 (7 journal entr(ies) migrated)"),
            "{text}"
        );
        assert!(text.contains("station 9 handed off to nobody"), "{text}");
    }

    #[test]
    fn recovery_events_render_their_own_section() {
        let lines = [
            r#"{"slot":4,"kind":"checkpoint_write","shard":0,"bytes":900}"#,
            r#"{"slot":8,"kind":"checkpoint_write","shard":1,"bytes":1100}"#,
            r#"{"slot":10,"kind":"disk_fault","shard":1,"target":"journal","fault":"corrupt","bytes":16}"#,
            r#"{"slot":14,"kind":"journal_salvage","shard":1,"corrupt_records":2,"salvaged_bytes":64,"retries":1,"checkpoint_fallbacks":0}"#,
            r#"{"slot":14,"kind":"disk_fallback","shard":1}"#,
            r#"{"slot":14,"kind":"restart","shard":1,"replayed":30,"latency_slots":4,"ok":true}"#,
            r#"{"slot":15,"kind":"disk_error","shard":-1,"op":"flush","error":"boom"}"#,
            r#"{"slot":20,"kind":"handoff","station":5,"takeover":9,"migrated":7,"bytes":512,"leave":false}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.checkpoint_writes, (2, 2000));
        assert_eq!(report.salvages.len(), 1);
        assert_eq!(report.salvages[0].salvaged_bytes, 64);
        assert_eq!(report.disk_fallbacks, vec![(14, 1)]);
        assert_eq!(report.disk_errors, vec![(15, -1, "flush".to_string())]);
        assert_eq!(report.reconfigs[0].bytes, 512);

        let text = report.render();
        assert!(text.contains("== recovery =="), "{text}");
        assert!(
            text.contains("checkpoints mirrored: 2 (2000 bytes, mean 1000)"),
            "{text}"
        );
        assert!(
            text.contains("salvage: 2 corrupt record(s), 64 byte(s) truncated"),
            "{text}"
        );
        assert!(text.contains("disk mirror distrusted"), "{text}");
        assert!(text.contains("store  disk flush error absorbed"), "{text}");
        assert!(text.contains("station 5: 7 job(s), 512 byte(s)"), "{text}");
    }

    #[test]
    fn quiet_runs_omit_the_recovery_section() {
        let lines = [
            r#"{"slot":3,"kind":"admission","admitted":10,"buffered":0,"spilled":0,"shed":0,"shed_down":0}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert!(!report.render().contains("== recovery =="));
    }

    #[test]
    fn quiet_runs_omit_the_placement_section() {
        let report = build_report(SAMPLE.iter().copied()).unwrap();
        assert!(!report.render().contains("== placement =="));
    }

    #[test]
    fn empty_trace_renders_placeholders() {
        let report = build_report(std::iter::empty::<&str>()).unwrap();
        let text = report.render();
        assert!(text.contains("(no eliminations recorded)"), "{text}");
        assert!(text.contains("(no admission events traced)"), "{text}");
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = build_report(["{}", "not json"].iter().copied()).unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn slo_transitions_render_timeline_and_final_state() {
        let lines = [
            r#"{"slot":83,"kind":"slo_breach","slo":"deadline_hit_rate>=0.95@512","value":0.9120,"burn_fast":4.20,"burn_slow":1.30}"#,
            r#"{"slot":164,"kind":"slo_recovered","slo":"deadline_hit_rate>=0.95@512","value":0.9612,"burn_fast":0.40,"burn_slow":1.10}"#,
            r#"{"slot":190,"kind":"slo_breach","slo":"p99_latency<=250@512","value":310.0,"burn_fast":2.00,"burn_slow":1.50}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.slo_events.len(), 3);
        assert!(report.slo_events[0].breached);
        assert!(!report.slo_events[1].breached);

        let text = report.render();
        assert!(text.contains("== slo =="), "{text}");
        assert!(
            text.contains(
                "slot     83  deadline_hit_rate>=0.95@512 BREACHED \
                 (value 0.9120, burn fast 4.20 / slow 1.30)"
            ),
            "{text}"
        );
        assert!(
            text.contains("deadline_hit_rate>=0.95@512: healthy at end of trace"),
            "{text}"
        );
        assert!(
            text.contains("p99_latency<=250@512: still breached at end of trace"),
            "{text}"
        );
    }

    #[test]
    fn stall_events_render_barrier_attribution() {
        let lines = [
            r#"{"slot":250,"kind":"stall_shard","shard":0,"work_ms":2000.0,"mailbox_ms":500.0,"watermark_ms":7500.0}"#,
            r#"{"slot":250,"kind":"stall_shard","shard":1,"work_ms":4000.0,"mailbox_ms":0.0,"watermark_ms":6000.0}"#,
            r#"{"slot":250,"kind":"stall_driver","wall_ms":10000.0,"dispatch_ms":500.0,"recovery_ms":0.0,"fold_ms":9000.0,"slots":250}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.stall_shards.len(), 2);
        let d = report.stall_driver.unwrap();
        assert_eq!(d.slots, 250);
        assert_eq!(d.fold_ms, 9000.0);

        let text = report.render();
        assert!(text.contains("== barrier-stall attribution =="), "{text}");
        assert!(
            text.contains("driver wall 10000.0 ms over 250 slot(s)"),
            "{text}"
        );
        // Shard 0: 20% work + 5% mailbox + 75% watermark, 100% of wall.
        assert!(
            text.contains(
                "shard 0: work 2000.0 ms (20.0%) + mailbox 500.0 ms (5.0%) \
                 + watermark-wait 7500.0 ms (75.0%) = 10000.0 ms (100.0% of wall)"
            ),
            "{text}"
        );
        // Mean work share over the two shards: (20 + 40) / 2 = 30%.
        assert!(text.contains("mean shard work share: 30.0%"), "{text}");
        // Mean watermark-wait share: (75 + 60) / 2 = 67.5%.
        assert!(text.contains("mean watermark-wait share: 67.5%"), "{text}");
    }

    #[test]
    fn legacy_lockstep_stall_events_still_parse() {
        // Traces written by the pre-epoch lockstep runtime: a single
        // `wait_ms` (barrier wait) and a driver `barrier_ms` phase.
        let lines = [
            r#"{"slot":250,"kind":"stall_shard","shard":0,"work_ms":2000.0,"wait_ms":8000.0}"#,
            r#"{"slot":250,"kind":"stall_driver","wall_ms":10000.0,"dispatch_ms":500.0,"recovery_ms":0.0,"barrier_ms":9000.0,"slots":250}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.stall_shards[0].watermark_ms, 8000.0);
        assert_eq!(report.stall_shards[0].mailbox_ms, 0.0);
        assert_eq!(report.stall_driver.unwrap().fold_ms, 9000.0);
        let text = report.render();
        assert!(text.contains("watermark-wait 8000.0 ms (80.0%)"), "{text}");
    }

    #[test]
    fn learning_events_render_their_own_section() {
        let lines = [
            r#"{"slot":1,"kind":"arm_lifecycle","shard":0,"arm":0,"event":"activate","pulls":0,"mean":0.0,"radius":null,"value_mhz":100.0}"#,
            r#"{"slot":5,"kind":"arm_lifecycle","shard":0,"arm":0,"event":"sample","pulls":3,"mean":0.5,"radius":0.4,"value_mhz":100.0}"#,
            r#"{"slot":5,"kind":"arm_lifecycle","shard":0,"arm":0,"event":"bound_update","pulls":3,"mean":0.5,"radius":0.4,"value_mhz":100.0}"#,
            r#"{"slot":9,"kind":"arm_lifecycle","shard":0,"arm":2,"event":"eliminate","pulls":4,"mean":0.1,"radius":0.3,"value_mhz":1000.0}"#,
            r#"{"slot":12,"kind":"drift_suspected","shard":0,"arm":1,"mean":0.3120,"score":2.145}"#,
            r#"{"slot":30,"kind":"drift_cleared","shard":0,"arm":1,"mean":0.7,"score":0.1}"#,
            r#"{"slot":40,"kind":"learning_state","shard":0,"cum_reward":22.5,"oracle":24.0,"regret":1.5,"steps":40}"#,
            r#"{"slot":40,"kind":"lp_state","shard":0,"solves":40,"warm_hits":36,"warm_fallbacks":2,"cold_starts":2,"pivots":120,"refactorizations":3}"#,
            r#"{"slot":41,"kind":"flight_dump","trigger":"drift","snapshots":12,"evicted":3}"#,
            r#"{"slot":50,"kind":"arm_lifecycle_drops","count":7}"#,
        ];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.arm_lifecycle["sample"], 1);
        assert_eq!(report.arm_lifecycle["eliminate"], 1);
        assert_eq!(report.drift_events.len(), 2);
        assert!(report.drift_events[0].suspected);
        assert!(!report.drift_events[1].suspected);
        assert_eq!(report.learning[&0].steps, 40);
        assert_eq!(report.lp[&0].warm_hits, 36);
        assert_eq!(report.flight_dumps[0].trigger, "drift");
        assert_eq!(report.arm_lifecycle_dropped, 7);

        let text = report.render();
        assert!(text.contains("== learning =="), "{text}");
        assert!(text.contains("arm-lifecycle events: 4"), "{text}");
        assert!(
            text.contains("arm 1 drift SUSPECTED (mean 0.3120, score 2.145)"),
            "{text}"
        );
        assert!(
            text.contains("shard 0 regret (as of slot 40): 1.5000"),
            "{text}"
        );
        assert!(
            text.contains("40 solve(s), 36 warm hit(s) (90.0%), 2 fallback(s), 2 cold"),
            "{text}"
        );
        assert!(
            text.contains("flight recorder dumped 12 snapshot(s) (trigger: drift)"),
            "{text}"
        );
        assert!(
            text.contains("learner probe buffer saturated — 7 event(s) dropped"),
            "{text}"
        );
        // Quiet runs omit the section.
        let quiet = build_report(SAMPLE.iter().copied()).unwrap();
        assert!(!quiet.render().contains("== learning =="));
    }

    #[test]
    fn lifecycle_drops_warn_up_top() {
        let lines = [r#"{"slot":80,"kind":"lifecycle_drops","count":9}"#];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.lifecycle_dropped, 9);
        let text = report.render();
        assert!(
            text.contains("WARNING: lifecycle ring saturated — 9 record(s) dropped"),
            "{text}"
        );
    }

    #[test]
    fn lifecycle_stream_builds_salvages_and_sniffs() {
        let lines = [
            r#"{"id":1,"stage":"admit","slot":0,"shard":-1,"bs":3}"#,
            r#"{"id":1,"stage":"start","slot":2,"shard":0,"bs":3}"#,
            r#"{"id":2,"stage":"admit","slot":2,"shard":-1,"bs":4}"#,
            r#"{"id":1,"stage":"complete","slot":9,"shard":0,"bs":3}"#,
        ];
        assert!(sniff_lifecycle(lines[0]));
        assert!(!sniff_lifecycle(SAMPLE[0]), "trace lines must not sniff");
        let r = build_lifecycle_report(lines.iter().copied()).unwrap();
        assert_eq!(r.records, 4);
        assert_eq!(r.requests, 2);
        assert_eq!(r.stages["admit"], 2);
        assert_eq!(r.slots, Some((0, 9)));
        let text = r.render();
        assert!(text.contains("4 record(s), 2 request(s)"), "{text}");
        assert!(text.contains("slots 0..=9"), "{text}");

        // A torn final line errors exactly there, and the prefix
        // salvages cleanly — the bin's recovery contract.
        let mut torn: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        torn.push(r#"{"id":3,"stage":"adm"#.to_string());
        let (line_no, _) = build_lifecycle_report(&torn).unwrap_err();
        assert_eq!(line_no, 5);
        let salvaged = build_lifecycle_report(&torn[..line_no - 1]).unwrap();
        assert_eq!(salvaged.records, 4);
    }

    #[test]
    fn flight_stream_builds_salvages_and_sniffs() {
        let lines = [
            r#"{"slot":60,"kind":"flight_dump","trigger":"crash","snapshots":3,"evicted":0}"#,
            r#"{"slot":58,"kind":"flight","shard":0,"arm":3,"value":400.0,"active_arms":5,"best_arm":3,"best_mean":0.7,"granted":9,"granted_mhz":3600.0,"assign_digest":123,"lp_solves":0,"lp_warm_hits":0,"lp_pivots":0}"#,
            r#"{"slot":59,"kind":"flight","shard":0,"arm":3,"value":400.0,"active_arms":5,"best_arm":3,"best_mean":0.7,"granted":9,"granted_mhz":3600.0,"assign_digest":124,"lp_solves":0,"lp_warm_hits":0,"lp_pivots":0}"#,
            r#"{"slot":60,"kind":"flight","shard":0,"arm":3,"value":400.0,"active_arms":5,"best_arm":3,"best_mean":0.7,"granted":9,"granted_mhz":3600.0,"assign_digest":125,"lp_solves":0,"lp_warm_hits":0,"lp_pivots":0}"#,
        ];
        assert!(sniff_flight(lines[0]));
        assert!(sniff_flight(lines[1]), "bare snapshots still sniff");
        assert!(!sniff_flight(SAMPLE[0]));
        let r = build_flight_report(lines.iter().copied()).unwrap();
        assert_eq!(r.dumps.len(), 1);
        assert_eq!(r.dumps[0].snapshots, 3);
        assert_eq!(r.dumps[0].slots, Some((58, 60)));
        assert_eq!(r.dumps[0].shards, 1);
        let text = r.render();
        assert!(
            text.contains("trigger crash: 3 snapshot(s) over 1 shard(s), slots 58..=60"),
            "{text}"
        );
        assert!(!text.contains("WARNING"), "complete dump: {text}");

        // Torn tail: error at the last line, salvage the prefix; the
        // under-count vs. the header is called out.
        let mut torn: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        torn.push(r#"{"slot":60,"kind":"fli"#.to_string());
        let (line_no, _) = build_flight_report(&torn).unwrap_err();
        assert_eq!(line_no, 5);
        let salvaged = build_flight_report(&torn[..line_no - 1]).unwrap();
        assert_eq!(salvaged.dumps[0].snapshots, 3);
        let partial = build_flight_report(lines[..3].iter().copied()).unwrap();
        assert!(
            partial
                .render()
                .contains("advertised 3 snapshot(s) but 2 present"),
            "{}",
            partial.render()
        );
    }

    #[test]
    fn trace_drops_emit_a_loud_warning_up_top() {
        let lines = [r#"{"slot":99,"kind":"trace_drops","count":42}"#];
        let report = build_report(lines.iter().copied()).unwrap();
        assert_eq!(report.trace_dropped, 42);
        let text = report.render();
        let warn = text.find("WARNING: trace ring saturated").unwrap();
        assert!(text.contains("42 event(s) dropped"), "{text}");
        // The warning sits above every section.
        assert!(warn < text.find("==").unwrap(), "{text}");

        let clean = build_report(SAMPLE.iter().copied()).unwrap();
        assert!(!clean.render().contains("WARNING"), "no spurious warning");
    }
}
