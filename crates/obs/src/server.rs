//! A tiny scrape endpoint over `std::net::TcpListener`.
//!
//! One background thread accepts connections and answers two routes:
//! `GET /metrics` (Prometheus text, version 0.0.4) and
//! `GET /metrics.json` (the registry's JSON rendering). Everything else
//! is 404. The server exists for *live* observation — nothing about a
//! run's determinism depends on whether anyone scrapes it.

use crate::registry::Registry;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running scrape server; dropping it stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn handle(mut stream: TcpStream, registry: &Registry) {
    // Only the request line matters; read and discard headers so the
    // client is not hit with a reset before it finishes writing.
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &registry.render_prometheus(),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &registry.render_json(),
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// starts serving `registry` in a background thread.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("mec-obs-metrics".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle(stream, &registry);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        let registry = Arc::new(Registry::new());
        registry
            .counter("mec_up_total", "test", &[("shard", "0")])
            .add(5);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("mec_up_total{shard=\"0\"} 5"), "{text}");

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(
            json.contains("\"mec_up_total{shard=\\\"0\\\"}\":5"),
            "{json}"
        );

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        drop(server);
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let registry = Arc::new(Registry::new());
        registry.counter("mec_busy_total", "test", &[]).add(1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = if i % 2 == 0 {
                        "/metrics"
                    } else {
                        "/metrics.json"
                    };
                    get(addr, path)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let body = h.join().expect("scraper thread");
            assert!(body.starts_with("HTTP/1.1 200"), "scrape {i}: {body}");
            assert!(body.contains("mec_busy_total"), "scrape {i}: {body}");
        }
        drop(server);
    }

    #[test]
    fn malformed_request_line_gets_a_clean_404() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        // No path at all: the server must answer (as a 404), not hang
        // or reset the connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GARBAGE\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");

        // Binary junk on the wire must not take the accept loop down:
        // a well-formed scrape afterwards still succeeds.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xff, 0xfe, 0x00, b'\r', b'\n']).unwrap();
        drop(stream);
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        drop(server);
    }

    #[test]
    fn unknown_paths_are_404_with_bodies() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        for path in ["/", "/metrics/extra", "/METRICS", "/favicon.ico"] {
            let out = get(addr, path);
            assert!(out.starts_with("HTTP/1.1 404"), "{path}: {out}");
            assert!(out.ends_with("not found\n"), "{path}: {out}");
        }
        drop(server);
    }
}
