//! A tiny scrape endpoint over `std::net::TcpListener`.
//!
//! One background thread accepts connections and answers these routes:
//! `GET /metrics` (Prometheus text, version 0.0.4), `GET /metrics.json`
//! (the registry's JSON rendering), `GET /healthz` (liveness: uptime
//! and a scrape counter), and up to three runtime-published documents —
//! `GET /slo.json` (SLO engine state), `GET /learning.json` (live
//! learner state: arms, bounds, regret), and `GET /flight.json` (the
//! flight recorder's current rings). Document routes answer 404 with a
//! route-specific body when the embedding runtime publishes nothing
//! there. Everything else is 404. The server exists for *live*
//! observation — nothing about a run's determinism depends on whether
//! anyone scrapes it.

use crate::registry::Registry;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A shared, swappable document (e.g. the `/slo.json` body): the
/// runtime overwrites it each slot, the server serves the latest copy.
pub type SharedDoc = Arc<Mutex<String>>;

/// A running scrape server; dropping it stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// The document routes a runtime can publish, with the body served
/// when nothing is attached at that path.
const DOC_ROUTES: [(&str, &str); 3] = [
    ("/slo.json", "no slo engine attached\n"),
    ("/learning.json", "no learning plane attached\n"),
    ("/flight.json", "no flight recorder attached\n"),
];

/// Everything the accept loop needs to answer a request.
struct ServerState {
    registry: Arc<Registry>,
    docs: Vec<(&'static str, SharedDoc)>,
    started: Instant,
    scrapes: AtomicU64,
}

fn handle(mut stream: TcpStream, state: &ServerState) {
    // Only the request line matters; read and discard headers so the
    // client is not hit with a reset before it finishes writing.
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    // Every answered request counts, including 404s — the counter is a
    // liveness signal, not a success meter.
    let scrapes = state.scrapes.fetch_add(1, Ordering::Relaxed) + 1;
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &state.registry.render_prometheus(),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &state.registry.render_json(),
        ),
        "/healthz" => {
            let body = format!(
                "{{\"status\":\"ok\",\"uptime_ms\":{},\"scrapes\":{scrapes}}}",
                state.started.elapsed().as_millis()
            );
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        path if DOC_ROUTES.iter().any(|(p, _)| *p == path) => {
            match state.docs.iter().find(|(p, _)| *p == path) {
                Some((_, doc)) => {
                    let body = doc.lock().unwrap_or_else(PoisonError::into_inner).clone();
                    respond(&mut stream, "200 OK", "application/json", &body);
                }
                None => {
                    let missing = DOC_ROUTES
                        .iter()
                        .find(|(p, _)| *p == path)
                        .map(|(_, msg)| *msg)
                        .unwrap_or("not found\n");
                    respond(&mut stream, "404 Not Found", "text/plain", missing);
                }
            }
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// starts serving `registry` in a background thread.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<Self> {
        Self::bind_with_slo(addr, registry, None)
    }

    /// [`MetricsServer::bind`], additionally publishing `slo` at
    /// `GET /slo.json`. Without a document that route answers 404.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind_with_slo(
        addr: &str,
        registry: Arc<Registry>,
        slo: Option<SharedDoc>,
    ) -> std::io::Result<Self> {
        let docs = slo.map(|d| vec![("/slo.json", d)]).unwrap_or_default();
        Self::bind_with_docs(addr, registry, docs)
    }

    /// [`MetricsServer::bind`], additionally publishing each `(path,
    /// doc)` pair. Paths must come from the known document routes
    /// (`/slo.json`, `/learning.json`, `/flight.json`); unknown paths
    /// are ignored rather than served (the route table is fixed so a
    /// typo cannot silently open a new endpoint).
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind_with_docs(
        addr: &str,
        registry: Arc<Registry>,
        docs: Vec<(&'static str, SharedDoc)>,
    ) -> std::io::Result<Self> {
        let docs = docs
            .into_iter()
            .filter(|(p, _)| DOC_ROUTES.iter().any(|(known, _)| known == p))
            .collect();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let state = ServerState {
            registry,
            docs,
            started: Instant::now(),
            scrapes: AtomicU64::new(0),
        };
        let join = std::thread::Builder::new()
            .name("mec-obs-metrics".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle(stream, &state);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        let registry = Arc::new(Registry::new());
        registry
            .counter("mec_up_total", "test", &[("shard", "0")])
            .add(5);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("mec_up_total{shard=\"0\"} 5"), "{text}");

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(
            json.contains("\"mec_up_total{shard=\\\"0\\\"}\":5"),
            "{json}"
        );

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        drop(server);
    }

    #[test]
    fn healthz_reports_uptime_and_counts_scrapes() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let first = get(addr, "/healthz");
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(first.contains("\"status\":\"ok\""), "{first}");
        assert!(first.contains("\"uptime_ms\":"), "{first}");
        assert!(first.contains("\"scrapes\":1"), "{first}");
        let _ = get(addr, "/metrics");
        let third = get(addr, "/healthz");
        assert!(third.contains("\"scrapes\":3"), "{third}");
        drop(server);
    }

    #[test]
    fn slo_json_serves_latest_document_or_404() {
        let registry = Arc::new(Registry::new());
        // No document attached: the route is a 404, not an empty body.
        let bare = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let out = get(bare.local_addr(), "/slo.json");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        drop(bare);

        let doc: SharedDoc = Arc::new(Mutex::new("{\"slot\":0,\"slos\":[]}".to_string()));
        let server =
            MetricsServer::bind_with_slo("127.0.0.1:0", Arc::clone(&registry), Some(doc.clone()))
                .unwrap();
        let addr = server.local_addr();
        let out = get(addr, "/slo.json");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with("{\"slot\":0,\"slos\":[]}"), "{out}");
        // The runtime swaps the document; the server serves the copy.
        *doc.lock().unwrap() = "{\"slot\":7,\"slos\":[]}".to_string();
        let out = get(addr, "/slo.json");
        assert!(out.contains("\"slot\":7"), "{out}");
        drop(server);
    }

    #[test]
    fn learning_and_flight_docs_serve_like_slo() {
        let registry = Arc::new(Registry::new());
        let learning: SharedDoc = Arc::new(Mutex::new("{\"slot\":1,\"shards\":[]}".to_string()));
        let flight: SharedDoc = Arc::new(Mutex::new("{\"slot\":1,\"snapshots\":[]}".to_string()));
        let server = MetricsServer::bind_with_docs(
            "127.0.0.1:0",
            Arc::clone(&registry),
            vec![
                ("/learning.json", learning.clone()),
                ("/flight.json", flight.clone()),
                ("/evil.json", flight.clone()), // unknown: must be ignored
            ],
        )
        .unwrap();
        let addr = server.local_addr();
        let out = get(addr, "/learning.json");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with("{\"slot\":1,\"shards\":[]}"), "{out}");
        let out = get(addr, "/flight.json");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        // The unattached slo route keeps its specific 404 body.
        let out = get(addr, "/slo.json");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        assert!(out.ends_with("no slo engine attached\n"), "{out}");
        // Unknown doc paths never open an endpoint.
        let out = get(addr, "/evil.json");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        // Swapping a doc serves the new copy.
        *learning.lock().unwrap() = "{\"slot\":9,\"shards\":[]}".to_string();
        let out = get(addr, "/learning.json");
        assert!(out.contains("\"slot\":9"), "{out}");
        drop(server);
    }

    #[test]
    fn unattached_learning_and_flight_routes_404_with_hints() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let out = get(addr, "/learning.json");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        assert!(out.ends_with("no learning plane attached\n"), "{out}");
        let out = get(addr, "/flight.json");
        assert!(out.ends_with("no flight recorder attached\n"), "{out}");
        drop(server);
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let registry = Arc::new(Registry::new());
        registry.counter("mec_busy_total", "test", &[]).add(1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = if i % 2 == 0 {
                        "/metrics"
                    } else {
                        "/metrics.json"
                    };
                    get(addr, path)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let body = h.join().expect("scraper thread");
            assert!(body.starts_with("HTTP/1.1 200"), "scrape {i}: {body}");
            assert!(body.contains("mec_busy_total"), "scrape {i}: {body}");
        }
        drop(server);
    }

    #[test]
    fn malformed_request_line_gets_a_clean_404() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        // No path at all: the server must answer (as a 404), not hang
        // or reset the connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GARBAGE\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");

        // Binary junk on the wire must not take the accept loop down:
        // a well-formed scrape afterwards still succeeds.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xff, 0xfe, 0x00, b'\r', b'\n']).unwrap();
        drop(stream);
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        drop(server);
    }

    #[test]
    fn unknown_paths_are_404_with_bodies() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        for path in ["/", "/metrics/extra", "/METRICS", "/favicon.ico"] {
            let out = get(addr, path);
            assert!(out.starts_with("HTTP/1.1 404"), "{path}: {out}");
            assert!(out.ends_with("not found\n"), "{path}: {out}");
        }
        drop(server);
    }
}
