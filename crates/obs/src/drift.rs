//! Page–Hinkley drift detection for per-arm reward streams.
//!
//! The serve runtime feeds each arm's realized (normalized) rewards into a
//! [`PageHinkley`] detector. When the cumulative deviation statistic on
//! either side exceeds `lambda`, the detector fires once and resets — the
//! observability layer turns that into a `drift_suspected` trace event and
//! an SLO-style suspected/cleared transition. This is groundwork for a
//! sliding-window successive-elimination learner: a fired detector is the
//! signal that the stationarity assumption behind the current confidence
//! bounds no longer holds.
//!
//! The statistic is the classic two-sided Page–Hinkley test: maintain the
//! running mean `x̄_t`, accumulate `U_t = Σ (x_i − x̄_i − δ)` (upward side)
//! and `D_t = Σ (x_i − x̄_i + δ)` (downward side), and fire when
//! `U_t − min U` or `max D − D_t` exceeds `λ`. `δ` absorbs slow wander;
//! `λ` sets the evidence needed to call a change.

/// Default tolerance `δ` for normalized-reward streams in `[0, 1]`.
pub const DEFAULT_DELTA: f64 = 0.005;
/// Default firing threshold `λ` for normalized-reward streams.
pub const DEFAULT_LAMBDA: f64 = 2.0;
/// Default warm-up: no firing before this many samples.
pub const DEFAULT_MIN_SAMPLES: u64 = 30;

/// Two-sided Page–Hinkley change detector over a scalar stream.
///
/// Deterministic: state depends only on the observed values, so a
/// same-seed replay produces the identical firing slots.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    min_samples: u64,
    n: u64,
    mean: f64,
    up: f64,
    up_min: f64,
    down: f64,
    down_max: f64,
    fired: u64,
}

impl Default for PageHinkley {
    fn default() -> Self {
        Self::new(DEFAULT_DELTA, DEFAULT_LAMBDA, DEFAULT_MIN_SAMPLES)
    }
}

impl PageHinkley {
    /// Creates a detector with tolerance `delta`, threshold `lambda`, and
    /// a `min_samples` warm-up during which it never fires.
    pub fn new(delta: f64, lambda: f64, min_samples: u64) -> Self {
        Self {
            delta: delta.max(0.0),
            lambda: lambda.max(0.0),
            min_samples,
            n: 0,
            mean: 0.0,
            up: 0.0,
            up_min: 0.0,
            down: 0.0,
            down_max: 0.0,
            fired: 0,
        }
    }

    /// Feeds one observation. Returns `true` iff the statistic crossed
    /// `lambda` on either side — the detector then resets so the next
    /// firing requires fresh evidence against the post-change mean.
    pub fn observe(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.up += x - self.mean - self.delta;
        self.up_min = self.up_min.min(self.up);
        self.down += x - self.mean + self.delta;
        self.down_max = self.down_max.max(self.down);
        if self.n >= self.min_samples && self.score() > self.lambda {
            self.fired += 1;
            self.reset_statistic();
            return true;
        }
        false
    }

    /// Current two-sided statistic (max of both directions); compared
    /// against `lambda`. Exposed as a gauge so operators can watch
    /// evidence accumulate before a firing.
    pub fn score(&self) -> f64 {
        let rise = self.up - self.up_min;
        let fall = self.down_max - self.down;
        rise.max(fall)
    }

    /// Observations seen since the last reset.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Running mean of the current window.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Total number of firings over the detector's lifetime.
    pub fn firings(&self) -> u64 {
        self.fired
    }

    fn reset_statistic(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.up = 0.0;
        self.up_min = 0.0;
        self.down = 0.0;
        self.down_max = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic jitter in [-amp, amp] (tiny LCG, no external RNG).
    fn jitter(i: u64, amp: f64) -> f64 {
        let r = i
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((r >> 33) as f64) / ((1u64 << 31) as f64); // [0, 2)
        (u - 1.0) * amp
    }

    #[test]
    fn stationary_stream_never_fires() {
        let mut d = PageHinkley::default();
        for i in 0..5_000 {
            assert!(!d.observe(0.6 + jitter(i, 0.02)), "fired at sample {i}");
        }
        assert_eq!(d.firings(), 0);
        assert!((d.mean() - 0.6).abs() < 0.01);
    }

    #[test]
    fn downward_step_fires_and_resets() {
        let mut d = PageHinkley::default();
        for i in 0..500 {
            assert!(!d.observe(0.8 + jitter(i, 0.02)));
        }
        let mut fired_at = None;
        for i in 0..500 {
            if d.observe(0.3 + jitter(1000 + i, 0.02)) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("a 0.8 -> 0.3 step must fire");
        assert!(at < 100, "fired too slowly: {at} samples after the step");
        assert_eq!(d.firings(), 1);
        // After the reset the detector re-arms against the new regime.
        assert_eq!(d.samples(), 0);
        for i in 0..1_000 {
            assert!(!d.observe(0.3 + jitter(9000 + i, 0.02)));
        }
    }

    #[test]
    fn upward_step_fires_via_the_other_side() {
        let mut d = PageHinkley::default();
        for i in 0..500 {
            d.observe(0.2 + jitter(i, 0.02));
        }
        let fired = (0..500).any(|i| d.observe(0.7 + jitter(7000 + i, 0.02)));
        assert!(fired, "a 0.2 -> 0.7 step must fire");
    }

    #[test]
    fn warm_up_suppresses_firing() {
        let mut d = PageHinkley::new(0.005, 0.1, 50);
        // A violent alternation would fire immediately without warm-up.
        for i in 0..49 {
            assert!(!d.observe(if i % 2 == 0 { 0.0 } else { 1.0 }));
        }
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut d = PageHinkley::default();
        for i in 0..100 {
            d.observe(0.5 + jitter(i, 0.02));
        }
        let before = d.samples();
        assert!(!d.observe(f64::NAN));
        assert!(!d.observe(f64::INFINITY));
        assert_eq!(d.samples(), before);
    }

    #[test]
    fn score_is_monotone_under_sustained_shift() {
        let mut d = PageHinkley::new(0.005, f64::INFINITY, 10);
        for i in 0..200 {
            d.observe(0.9 + jitter(i, 0.01));
        }
        let mut last = d.score();
        let mut grew = 0;
        for i in 0..50 {
            d.observe(0.1 + jitter(5000 + i, 0.01));
            let s = d.score();
            if s > last {
                grew += 1;
            }
            last = s;
        }
        assert!(
            grew > 40,
            "score should accumulate under a shift ({grew}/50)"
        );
    }
}
