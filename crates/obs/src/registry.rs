//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! with striped atomic cells, created on demand and rendered
//! deterministically.
//!
//! ## Contention model
//!
//! Shard worker threads record on the hot path (every slot, every
//! latency sample), so [`Counter`] and [`Histogram`] spread their cells
//! over [`STRIPES`] cache lines indexed by a per-thread stripe id:
//! recording is one relaxed atomic add with no shared hot word, and
//! reads sum the stripes. [`Gauge`] is a single word (gauges are
//! driver-written, reader-racy by design).
//!
//! ## Determinism
//!
//! Values recorded from deterministic quantities (slots, counts,
//! rewards) read back exactly: integer adds are exact, and exposition
//! sorts metric families and label sets, so two identical runs render
//! identical pages. Wall-clock observations (e.g. step timings) are
//! live-only by convention — they must never feed snapshots or traces.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of independent cells per striped metric. Eight covers the
/// shard-worker counts this workspace runs while staying cache-friendly.
pub const STRIPES: usize = 8;

/// The calling thread's stripe index, assigned round-robin on first use.
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
        }
        v
    })
}

/// A cache-line-padded atomic cell, so neighbouring stripes do not
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Log-linear bucket bounds in the style of HDR histograms: each decade
/// `[m, 10m]` is divided into `per_decade` equal linear steps, so the
/// relative resolution stays roughly constant across magnitudes while
/// the bounds stay human-round (e.g. `per_decade = 9` from 1 yields
/// 1, 2, …, 9, 10, 20, …, 90, 100, 200, …). The sequence starts at
/// `min` and stops at the first bound `>= max`.
///
/// # Panics
///
/// Panics if `min` is not strictly positive and finite, `max <= min`,
/// or `per_decade == 0`.
pub fn log_linear_bounds(min: f64, max: f64, per_decade: usize) -> Vec<f64> {
    assert!(min > 0.0 && min.is_finite(), "min must be positive");
    assert!(max > min && max.is_finite(), "max must exceed min");
    assert!(per_decade >= 1, "need at least one step per decade");
    let mut out = vec![min];
    let mut base = min;
    'decades: loop {
        for k in 1..=per_decade {
            let b = base * (per_decade + 9 * k) as f64 / per_decade as f64;
            out.push(b);
            if b >= max {
                break 'decades;
            }
        }
        base *= 10.0;
    }
    out
}

/// Monotonic event counter with striped cells.
#[derive(Debug, Default)]
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cells[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across stripes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Overwrites the total. This exists for *synced* counters whose
    /// source of truth lives elsewhere (e.g. router-owned admission
    /// totals): the single owner calls `store` at sync points. Racing
    /// `store` with concurrent `add`s loses increments — never mix the
    /// two styles on one counter.
    pub fn store(&self, v: u64) {
        self.cells[0].0.store(v, Ordering::Relaxed);
        for c in &self.cells[1..] {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value-wins `f64` gauge (single writer expected).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with striped bucket cells.
///
/// Bucket `i` counts observations `v <= bounds[i]` (Prometheus `le`
/// semantics); one implicit overflow bucket catches the rest. The sum is
/// accumulated with a CAS loop on `f64` bits, the count with a plain
/// atomic add.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `STRIPES * (bounds.len() + 1)` cells, stripe-major.
    cells: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    /// One optional exemplar id per bucket (last writer wins);
    /// `u64::MAX` means "no exemplar yet".
    exemplars: Vec<AtomicU64>,
}

/// A point-in-time copy of a histogram, mergeable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The upper bucket bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// Builds a histogram over the given strictly increasing bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let width = bounds.len() + 1;
        Self {
            bounds: bounds.to_vec(),
            cells: (0..STRIPES * width).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
            exemplars: (0..width).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let width = self.bounds.len() + 1;
        let idx = self.bounds.partition_point(|&b| b < v);
        self.cells[stripe() * width + idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Attaches an exemplar: `id` becomes the bucket-covering-`v`'s
    /// representative request id (last writer wins). This does *not*
    /// count as an observation — pair it with [`Histogram::observe`]
    /// from whichever side of the pipeline knows the id.
    pub fn note_exemplar(&self, v: f64, id: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.exemplars[idx].store(id, Ordering::Relaxed);
    }

    /// The current exemplar id per bucket (`bounds.len() + 1` entries,
    /// last = overflow); `None` where no exemplar was recorded.
    pub fn exemplars(&self) -> Vec<Option<u64>> {
        self.exemplars
            .iter()
            .map(|e| {
                let v = e.load(Ordering::Relaxed);
                (v != u64::MAX).then_some(v)
            })
            .collect()
    }

    /// Copies the current state (per-bucket totals summed over stripes).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let width = self.bounds.len() + 1;
        let mut counts = vec![0u64; width];
        for s in 0..STRIPES {
            for (i, c) in counts.iter_mut().enumerate() {
                *c += self.cells[s * width + i].load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot over the given bounds.
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Folds `other` into `self`.
    ///
    /// # Errors
    ///
    /// Fails when the bucket bounds differ (merging would misattribute
    /// counts).
    pub fn merge(&mut self, other: &Self) -> Result<(), BoundsMismatch> {
        if self.bounds != other.bounds {
            return Err(BoundsMismatch);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    /// Records one observation into the snapshot (for offline
    /// aggregation, e.g. rebuilding distributions from a trace).
    pub fn record(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Estimated `q`-quantile (`0 <= q <= 1`) by linear interpolation
    /// within the covering bucket; 0 when empty. When the target
    /// quantile falls into the implicit overflow bucket the histogram
    /// cannot resolve it and the result is `f64::INFINITY` — a mis-sized
    /// bucket layout is loud, never silently clamped to the last bound.
    /// [`HistogramSnapshot::overflow`] reports the unresolved mass.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= target {
                if i == self.bounds.len() {
                    return f64::INFINITY;
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (target - seen as f64) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen = next;
        }
        f64::INFINITY
    }

    /// Observations that fell beyond the last bound (the `+Inf` bucket).
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }
}

/// A sliding-window histogram: one [`HistogramSnapshot`] per slot over
/// a shared bucket layout, folded into a running window total with
/// subtract-on-evict. All bucket filling and quantile estimation goes
/// through [`HistogramSnapshot::record`] / [`HistogramSnapshot::quantile`]
/// — the same single path fixed histograms use — so windowed quantiles
/// (e.g. SLO latency objectives) can never disagree with whole-run
/// quantiles on bucket or interpolation semantics.
#[derive(Debug)]
pub struct WindowedHistogram {
    ring: VecDeque<HistogramSnapshot>,
    cap: usize,
    merged: HistogramSnapshot,
}

impl WindowedHistogram {
    /// A window of `cap` slots over `bounds` (a `cap` of 0 is promoted
    /// to 1).
    pub fn new(bounds: &[f64], cap: usize) -> Self {
        Self {
            ring: VecDeque::new(),
            cap: cap.max(1),
            merged: HistogramSnapshot::empty(bounds),
        }
    }

    /// Appends one slot's observations and evicts the oldest slot once
    /// the window is full.
    pub fn push_slot(&mut self, values: &[f64]) {
        let mut slot = HistogramSnapshot::empty(&self.merged.bounds);
        for &v in values {
            slot.record(v);
        }
        self.merged
            .merge(&slot)
            .expect("slot snapshot shares the window's bounds");
        self.ring.push_back(slot);
        if self.ring.len() > self.cap {
            let old = self.ring.pop_front().expect("non-empty ring");
            for (m, o) in self.merged.counts.iter_mut().zip(&old.counts) {
                *m -= o;
            }
            self.merged.sum -= old.sum;
            self.merged.count -= old.count;
        }
    }

    /// Estimated `q`-quantile over the current window (see
    /// [`HistogramSnapshot::quantile`] for overflow semantics).
    pub fn quantile(&self, q: f64) -> f64 {
        self.merged.quantile(q)
    }

    /// The merged window distribution.
    pub fn snapshot(&self) -> &HistogramSnapshot {
        &self.merged
    }

    /// Observations currently inside the window.
    pub fn count(&self) -> u64 {
        self.merged.count
    }
}

/// Merge rejected: the two histograms have different bucket layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundsMismatch;

impl std::fmt::Display for BoundsMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram bucket bounds differ")
    }
}

impl std::error::Error for BoundsMismatch {}

/// One series inside a metric family.
#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series sharing one metric name.
#[derive(Debug)]
struct Family {
    help: String,
    /// Keyed by the rendered label set (`{k="v",...}` or empty).
    series: BTreeMap<String, Series>,
}

/// The metric store: get-or-create handles keyed by `(name, labels)`.
///
/// Handles are `Arc`s — fetch them once and record lock-free; the
/// registry lock is only taken at creation and exposition time.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set in deterministic (sorted) order.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// Formats an `f64` for exposition (shortest round-trip form).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The family map stays structurally valid even if a creation
    /// closure panics mid-entry (BTreeMap insertion is atomic from the
    /// caller's view), so a poisoned lock is recovered rather than
    /// propagated — one panicking scrape or registration thread must
    /// not take the whole exporter down.
    fn families(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Fetches (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, labels, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Fetches (creating on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, labels, || Series::Gauge(Arc::new(Gauge::new()))) {
            Series::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Fetches (creating on first use) the histogram `name{labels}` over
    /// `bounds`. An existing series keeps its original bounds.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self.series(name, help, labels, || {
            Series::Histogram(Arc::new(Histogram::with_bounds(bounds)))
        }) {
            Series::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4), families and series in sorted order.
    pub fn render_prometheus(&self) -> String {
        let families = self.families();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = match family.series.values().next() {
                Some(Series::Counter(_)) => "counter",
                Some(Series::Gauge(_)) => "gauge",
                Some(Series::Histogram(_)) => "histogram",
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_f64(g.get()));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &c) in snap.counts.iter().enumerate() {
                            cum += c;
                            let le = snap.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                            let le = fmt_f64(le);
                            let inner = if labels.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
                            };
                            let _ = writeln!(out, "{name}_bucket{inner} {cum}");
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_f64(snap.sum));
                        let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry as one JSON object (families and
    /// series in sorted order), for programmatic scraping.
    pub fn render_json(&self) -> String {
        let families = self.families();
        let mut parts = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let key = crate::trace::escape_json(&format!("{name}{labels}"));
                match series {
                    Series::Counter(c) => parts.push(format!("\"{key}\":{}", c.get())),
                    Series::Gauge(g) => {
                        let v = g.get();
                        let v = if v.is_finite() {
                            format!("{v:?}")
                        } else {
                            "null".to_string()
                        };
                        parts.push(format!("\"{key}\":{v}"));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let buckets = snap
                            .bounds
                            .iter()
                            .map(|b| format!("{b:?}"))
                            .collect::<Vec<_>>()
                            .join(",");
                        let counts = snap
                            .counts
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",");
                        // The `+Inf` mass also sits in `counts` (last
                        // entry); naming it keeps mis-sized layouts
                        // visible to scrapers that only read scalars.
                        let mut obj = format!(
                            "\"bounds\":[{buckets}],\"counts\":[{counts}],\
                             \"sum\":{:?},\"count\":{},\"overflow\":{}",
                            snap.sum,
                            snap.count,
                            snap.overflow()
                        );
                        let exemplars = h.exemplars();
                        if exemplars.iter().any(Option::is_some) {
                            let ids = exemplars
                                .iter()
                                .map(|e| e.map_or("null".to_string(), |id| id.to_string()))
                                .collect::<Vec<_>>()
                                .join(",");
                            let _ = write!(obj, ",\"exemplars\":[{ids}]");
                        }
                        parts.push(format!("\"{key}\":{{{obj}}}"));
                    }
                }
            }
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_histogram_matches_fresh_snapshot_over_window_tail() {
        // The window must be indistinguishable from a fresh snapshot
        // built from only the retained slots — same record path, same
        // quantile path.
        let bounds = log_linear_bounds(1.0, 1000.0, 9);
        let mut w = WindowedHistogram::new(&bounds, 3);
        let slots: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..50)
                    .map(|j| 1.0 + ((i * 37 + j * 13) % 900) as f64)
                    .collect()
            })
            .collect();
        for slot in &slots {
            w.push_slot(slot);
        }
        let mut fresh = HistogramSnapshot::empty(&bounds);
        for slot in &slots[3..] {
            for &v in slot {
                fresh.record(v);
            }
        }
        assert_eq!(w.snapshot().counts, fresh.counts);
        assert_eq!(w.count(), fresh.count);
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(w.quantile(q), fresh.quantile(q));
        }
    }

    #[test]
    fn windowed_histogram_empty_window_reports_zero() {
        let w = WindowedHistogram::new(&[1.0, 10.0], 4);
        assert_eq!(w.count(), 0);
        assert_eq!(w.quantile(0.99), 0.0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn counter_store_resets_all_stripes() {
        let c = Counter::new();
        c.add(7);
        c.store(3);
        assert_eq!(c.get(), 3);
        c.store(0);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_round_trips() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_buckets_use_le_semantics() {
        let h = Histogram::with_bounds(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 1.1, 5.0, 9.9, 10.0, 11.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // le=1: {0.5, 1.0}; le=5: {1.1, 5.0}; le=10: {9.9, 10.0}; +Inf: {11.0}.
        assert_eq!(snap.counts, vec![2, 2, 2, 1]);
        assert_eq!(snap.count, 7);
        assert!((snap.sum - 38.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_requires_equal_bounds() {
        let mut a = HistogramSnapshot::empty(&[1.0, 2.0]);
        let mut b = HistogramSnapshot::empty(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        let c = HistogramSnapshot::empty(&[1.0, 3.0]);
        assert_eq!(a.merge(&c), Err(BoundsMismatch));
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let mut s = HistogramSnapshot::empty(&[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            s.record(5.0);
        }
        for _ in 0..50 {
            s.record(15.0);
        }
        let p50 = s.quantile(0.5);
        assert!((0.0..=10.0).contains(&p50), "{p50}");
        let p99 = s.quantile(0.99);
        assert!((10.0..=20.0).contains(&p99), "{p99}");
        assert_eq!(HistogramSnapshot::empty(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_quantile_reports_overflow_as_infinity() {
        let mut s = HistogramSnapshot::empty(&[10.0, 20.0]);
        for _ in 0..80 {
            s.record(5.0);
        }
        for _ in 0..20 {
            s.record(1000.0); // beyond the last bound
        }
        assert_eq!(s.overflow(), 20);
        // p50 is resolvable, p95 lands in the +Inf bucket.
        assert!(s.quantile(0.5).is_finite());
        assert_eq!(s.quantile(0.95), f64::INFINITY);
        assert_eq!(s.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn log_linear_bounds_are_round_and_increasing() {
        let b = log_linear_bounds(1.0, 100.0, 9);
        assert_eq!(
            b,
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0,
                70.0, 80.0, 90.0, 100.0
            ]
        );
        let coarse = log_linear_bounds(0.5, 5000.0, 3);
        assert!(coarse.windows(2).all(|w| w[0] < w[1]), "{coarse:?}");
        assert!(*coarse.last().unwrap() >= 5000.0);
        // The output always satisfies Histogram::with_bounds.
        let _ = Histogram::with_bounds(&coarse);
    }

    #[test]
    fn exemplars_attach_to_buckets_and_render() {
        let r = Registry::new();
        let h = r.histogram("ex_ms", "exemplar test", &[], &[1.0, 10.0]);
        assert!(h.exemplars().iter().all(Option::is_none));
        h.observe(0.5);
        h.note_exemplar(0.5, 7);
        h.observe(99.0);
        h.note_exemplar(99.0, 42);
        assert_eq!(h.exemplars(), vec![Some(7), None, Some(42)]);
        // Last writer wins within a bucket.
        h.note_exemplar(0.7, 8);
        assert_eq!(h.exemplars()[0], Some(8));
        let json = r.render_json();
        assert!(json.contains("\"exemplars\":[8,null,42]"), "{json}");
        assert!(json.contains("\"overflow\":1"), "{json}");
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_well_formed() {
        let r = Registry::new();
        r.counter("mec_test_total", "test counter", &[("shard", "1")])
            .add(3);
        r.counter("mec_test_total", "test counter", &[("shard", "0")])
            .add(2);
        r.gauge("mec_test_depth", "test gauge", &[]).set(1.5);
        r.histogram(
            "mec_test_ms",
            "test histogram",
            &[("shard", "0")],
            &[1.0, 10.0],
        )
        .observe(0.5);
        let page = r.render_prometheus();
        assert_eq!(page, r.render_prometheus());
        assert!(page.contains("# TYPE mec_test_total counter"), "{page}");
        // Sorted label sets: shard 0 renders before shard 1.
        let p0 = page.find("mec_test_total{shard=\"0\"} 2").unwrap();
        let p1 = page.find("mec_test_total{shard=\"1\"} 3").unwrap();
        assert!(p0 < p1);
        assert!(page.contains("mec_test_depth 1.5"), "{page}");
        assert!(
            page.contains("mec_test_ms_bucket{shard=\"0\",le=\"1.0\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("mec_test_ms_bucket{shard=\"0\",le=\"+Inf\"} 1"),
            "{page}"
        );
        assert!(page.contains("mec_test_ms_count{shard=\"0\"} 1"), "{page}");
    }

    #[test]
    fn json_rendering_contains_all_series() {
        let r = Registry::new();
        r.counter("a_total", "a", &[]).add(1);
        r.gauge("b", "b", &[("k", "v")]).set(2.0);
        r.histogram("c_ms", "c", &[], &[1.0]).observe(0.5);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"a_total\":1"), "{json}");
        assert!(json.contains("\"b{k=\\\"v\\\"}\":2.0"), "{json}");
        assert!(json.contains("\"counts\":[1,0]"), "{json}");
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        let r = Arc::new(Registry::new());
        r.counter("alive_total", "survives", &[]).add(2);
        // Histogram construction runs under the registry lock; invalid
        // bounds panic there and poison the mutex.
        let r2 = Arc::clone(&r);
        let panicked = std::panic::catch_unwind(move || {
            r2.histogram("bad_ms", "bad", &[], &[]);
        });
        assert!(panicked.is_err());
        // Every public path still works on the poisoned registry.
        assert!(r.render_prometheus().contains("alive_total 2"));
        assert!(r.render_json().contains("\"alive_total\":2"));
        r.counter("alive_total", "survives", &[]).inc();
        assert!(r.render_prometheus().contains("alive_total 3"));
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("s", "0")]);
        let b = r.counter("x_total", "x", &[("s", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
