//! mec-prof: a low-overhead hierarchical phase profiler.
//!
//! Each thread keeps an explicit span stack and a private phase tree;
//! [`enter`] pushes a frame keyed by a `&'static str` phase name under
//! the current stack top, and the returned [`SpanGuard`] pops it on
//! drop, charging the monotonic elapsed time to the phase (self time =
//! elapsed minus time spent in child spans) and attributing the self
//! time to the thread's current *virtual slot* (see [`set_slot`]).
//! Thread-local trees are merged into a process-global tree when a
//! thread exits or when [`flush_thread`] / [`take_report`] runs, so the
//! hot path takes no locks and touches no shared cache lines.
//!
//! Profiling is off by default: until [`set_enabled`] turns it on,
//! [`enter`] is a single relaxed atomic load returning an inert guard.
//! Consumer crates additionally gate every instrumentation site behind
//! their own `prof` cargo feature via the [`crate::prof_scope!`] /
//! [`crate::prof_span!`] / [`crate::prof_slot!`] / [`crate::prof_count!`]
//! macros, which compile to nothing when the feature is off — the
//! determinism contract of the serving stack (byte-identical snapshots
//! and event streams) is preserved in both configurations because
//! profile data never feeds snapshots or traces; it is only written to
//! dedicated `--profile-out` sinks.
//!
//! The aggregated [`ProfileReport`] renders three ways: a human phase
//! tree with top-N hot phases and per-slot statistics
//! ([`ProfileReport::render_text`]), collapsed-stack lines for standard
//! flamegraph tooling ([`ProfileReport::render_folded`]), and flat JSONL
//! ([`ProfileReport::to_jsonl`]) parseable by [`crate::json`] and by
//! `mec-obs-report`.

use crate::json::parse_flat_object;
use crate::trace::escape_json;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profiling on or off process-wide. Spans entered while enabled
/// are recorded even if profiling is disabled before they close.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether profiling is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Sentinel parent index for top-level phases.
const ROOT: usize = usize::MAX;

/// Per-node cap on distinct slot keys; self time for further slots is
/// folded into the node's overflow bucket so long runs stay bounded.
const MAX_SLOTS_PER_NODE: usize = 4096;

/// Phase name used when [`add_count`] fires outside any open span.
const UNSCOPED: &str = "(unscoped)";

#[derive(Debug)]
struct Node {
    name: &'static str,
    parent: usize,
    calls: u64,
    self_ns: u64,
    total_ns: u64,
    counts: BTreeMap<&'static str, u64>,
    per_slot: BTreeMap<u64, u64>,
    overflow_ns: u64,
}

impl Node {
    fn new(name: &'static str, parent: usize) -> Self {
        Self {
            name,
            parent,
            calls: 0,
            self_ns: 0,
            total_ns: 0,
            counts: BTreeMap::new(),
            per_slot: BTreeMap::new(),
            overflow_ns: 0,
        }
    }

    fn charge_slot(&mut self, slot: u64, self_ns: u64) {
        if self.per_slot.len() >= MAX_SLOTS_PER_NODE && !self.per_slot.contains_key(&slot) {
            self.overflow_ns += self_ns;
        } else {
            *self.per_slot.entry(slot).or_insert(0) += self_ns;
        }
    }
}

struct Frame {
    node: usize,
    start: Instant,
    child_ns: u64,
}

/// A phase tree plus the interning index `(parent, name) -> node`.
/// Children are always created after their parent, so node indices are
/// topologically ordered (parent index < child index).
#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    index: HashMap<(usize, &'static str), usize>,
}

impl Tree {
    fn node_for(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&i) = self.index.get(&(parent, name)) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node::new(name, parent));
        self.index.insert((parent, name), i);
        i
    }
}

#[derive(Default)]
struct ThreadProf {
    tree: Tree,
    stack: Vec<Frame>,
    slot: u64,
}

/// Wrapper so thread exit flushes whatever the thread accumulated.
struct TlsProf(RefCell<ThreadProf>);

impl Drop for TlsProf {
    fn drop(&mut self) {
        merge_into_global(&mut self.0.borrow_mut());
    }
}

thread_local! {
    static TLS: TlsProf = TlsProf(RefCell::new(ThreadProf::default()));
}

static GLOBAL: Mutex<Option<Tree>> = Mutex::new(None);

fn merge_into_global(p: &mut ThreadProf) {
    // With frames still open the open nodes' accounting is incomplete
    // and clearing the tree would dangle their indices; skip — the data
    // flushes when the spans close and the thread exits or flushes again.
    if !p.stack.is_empty() || p.tree.nodes.is_empty() {
        return;
    }
    let mut guard = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    let global = guard.get_or_insert_with(Tree::default);
    let mut map = vec![0usize; p.tree.nodes.len()];
    for (i, n) in p.tree.nodes.iter().enumerate() {
        let parent = if n.parent == ROOT {
            ROOT
        } else {
            map[n.parent]
        };
        let gi = global.node_for(parent, n.name);
        map[i] = gi;
        let g = &mut global.nodes[gi];
        g.calls += n.calls;
        g.self_ns += n.self_ns;
        g.total_ns += n.total_ns;
        g.overflow_ns += n.overflow_ns;
        for (k, v) in &n.counts {
            *g.counts.entry(k).or_insert(0) += v;
        }
        for (&slot, &ns) in &n.per_slot {
            g.charge_slot(slot, ns);
        }
    }
    p.tree.nodes.clear();
    p.tree.index.clear();
}

/// An RAII span handle; dropping it closes the span. Inert (and free)
/// when profiling was disabled at [`enter`] time.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span named `name` under the calling thread's current span.
/// Returns an inert guard when profiling is disabled.
pub fn enter(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    let pushed = TLS
        .try_with(|t| {
            let mut p = t.0.borrow_mut();
            let parent = p.stack.last().map_or(ROOT, |f| f.node);
            let node = p.tree.node_for(parent, name);
            p.tree.nodes[node].calls += 1;
            p.stack.push(Frame {
                node,
                start: Instant::now(),
                child_ns: 0,
            });
        })
        .is_ok();
    SpanGuard { active: pushed }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = TLS.try_with(|t| {
            let mut p = t.0.borrow_mut();
            let Some(frame) = p.stack.pop() else {
                return;
            };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            let slot = p.slot;
            let node = &mut p.tree.nodes[frame.node];
            node.self_ns += self_ns;
            node.total_ns += elapsed;
            node.charge_slot(slot, self_ns);
            if let Some(parent) = p.stack.last_mut() {
                parent.child_ns += elapsed;
            }
        });
    }
}

/// Sets the virtual slot that subsequent span closes on this thread are
/// attributed to.
pub fn set_slot(slot: u64) {
    if !is_enabled() {
        return;
    }
    let _ = TLS.try_with(|t| t.0.borrow_mut().slot = slot);
}

/// Adds `n` to the named counter on the phase currently at the top of
/// the calling thread's span stack (e.g. simplex pivots under the solve
/// span). Outside any span the count lands on an `(unscoped)` phase.
pub fn add_count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    let _ = TLS.try_with(|t| {
        let mut p = t.0.borrow_mut();
        let node = match p.stack.last() {
            Some(f) => f.node,
            None => {
                let node = p.tree.node_for(ROOT, UNSCOPED);
                p.tree.nodes[node].calls += 1;
                node
            }
        };
        *p.tree.nodes[node].counts.entry(name).or_insert(0) += n;
    });
}

/// Merges the calling thread's accumulated tree into the global tree.
/// A no-op while the thread has open spans.
pub fn flush_thread() {
    let _ = TLS.try_with(|t| merge_into_global(&mut t.0.borrow_mut()));
}

/// Flushes the calling thread, then takes and clears the global tree.
///
/// Threads that are still alive and have neither exited nor called
/// [`flush_thread`] are not included — join workers first.
pub fn take_report() -> ProfileReport {
    flush_thread();
    let tree = GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .unwrap_or_default();
    ProfileReport::from_tree(&tree)
}

/// Clears the global tree and the calling thread's local tree (other
/// threads' local trees are untouched). Intended for tests.
pub fn reset() {
    let _ = TLS.try_with(|t| {
        let mut p = t.0.borrow_mut();
        p.tree.nodes.clear();
        p.tree.index.clear();
        p.stack.clear();
        p.slot = 0;
    });
    *GLOBAL.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// One aggregated phase in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Phase name as given to [`enter`].
    pub name: String,
    /// Index of the parent phase in [`ProfileReport::phases`], `None`
    /// for top-level phases. Parents always precede children.
    pub parent: Option<usize>,
    /// Times the span was entered.
    pub calls: u64,
    /// Time spent in this phase excluding child spans, nanoseconds.
    pub self_ns: u64,
    /// Time spent in this phase including child spans, nanoseconds.
    pub total_ns: u64,
    /// Named counters charged to this phase via [`add_count`].
    pub counts: BTreeMap<String, u64>,
    /// Self time attributed to each virtual slot.
    pub per_slot: BTreeMap<u64, u64>,
    /// Self time beyond the per-node slot cap (no slot attribution).
    pub overflow_ns: u64,
}

/// The merged phase tree of a profiled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Phases in topological order (parents before children).
    pub phases: Vec<PhaseNode>,
}

/// A profile JSONL stream failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProfileParseError {}

fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ProfileReport {
    fn from_tree(tree: &Tree) -> Self {
        Self {
            phases: tree
                .nodes
                .iter()
                .map(|n| PhaseNode {
                    name: n.name.to_string(),
                    parent: (n.parent != ROOT).then_some(n.parent),
                    calls: n.calls,
                    self_ns: n.self_ns,
                    total_ns: n.total_ns,
                    counts: n.counts.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    per_slot: n.per_slot.clone(),
                    overflow_ns: n.overflow_ns,
                })
                .collect(),
        }
    }

    /// Whether any phase was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Sum of `total_ns` over top-level phases: the whole profiled wall
    /// time, counted once.
    pub fn total_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.parent.is_none())
            .map(|p| p.total_ns)
            .sum()
    }

    /// Sum of `self_ns` over the subtree rooted at every phase named
    /// `name`. Since self times partition a subtree's wall time, this
    /// equals the summed `total_ns` of those roots up to clock
    /// granularity.
    pub fn subtree_self_ns(&self, name: &str) -> u64 {
        let mut inside = vec![false; self.phases.len()];
        let mut sum = 0u64;
        for (i, p) in self.phases.iter().enumerate() {
            inside[i] = p.name == name || p.parent.is_some_and(|pa| inside[pa]);
            if inside[i] {
                sum += p.self_ns;
            }
        }
        sum
    }

    /// Self time per virtual slot, aggregated over all phases (slot-cap
    /// overflow excluded — it has no slot attribution).
    pub fn slot_self_totals(&self) -> BTreeMap<u64, u64> {
        let mut out: BTreeMap<u64, u64> = BTreeMap::new();
        for p in &self.phases {
            for (&slot, &ns) in &p.per_slot {
                *out.entry(slot).or_insert(0) += ns;
            }
        }
        out
    }

    fn path(&self, mut i: usize) -> Vec<&str> {
        let mut parts = vec![self.phases[i].name.as_str()];
        while let Some(p) = self.phases[i].parent {
            parts.push(self.phases[p].name.as_str());
            i = p;
        }
        parts.reverse();
        parts
    }

    /// Renders the phase tree, the top-`top_n` phases by self time (with
    /// attached counters), and per-slot statistics, as plain text.
    pub fn render_text(&self, top_n: usize) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("profile: no phases recorded\n");
            return out;
        }
        let wall = self.total_ns().max(1);
        let _ = writeln!(
            out,
            "profile: {} phase(s), {} profiled wall time",
            self.phases.len(),
            fmt_ns(self.total_ns())
        );

        // Phase tree, children grouped under parents in depth-first order.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.phases.len()];
        let mut roots = Vec::new();
        for (i, p) in self.phases.iter().enumerate() {
            match p.parent {
                Some(pa) => children[pa].push(i),
                None => roots.push(i),
            }
        }
        out.push_str("\nphase tree:\n");
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let p = &self.phases[i];
            let _ = writeln!(
                out,
                "  {:indent$}{:<width$} calls {:>8}  total {:>10}  self {:>10}  ({:.1}%)",
                "",
                p.name,
                p.calls,
                fmt_ns(p.total_ns),
                fmt_ns(p.self_ns),
                p.self_ns as f64 * 100.0 / wall as f64,
                indent = depth * 2,
                width = 28usize.saturating_sub(depth * 2),
            );
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }

        // Top-N hot phases by self time.
        let mut by_self: Vec<usize> = (0..self.phases.len()).collect();
        by_self.sort_by_key(|&i| std::cmp::Reverse(self.phases[i].self_ns));
        let _ = writeln!(
            out,
            "\ntop {} phases by self time:",
            top_n.min(by_self.len())
        );
        for (rank, &i) in by_self.iter().take(top_n).enumerate() {
            let p = &self.phases[i];
            let _ = writeln!(
                out,
                "  {:>2}. {:<40} self {:>10}  ({:.1}%)  calls {}",
                rank + 1,
                self.path(i).join(";"),
                fmt_ns(p.self_ns),
                p.self_ns as f64 * 100.0 / wall as f64,
                p.calls,
            );
            for (k, v) in &p.counts {
                let _ = writeln!(out, "      {k} = {v}");
            }
        }

        // Per-slot phase table: slot coverage and per-slot self-time
        // statistics for the hottest phases.
        let slots = self.slot_self_totals();
        if !slots.is_empty() {
            let _ = writeln!(
                out,
                "\nper-slot self time ({} slot(s), {} total):",
                slots.len(),
                fmt_ns(slots.values().sum())
            );
            let _ = writeln!(
                out,
                "  {:<40} {:>7} {:>12} {:>12}",
                "phase", "slots", "mean/slot", "max/slot"
            );
            for &i in by_self.iter().take(top_n) {
                let p = &self.phases[i];
                if p.per_slot.is_empty() {
                    continue;
                }
                let n = p.per_slot.len() as u64;
                let sum: u64 = p.per_slot.values().sum();
                let max = p.per_slot.values().copied().max().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<40} {:>7} {:>12} {:>12}",
                    self.path(i).join(";"),
                    n,
                    fmt_ns(sum / n.max(1)),
                    fmt_ns(max),
                );
            }
        }
        out
    }

    /// Renders collapsed-stack ("folded") lines — `a;b;c <self_ns>` —
    /// consumable by standard flamegraph tooling.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.phases.iter().enumerate() {
            if p.self_ns == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", self.path(i).join(";"), p.self_ns);
        }
        out
    }

    /// Serializes the report as flat JSON lines (header, one `phase`
    /// line per node, then `phase_count` / `phase_slot` detail lines).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"profile\",\"version\":1,\"phases\":{}}}",
            self.phases.len()
        );
        for (i, p) in self.phases.iter().enumerate() {
            let parent = p
                .parent
                .map_or_else(|| "null".to_string(), |pa| pa.to_string());
            let _ = writeln!(
                out,
                "{{\"kind\":\"phase\",\"id\":{i},\"parent\":{parent},\"name\":\"{}\",\
                 \"calls\":{},\"self_ns\":{},\"total_ns\":{}}}",
                escape_json(&p.name),
                p.calls,
                p.self_ns,
                p.total_ns
            );
            for (k, v) in &p.counts {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"phase_count\",\"id\":{i},\"counter\":\"{}\",\"value\":{v}}}",
                    escape_json(k)
                );
            }
            for (slot, ns) in &p.per_slot {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"phase_slot\",\"id\":{i},\"slot\":{slot},\"self_ns\":{ns}}}"
                );
            }
            if p.overflow_ns > 0 {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"phase_slot\",\"id\":{i},\"slot\":-1,\"self_ns\":{}}}",
                    p.overflow_ns
                );
            }
        }
        out
    }

    /// Whether `text` looks like a profile JSONL stream (its first
    /// non-empty line is a `{"kind":"profile",...}` header).
    pub fn sniff(text: &str) -> bool {
        text.lines()
            .find(|l| !l.trim().is_empty())
            .and_then(|l| parse_flat_object(l).ok())
            .is_some_and(|m| m.get("kind").and_then(|v| v.as_str()) == Some("profile"))
    }

    /// Parses a stream produced by [`ProfileReport::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Fails on a missing/invalid header, malformed line, or an `id` /
    /// `parent` out of range.
    pub fn from_jsonl(text: &str) -> Result<Self, ProfileParseError> {
        let err = |line: usize, message: &str| ProfileParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (header_no, header) = lines.next().ok_or_else(|| err(1, "empty profile stream"))?;
        let header = parse_flat_object(header)
            .map_err(|e| err(header_no + 1, &format!("bad header: {e}")))?;
        if header.get("kind").and_then(|v| v.as_str()) != Some("profile") {
            return Err(err(
                header_no + 1,
                "not a profile stream (no profile header)",
            ));
        }
        let n = header
            .get("phases")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| err(header_no + 1, "header missing phase count"))?
            as usize;
        let mut phases = vec![
            PhaseNode {
                name: String::new(),
                parent: None,
                calls: 0,
                self_ns: 0,
                total_ns: 0,
                counts: BTreeMap::new(),
                per_slot: BTreeMap::new(),
                overflow_ns: 0,
            };
            n
        ];
        for (no, line) in lines {
            let no = no + 1;
            let m = parse_flat_object(line).map_err(|e| err(no, &e.to_string()))?;
            let kind = m
                .get("kind")
                .and_then(|v| v.as_str())
                .ok_or_else(|| err(no, "line missing kind"))?;
            let id = m
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| err(no, "line missing id"))? as usize;
            if id >= n {
                return Err(err(no, "phase id out of range"));
            }
            match kind {
                "phase" => {
                    phases[id].name = m
                        .get("name")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| err(no, "phase missing name"))?
                        .to_string();
                    phases[id].parent = match m.get("parent") {
                        Some(v) => match v.as_u64() {
                            Some(p) if (p as usize) < n => Some(p as usize),
                            Some(_) => return Err(err(no, "parent id out of range")),
                            None => None,
                        },
                        None => None,
                    };
                    phases[id].calls = m.get("calls").and_then(|v| v.as_u64()).unwrap_or(0);
                    phases[id].self_ns = m.get("self_ns").and_then(|v| v.as_u64()).unwrap_or(0);
                    phases[id].total_ns = m.get("total_ns").and_then(|v| v.as_u64()).unwrap_or(0);
                }
                "phase_count" => {
                    let counter = m
                        .get("counter")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| err(no, "phase_count missing counter"))?;
                    let value = m
                        .get("value")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| err(no, "phase_count missing value"))?;
                    *phases[id].counts.entry(counter.to_string()).or_insert(0) += value;
                }
                "phase_slot" => {
                    let ns = m
                        .get("self_ns")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| err(no, "phase_slot missing self_ns"))?;
                    match m.get("slot").and_then(|v| v.as_u64()) {
                        Some(slot) => *phases[id].per_slot.entry(slot).or_insert(0) += ns,
                        None => phases[id].overflow_ns += ns,
                    }
                }
                other => return Err(err(no, &format!("unknown line kind {other:?}"))),
            }
        }
        Ok(Self { phases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; serialize the tests that use it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(true);
        g
    }

    fn spin(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = guard();
        set_enabled(false);
        {
            let _s = enter("a");
            set_slot(3);
            add_count("c", 1);
        }
        assert!(take_report().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree_with_self_and_total() {
        let _g = guard();
        set_slot(7);
        {
            let _outer = enter("outer");
            spin(200_000);
            {
                let _inner = enter("inner");
                spin(200_000);
            }
            {
                let _inner = enter("inner");
                spin(200_000);
            }
        }
        set_enabled(false);
        let r = take_report();
        assert_eq!(r.phases.len(), 2);
        let outer = &r.phases[0];
        let inner = &r.phases[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.calls, 2);
        assert!(outer.total_ns >= outer.self_ns + inner.total_ns);
        assert!(inner.self_ns >= 300_000, "{}", inner.self_ns);
        assert_eq!(outer.per_slot.keys().copied().collect::<Vec<_>>(), vec![7]);
        // Self times partition the wall time of the subtree.
        let sum = r.subtree_self_ns("outer");
        let total = r.total_ns();
        assert!(
            sum.abs_diff(total) <= total / 20,
            "self sum {sum} vs total {total}"
        );
    }

    #[test]
    fn counts_attach_to_the_open_span() {
        let _g = guard();
        {
            let _s = enter("solve");
            add_count("pivots", 5);
            add_count("pivots", 7);
        }
        add_count("stray", 1);
        set_enabled(false);
        let r = take_report();
        let solve = r.phases.iter().find(|p| p.name == "solve").unwrap();
        assert_eq!(solve.counts["pivots"], 12);
        let unscoped = r.phases.iter().find(|p| p.name == UNSCOPED).unwrap();
        assert_eq!(unscoped.counts["stray"], 1);
    }

    #[test]
    fn threads_merge_on_exit_and_report_drains() {
        let _g = guard();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    set_slot(i);
                    let _s = enter("worker");
                    spin(50_000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let r = take_report();
        let w = r.phases.iter().find(|p| p.name == "worker").unwrap();
        assert_eq!(w.calls, 3);
        assert_eq!(w.per_slot.len(), 3);
        assert!(take_report().is_empty(), "take drains the global tree");
    }

    #[test]
    fn folded_output_has_stack_paths_and_integer_weights() {
        let _g = guard();
        {
            let _a = enter("a");
            spin(100_000);
            let _b = enter("b");
            spin(100_000);
        }
        set_enabled(false);
        let r = take_report();
        let folded = r.render_folded();
        let mut saw_child = false;
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(weight.parse::<u64>().is_ok(), "{line}");
            if stack == "a;b" {
                saw_child = true;
            }
        }
        assert!(saw_child, "{folded}");
    }

    #[test]
    fn jsonl_round_trips() {
        let _g = guard();
        set_slot(2);
        {
            let _a = enter("a");
            add_count("pivots", 3);
            spin(50_000);
            let _b = enter("b");
            spin(50_000);
        }
        set_enabled(false);
        let r = take_report();
        let jsonl = r.to_jsonl();
        assert!(ProfileReport::sniff(&jsonl));
        assert!(!ProfileReport::sniff("{\"slot\":1,\"kind\":\"run_start\"}"));
        let parsed = ProfileReport::from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(ProfileReport::from_jsonl("").is_err());
        assert!(ProfileReport::from_jsonl("{\"kind\":\"trace\"}").is_err());
        let bad_ref = "{\"kind\":\"profile\",\"version\":1,\"phases\":1}\n\
                       {\"kind\":\"phase\",\"id\":4,\"parent\":null,\"name\":\"x\"}";
        assert!(ProfileReport::from_jsonl(bad_ref).is_err());
    }

    #[test]
    fn render_text_mentions_hot_phases() {
        let _g = guard();
        set_slot(1);
        {
            let _a = enter("hot");
            spin(300_000);
        }
        set_enabled(false);
        let r = take_report();
        let text = r.render_text(5);
        assert!(text.contains("phase tree"), "{text}");
        assert!(text.contains("hot"), "{text}");
        assert!(text.contains("per-slot self time"), "{text}");
    }
}
