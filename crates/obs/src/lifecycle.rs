//! Per-request lifecycle records: the journey of one request through
//! the serving plane.
//!
//! A [`LifecycleRecord`] is deliberately tiny — a request id, a stage
//! name, the slot, and the shard / base-station involved — so recording
//! one costs a few stores and the stream stays byte-deterministic for a
//! fixed seed. The driver writes its stages (admission, placement,
//! handoff) directly; each shard worker records serve-side stages
//! (start, complete, expire, abort) into a bounded [`LifecycleRing`]
//! that the driver drains at the slot barrier in shard order, exactly
//! like the trace rings. A [`LifecycleWriter`] renders the merged
//! stream as one JSONL object per record.
//!
//! Stage vocabulary (driver side): `admit`, `buffer`, `spill`, `shed`,
//! `hold`, `release`, `redirect`, `handoff`. Worker side: `start`,
//! `complete`, `expire`, `abort`. Unknown stages must be tolerated by
//! consumers — the set grows.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shard field value for records emitted by the driver rather than a
/// shard worker.
pub const DRIVER: i64 = -1;

/// Field value meaning "no base station involved in this stage".
pub const NO_BS: i64 = -1;

/// One step of one request's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleRecord {
    /// The request's global id (stable across shards and restarts).
    pub id: u64,
    /// Stage name (see the module docs for the vocabulary).
    pub stage: &'static str,
    /// Slot in which the stage happened.
    pub slot: u64,
    /// Shard involved, or [`DRIVER`] for driver-side stages.
    pub shard: i64,
    /// Global base-station id involved, or [`NO_BS`].
    pub bs: i64,
}

impl LifecycleRecord {
    /// Renders the record as one JSON line (without trailing newline).
    /// Stage names are ASCII identifiers, so no escaping is needed.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"id\":{},\"stage\":\"{}\",\"slot\":{},\"shard\":{},\"bs\":{}}}",
            self.id, self.stage, self.slot, self.shard, self.bs
        )
    }
}

/// Where lifecycle records go. Mirrors [`crate::EventSink`]: implemented
/// by rings and by `Option<S>` (a `None` sink drops records) so call
/// sites stay unconditional.
pub trait LifecycleSink {
    /// Accepts one record.
    fn life(&self, record: LifecycleRecord);
}

impl<S: LifecycleSink> LifecycleSink for Option<S> {
    fn life(&self, record: LifecycleRecord) {
        if let Some(sink) = self {
            sink.life(record);
        }
    }
}

impl<S: LifecycleSink + ?Sized> LifecycleSink for &S {
    fn life(&self, record: LifecycleRecord) {
        (**self).life(record);
    }
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<LifecycleRecord>,
    cap: usize,
    dropped: u64,
}

/// A bounded, shareable buffer of lifecycle records.
///
/// Cloning shares the underlying buffer — the driver keeps one clone
/// per shard (so records survive a worker crash) and hands the other to
/// the worker. When full, the *newest* record is dropped and counted,
/// matching [`crate::TraceRing`] semantics.
#[derive(Debug, Clone)]
pub struct LifecycleRing {
    inner: Arc<Mutex<RingInner>>,
}

impl LifecycleRing {
    /// A ring holding at most `cap` records (minimum one).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            })),
        }
    }

    /// Locks the ring, recovering from a poisoned mutex: records are
    /// plain data, so the state is valid regardless of where a panicking
    /// thread stopped.
    fn lock(&self) -> MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Removes and returns all buffered records in arrival order.
    pub fn drain(&self) -> Vec<LifecycleRecord> {
        self.lock().buf.drain(..).collect()
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

impl LifecycleSink for LifecycleRing {
    fn life(&self, record: LifecycleRecord) {
        let mut inner = self.lock();
        if inner.buf.len() >= inner.cap {
            inner.dropped += 1;
            return;
        }
        inner.buf.push_back(record);
    }
}

/// Serializes lifecycle records as JSONL. Write errors are swallowed
/// (observability must never take down the run); `written` counts the
/// records that made it out.
pub struct LifecycleWriter {
    out: Box<dyn Write + Send>,
    written: u64,
}

impl std::fmt::Debug for LifecycleWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleWriter")
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl LifecycleWriter {
    /// A writer over any byte sink.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out, written: 0 }
    }

    /// Writes one record as a JSON line.
    pub fn write(&mut self, record: &LifecycleRecord) {
        let line = record.to_json_line();
        if writeln!(self.out, "{line}").is_ok() {
            self.written += 1;
        }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes the underlying sink (errors swallowed).
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, stage: &'static str, slot: u64) -> LifecycleRecord {
        LifecycleRecord {
            id,
            stage,
            slot,
            shard: DRIVER,
            bs: NO_BS,
        }
    }

    #[test]
    fn renders_compact_json() {
        let r = LifecycleRecord {
            id: 7,
            stage: "admit",
            slot: 3,
            shard: 1,
            bs: 13,
        };
        assert_eq!(
            r.to_json_line(),
            "{\"id\":7,\"stage\":\"admit\",\"slot\":3,\"shard\":1,\"bs\":13}"
        );
        assert_eq!(
            rec(0, "shed", 0).to_json_line(),
            "{\"id\":0,\"stage\":\"shed\",\"slot\":0,\"shard\":-1,\"bs\":-1}"
        );
    }

    #[test]
    fn ring_drops_newest_and_counts() {
        let ring = LifecycleRing::with_capacity(2);
        for i in 0..5 {
            ring.life(rec(i, "admit", i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, 0);
        assert_eq!(drained[1].id, 1);
        assert_eq!(ring.dropped(), 3);
        // Draining frees capacity again.
        ring.life(rec(9, "complete", 9));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = LifecycleRing::with_capacity(8);
        let b = a.clone();
        b.life(rec(1, "start", 4));
        assert_eq!(a.drain().len(), 1);
        assert!(b.drain().is_empty());
    }

    #[test]
    fn option_sink_is_transparent() {
        let some = Some(LifecycleRing::with_capacity(4));
        some.life(rec(2, "expire", 8));
        assert_eq!(some.as_ref().unwrap().drain().len(), 1);
        let none: Option<LifecycleRing> = None;
        none.life(rec(3, "abort", 9));
    }

    #[test]
    fn writer_counts_lines() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut w = LifecycleWriter::new(Box::new(Shared(buf.clone())));
        w.write(&rec(1, "admit", 0));
        w.write(&rec(1, "complete", 5));
        w.flush();
        assert_eq!(w.written(), 2);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"stage\":\"complete\""));
    }
}
