//! Decision flight recorder: a bounded per-shard ring of compact
//! per-slot decision snapshots, dumped to JSONL when something goes
//! wrong (SLO breach, suspected drift, shard crash) or on demand.
//!
//! The recorder answers "what was the learner doing in the slots right
//! before the incident?" without paying for a full trace: each shard
//! contributes one [`DecisionSnapshot`] per slot (chosen arm, live-arm
//! count, learner bounds, LP basis stats, an FNV-1a digest of the slot's
//! assignment), the rings keep only the last `capacity` slots, and a
//! triggered dump renders them sorted by `(slot, shard)` so the final
//! line of the dump is the snapshot of the triggering slot.
//!
//! All snapshot content is deterministic (virtual slots, counts,
//! rewards, digests) per the crate's determinism contract — a same-seed
//! replay produces an identical dump.

use std::collections::VecDeque;

use crate::trace::{TraceEvent, Value};

/// Default per-shard ring capacity (slots of history kept).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One shard-slot decision snapshot. All fields are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSnapshot {
    /// Shard that made the decision.
    pub shard: usize,
    /// Virtual slot of the decision.
    pub slot: u64,
    /// Chosen arm index.
    pub arm: usize,
    /// Threshold value (MHz) the arm maps to.
    pub value: f64,
    /// Live (non-eliminated) arms at decision time.
    pub active_arms: u64,
    /// Empirically best arm at decision time.
    pub best_arm: usize,
    /// Mean reward of the best arm.
    pub best_mean: f64,
    /// Requests granted compute this slot.
    pub granted: u64,
    /// Total MHz granted this slot.
    pub granted_mhz: f64,
    /// FNV-1a digest of the (request, station, grant) assignment triples.
    pub assign_digest: u64,
    /// Cumulative LP solves (0 in fast mode).
    pub lp_solves: u64,
    /// Cumulative LP warm-start hits.
    pub lp_warm_hits: u64,
    /// Cumulative LP simplex pivots.
    pub lp_pivots: u64,
}

impl DecisionSnapshot {
    /// Renders the snapshot as a `kind: "flight"` trace event.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent {
            slot: self.slot,
            kind: "flight".to_string(),
            fields: vec![
                ("shard", Value::U64(self.shard as u64)),
                ("arm", Value::U64(self.arm as u64)),
                ("value", Value::F64(self.value)),
                ("active_arms", Value::U64(self.active_arms)),
                ("best_arm", Value::U64(self.best_arm as u64)),
                ("best_mean", Value::F64(self.best_mean)),
                ("granted", Value::U64(self.granted)),
                ("granted_mhz", Value::F64(self.granted_mhz)),
                ("assign_digest", Value::U64(self.assign_digest)),
                ("lp_solves", Value::U64(self.lp_solves)),
                ("lp_warm_hits", Value::U64(self.lp_warm_hits)),
                ("lp_pivots", Value::U64(self.lp_pivots)),
            ],
        }
    }
}

/// What can trip a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightTrigger {
    /// An SLO burn-rate breach transition.
    Slo,
    /// A Page–Hinkley `drift_suspected` firing.
    Drift,
    /// A shard crash detection.
    Crash,
}

impl FlightTrigger {
    /// Stable lowercase name used in CLI flags and dump headers.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Slo => "slo",
            Self::Drift => "drift",
            Self::Crash => "crash",
        }
    }

    /// All triggers, in canonical render order.
    pub const ALL: [Self; 3] = [Self::Slo, Self::Drift, Self::Crash];
}

/// Typed parse failure for `--flight-dump-on` trigger lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightTriggerParseError {
    /// The list was empty (or only commas/whitespace).
    Empty,
    /// A token was not one of `slo`, `drift`, `crash`.
    UnknownTrigger(String),
    /// The same trigger appeared twice.
    Duplicate(&'static str),
}

impl std::fmt::Display for FlightTriggerParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "empty trigger list (expected e.g. \"slo,drift,crash\")"),
            Self::UnknownTrigger(t) => write!(
                f,
                "unknown flight trigger {t:?} (expected \"slo\", \"drift\", or \"crash\")"
            ),
            Self::Duplicate(t) => write!(f, "duplicate flight trigger {t:?}"),
        }
    }
}

impl std::error::Error for FlightTriggerParseError {}

/// A set of enabled dump triggers, parsed from a comma list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightTriggerSet {
    slo: bool,
    drift: bool,
    crash: bool,
}

impl FlightTriggerSet {
    /// Parses a comma-separated trigger list (`"slo,drift"`). Tokens are
    /// trimmed; order is irrelevant; duplicates are rejected.
    pub fn parse(raw: &str) -> Result<Self, FlightTriggerParseError> {
        let mut set = Self::default();
        let mut any = false;
        for tok in raw.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            any = true;
            let trigger = match tok {
                "slo" => FlightTrigger::Slo,
                "drift" => FlightTrigger::Drift,
                "crash" => FlightTrigger::Crash,
                other => return Err(FlightTriggerParseError::UnknownTrigger(other.to_string())),
            };
            if set.contains(trigger) {
                return Err(FlightTriggerParseError::Duplicate(trigger.as_str()));
            }
            set.insert(trigger);
        }
        if !any {
            return Err(FlightTriggerParseError::Empty);
        }
        Ok(set)
    }

    /// Every trigger enabled — the default when `--flight-out` is given
    /// without `--flight-dump-on`.
    pub fn all() -> Self {
        Self {
            slo: true,
            drift: true,
            crash: true,
        }
    }

    /// Is `trigger` enabled?
    pub fn contains(&self, trigger: FlightTrigger) -> bool {
        match trigger {
            FlightTrigger::Slo => self.slo,
            FlightTrigger::Drift => self.drift,
            FlightTrigger::Crash => self.crash,
        }
    }

    /// Enables `trigger`.
    pub fn insert(&mut self, trigger: FlightTrigger) {
        match trigger {
            FlightTrigger::Slo => self.slo = true,
            FlightTrigger::Drift => self.drift = true,
            FlightTrigger::Crash => self.crash = true,
        }
    }

    /// Canonical comma-list rendering (`"slo,drift,crash"` order).
    /// `parse(render())` round-trips for every non-empty set.
    pub fn render(&self) -> String {
        let mut out = Vec::new();
        for t in FlightTrigger::ALL {
            if self.contains(t) {
                out.push(t.as_str());
            }
        }
        out.join(",")
    }
}

/// Bounded per-shard rings of [`DecisionSnapshot`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Vec<VecDeque<DecisionSnapshot>>,
    evicted: u64,
    dumps: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` snapshots per
    /// shard (a `capacity` of 0 is promoted to 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            rings: Vec::new(),
            evicted: 0,
            dumps: 0,
        }
    }

    /// Records one snapshot, evicting the shard's oldest at capacity.
    /// Eviction is normal operation (the ring *is* the retention
    /// policy), but the count is still exposed for sizing the ring.
    pub fn record(&mut self, snap: DecisionSnapshot) {
        if snap.shard >= self.rings.len() {
            self.rings.resize_with(snap.shard + 1, VecDeque::new);
        }
        let ring = &mut self.rings[snap.shard];
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted += 1;
        }
        ring.push_back(snap);
    }

    /// Snapshots currently held across all shards.
    pub fn len(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }

    /// True when no snapshots are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total snapshots evicted by the retention policy.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Dumps issued so far.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// Renders the current ring contents as JSONL sorted by `(slot,
    /// shard)`, one `kind: "flight"` line per snapshot, without counting
    /// as a dump. Backs the on-demand `GET /flight.json` view.
    pub fn render_jsonl(&self) -> String {
        let mut snaps: Vec<&DecisionSnapshot> = self.rings.iter().flatten().collect();
        snaps.sort_by_key(|s| (s.slot, s.shard));
        let mut out = String::new();
        for s in snaps {
            out.push_str(&s.to_event().to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders a dump: one `flight_dump` header event (trigger, slot,
    /// snapshot count) followed by every held snapshot sorted by
    /// `(slot, shard)`. The rings are left intact so back-to-back
    /// triggers each get full context. Returns an empty vec when no
    /// snapshots are held (nothing worth writing).
    pub fn dump_events(&mut self, trigger: FlightTrigger, slot: u64) -> Vec<TraceEvent> {
        let mut snaps: Vec<&DecisionSnapshot> = self.rings.iter().flatten().collect();
        if snaps.is_empty() {
            return Vec::new();
        }
        self.dumps += 1;
        snaps.sort_by_key(|s| (s.slot, s.shard));
        let mut out = Vec::with_capacity(snaps.len() + 1);
        out.push(TraceEvent {
            slot,
            kind: "flight_dump".to_string(),
            fields: vec![
                ("trigger", Value::Str(trigger.as_str().to_string())),
                ("snapshots", Value::U64(snaps.len() as u64)),
                ("evicted", Value::U64(self.evicted)),
            ],
        });
        out.extend(snaps.into_iter().map(DecisionSnapshot::to_event));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(shard: usize, slot: u64) -> DecisionSnapshot {
        DecisionSnapshot {
            shard,
            slot,
            arm: 3,
            value: 400.0,
            active_arms: 5,
            best_arm: 3,
            best_mean: 0.7,
            granted: 12,
            granted_mhz: 4800.0,
            assign_digest: 0xdead_beef ^ slot,
            lp_solves: 0,
            lp_warm_hits: 0,
            lp_pivots: 0,
        }
    }

    #[test]
    fn ring_bounds_history_per_shard() {
        let mut r = FlightRecorder::new(4);
        for slot in 0..10 {
            r.record(snap(0, slot));
            r.record(snap(1, slot));
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.evicted(), 12);
        let events = r.dump_events(FlightTrigger::Crash, 9);
        // Header + 8 snapshots; oldest retained slot is 6.
        assert_eq!(events.len(), 9);
        assert_eq!(events[0].kind, "flight_dump");
        assert_eq!(events[1].slot, 6);
    }

    #[test]
    fn dump_sorts_by_slot_then_shard_and_ends_on_trigger_slot() {
        let mut r = FlightRecorder::new(8);
        // Interleave shards out of order.
        r.record(snap(2, 5));
        r.record(snap(0, 5));
        r.record(snap(1, 5));
        r.record(snap(0, 6));
        r.record(snap(2, 6));
        let events = r.dump_events(FlightTrigger::Slo, 6);
        assert_eq!(events[0].kind, "flight_dump");
        assert_eq!(events[0].slot, 6);
        let order: Vec<(u64, u64)> = events[1..]
            .iter()
            .map(|e| {
                let shard = e
                    .fields
                    .iter()
                    .find(|(k, _)| *k == "shard")
                    .map(|(_, v)| match v {
                        Value::U64(s) => *s,
                        _ => panic!("shard must be u64"),
                    })
                    .unwrap();
                (e.slot, shard)
            })
            .collect();
        assert_eq!(order, vec![(5, 0), (5, 1), (5, 2), (6, 0), (6, 2)]);
        // The acceptance contract: last line's slot == triggering slot.
        assert_eq!(events.last().unwrap().slot, 6);
        // Rings survive the dump for the next trigger.
        assert_eq!(r.len(), 5);
        assert_eq!(r.dumps(), 1);
    }

    #[test]
    fn render_jsonl_sorts_without_counting_a_dump() {
        let mut r = FlightRecorder::new(8);
        r.record(snap(1, 4));
        r.record(snap(0, 4));
        let doc = r.render_jsonl();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"shard\":0"));
        assert!(lines[1].contains("\"shard\":1"));
        assert_eq!(r.dumps(), 0);
        assert_eq!(r.len(), 2);
        assert!(FlightRecorder::new(8).render_jsonl().is_empty());
    }

    #[test]
    fn empty_recorder_dumps_nothing() {
        let mut r = FlightRecorder::new(8);
        assert!(r.dump_events(FlightTrigger::Drift, 3).is_empty());
        assert_eq!(r.dumps(), 0);
    }

    #[test]
    fn trigger_set_parses_and_round_trips() {
        let set = FlightTriggerSet::parse("drift, slo").unwrap();
        assert!(set.contains(FlightTrigger::Slo));
        assert!(set.contains(FlightTrigger::Drift));
        assert!(!set.contains(FlightTrigger::Crash));
        assert_eq!(set.render(), "slo,drift");
        assert_eq!(FlightTriggerSet::parse(&set.render()).unwrap(), set);
        assert_eq!(FlightTriggerSet::all().render(), "slo,drift,crash");
    }

    #[test]
    fn trigger_parse_rejects_bad_lists() {
        assert_eq!(
            FlightTriggerSet::parse(""),
            Err(FlightTriggerParseError::Empty)
        );
        assert_eq!(
            FlightTriggerSet::parse(" , ,"),
            Err(FlightTriggerParseError::Empty)
        );
        assert_eq!(
            FlightTriggerSet::parse("slo,latency"),
            Err(FlightTriggerParseError::UnknownTrigger("latency".into()))
        );
        assert_eq!(
            FlightTriggerSet::parse("drift,drift"),
            Err(FlightTriggerParseError::Duplicate("drift"))
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Every non-empty trigger set renders to a canonical list
            /// that parses back to the same set.
            #[test]
            fn trigger_set_parse_render_round_trips(mask in 0u8..8) {
                let mut set = FlightTriggerSet::default();
                let (slo, drift, crash) = (mask & 1 != 0, mask & 2 != 0, mask & 4 != 0);
                if slo { set.insert(FlightTrigger::Slo); }
                if drift { set.insert(FlightTrigger::Drift); }
                if crash { set.insert(FlightTrigger::Crash); }
                let rendered = set.render();
                if slo || drift || crash {
                    prop_assert_eq!(FlightTriggerSet::parse(&rendered), Ok(set));
                } else {
                    prop_assert_eq!(
                        FlightTriggerSet::parse(&rendered),
                        Err(FlightTriggerParseError::Empty)
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_event_renders_flat_json() {
        let line = snap(1, 42).to_event().to_json_line();
        assert!(line.contains("\"kind\":\"flight\""));
        assert!(line.contains("\"slot\":42"));
        assert!(line.contains("\"shard\":1"));
        assert!(line.contains("\"assign_digest\""));
        crate::json::parse_json(&line).expect("flight lines parse with the bundled reader");
    }
}
