//! Learner introspection surfaced through [`crate::SlotPolicy`].
//!
//! A policy may expose its internal learning state — per-arm pull
//! counts, confidence bounds, the active set — as a
//! [`PolicyTelemetry`] snapshot. The serving runtime polls it at a
//! configurable slot interval and turns it into live gauges and trace
//! events (arm-elimination timeline, running regret). Everything here
//! is plain deterministic data derived from the policy's own state, so
//! telemetry never perturbs a run and two same-seed runs report
//! identical snapshots.

use serde::{Deserialize, Serialize};

/// One bandit arm's state at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmTelemetry {
    /// Arm index in the discretized domain.
    pub arm: usize,
    /// The arm's value in problem units (threshold MHz for `DynamicRR`).
    pub value: f64,
    /// Times the arm has been pulled.
    pub pulls: u64,
    /// Empirical mean of the normalized reward.
    pub mean: f64,
    /// Upper confidence bound (infinite for an unpulled arm).
    pub ucb: f64,
    /// Lower confidence bound (negative-infinite for an unpulled arm).
    pub lcb: f64,
    /// Whether the arm is still in the active (non-eliminated) set.
    /// Learners that never eliminate report `true` throughout.
    pub active: bool,
}

/// A deterministic snapshot of a learning policy's internal state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTelemetry {
    /// Policy name (matches [`crate::SlotPolicy::name`]).
    pub policy: String,
    /// Total learner updates so far.
    pub total_pulls: u64,
    /// Index of the current best arm.
    pub best_arm: usize,
    /// The best arm's value in problem units.
    pub best_value: f64,
    /// Cumulative normalized reward fed to the learner.
    pub cum_reward: f64,
    /// Running regret proxy against the empirical-best arm:
    /// `total_pulls * best_mean - cum_reward`. This is the hindsight
    /// comparison available online (the true `OPT_s` of Theorem 3 needs
    /// the offline optimum); it is exact in the limit where the best
    /// arm's empirical mean converges.
    pub regret_proxy: f64,
    /// Per-arm state, indexed by arm. Empty when the learner exposes no
    /// per-arm statistics.
    pub arms: Vec<ArmTelemetry>,
    /// Slot-LP solver counters, when the policy drives an LP solver
    /// (`None` for LP-free policies).
    pub solver: Option<SolverTelemetry>,
}

impl PolicyTelemetry {
    /// Number of arms still active (all arms, for never-eliminating
    /// learners).
    pub fn active_arms(&self) -> usize {
        self.arms.iter().filter(|a| a.active).count()
    }
}

/// One arm-lifecycle event drained from an attached learner probe
/// (`mec-bandit`'s `LearnerProbe`), in policy-agnostic wire form: the
/// kind travels as its stable lowercase name so consumers need no
/// bandit-crate types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerEvent {
    /// The learner's total pull count when the event fired.
    pub step: u64,
    /// Arm index in the discretized domain.
    pub arm: usize,
    /// The arm's value in problem units (threshold MHz for `DynamicRR`).
    pub value: f64,
    /// Event kind: `activate`, `sample`, `bound_update`, `eliminate`,
    /// or `reactivate`.
    pub kind: &'static str,
    /// The arm's pull count after the event.
    pub pulls: u64,
    /// The arm's mean after the event.
    pub mean: f64,
    /// The arm's confidence radius after the event.
    pub radius: f64,
    /// The observed normalized reward (`sample` events only).
    pub reward: Option<f64>,
    /// The best active arm's mean after the event (`sample` only) —
    /// the per-step online oracle for regret accounting.
    pub oracle: Option<f64>,
}

/// Slot-LP solver counters, drained alongside [`PolicyTelemetry`].
/// All counts are deterministic (derived from pivot/refactorization
/// arithmetic, never wall-clock), so they are safe in traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverTelemetry {
    /// LPs solved.
    pub solves: u64,
    /// Warm-started solves that converged from the reused basis.
    pub warm_hits: u64,
    /// Warm starts that fell back to a cold solve.
    pub warm_fallbacks: u64,
    /// Solves with no warm basis available.
    pub cold_starts: u64,
    /// Simplex pivots across all solves.
    pub pivots: u64,
    /// Basis refactorizations across all solves.
    pub refactorizations: u64,
}

/// A compact digest of one slot's scheduling decision, recorded by the
/// policy when a probe is attached and fed to the flight recorder.
/// Everything derives from the chosen allocations and learner state —
/// no wall-clock — so snapshot streams are byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// The slot the decision was made for.
    pub slot: u64,
    /// The arm played this slot.
    pub arm: usize,
    /// The arm's value in problem units (threshold MHz).
    pub value: f64,
    /// Arms still active in the learner.
    pub active_arms: u64,
    /// The learner's current best arm.
    pub best_arm: usize,
    /// The best arm's mean.
    pub best_mean: f64,
    /// Allocations granted this slot.
    pub granted: u64,
    /// Total compute granted this slot (MHz).
    pub granted_mhz: f64,
    /// FNV-1a hash over the chosen `(request, station, grant)` triples —
    /// two runs that made the same decision agree on this digest.
    pub assign_digest: u64,
}
