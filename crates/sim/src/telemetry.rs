//! Learner introspection surfaced through [`crate::SlotPolicy`].
//!
//! A policy may expose its internal learning state — per-arm pull
//! counts, confidence bounds, the active set — as a
//! [`PolicyTelemetry`] snapshot. The serving runtime polls it at a
//! configurable slot interval and turns it into live gauges and trace
//! events (arm-elimination timeline, running regret). Everything here
//! is plain deterministic data derived from the policy's own state, so
//! telemetry never perturbs a run and two same-seed runs report
//! identical snapshots.

use serde::{Deserialize, Serialize};

/// One bandit arm's state at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmTelemetry {
    /// Arm index in the discretized domain.
    pub arm: usize,
    /// The arm's value in problem units (threshold MHz for `DynamicRR`).
    pub value: f64,
    /// Times the arm has been pulled.
    pub pulls: u64,
    /// Empirical mean of the normalized reward.
    pub mean: f64,
    /// Upper confidence bound (infinite for an unpulled arm).
    pub ucb: f64,
    /// Lower confidence bound (negative-infinite for an unpulled arm).
    pub lcb: f64,
    /// Whether the arm is still in the active (non-eliminated) set.
    /// Learners that never eliminate report `true` throughout.
    pub active: bool,
}

/// A deterministic snapshot of a learning policy's internal state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTelemetry {
    /// Policy name (matches [`crate::SlotPolicy::name`]).
    pub policy: String,
    /// Total learner updates so far.
    pub total_pulls: u64,
    /// Index of the current best arm.
    pub best_arm: usize,
    /// The best arm's value in problem units.
    pub best_value: f64,
    /// Cumulative normalized reward fed to the learner.
    pub cum_reward: f64,
    /// Running regret proxy against the empirical-best arm:
    /// `total_pulls * best_mean - cum_reward`. This is the hindsight
    /// comparison available online (the true `OPT_s` of Theorem 3 needs
    /// the offline optimum); it is exact in the limit where the best
    /// arm's empirical mean converges.
    pub regret_proxy: f64,
    /// Per-arm state, indexed by arm. Empty when the learner exposes no
    /// per-arm statistics.
    pub arms: Vec<ArmTelemetry>,
}

impl PolicyTelemetry {
    /// Number of arms still active (all arms, for never-eliminating
    /// learners).
    pub fn active_arms(&self) -> usize {
        self.arms.iter().filter(|a| a.active).count()
    }
}
