//! The slot loop: arrivals → policy callback → validation → service.

use crate::lifecycle::{Job, JobView, Phase};
use crate::metrics::Metrics;
use crate::trace::{Event, Trace};
use crate::SlotConfig;
use mec_topology::station::StationId;
use mec_topology::units::Compute;
use mec_topology::{PathTable, Topology};
use mec_workload::request::{Request, RequestId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One slot's compute grant to one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// The request being served.
    pub request: RequestId,
    /// The station doing the work this slot.
    pub station: StationId,
    /// Compute granted for the slot.
    pub compute: Compute,
}

/// Everything a policy may look at when scheduling one slot.
#[derive(Debug)]
pub struct SlotContext<'a> {
    /// Current slot index.
    pub slot: u64,
    /// All jobs that have arrived and can still be served, in request-id
    /// order.
    pub views: Vec<JobView<'a>>,
    /// The network.
    pub topo: &'a Topology,
    /// Precomputed shortest paths.
    pub paths: &'a PathTable,
    /// Simulation parameters.
    pub config: &'a SlotConfig,
}

/// A per-slot scheduling policy (implemented by `mec-core`'s online
/// algorithms).
pub trait SlotPolicy {
    /// Chooses this slot's allocations. Jobs left out are preempted (they
    /// keep their remaining work and wait).
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation>;

    /// Feedback after the slot is served: the reward credited by requests
    /// that *completed* during this slot. Online learners (the paper's
    /// `DynamicRR`) use this as their bandit signal; the default is a no-op.
    fn observe(&mut self, slot: u64, completed_reward: f64) {
        let _ = (slot, completed_reward);
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &str {
        "policy"
    }

    /// A deterministic snapshot of the policy's internal learning state,
    /// for telemetry. Non-learning policies keep the default `None`.
    fn telemetry(&self) -> Option<crate::telemetry::PolicyTelemetry> {
        None
    }

    /// Attaches or detaches the learner probe (arm-lifecycle events and
    /// per-slot decision records). Non-learning policies ignore this;
    /// the default probe is detached and detached policies behave
    /// byte-identically to pre-probe builds.
    fn set_probe(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Drains arm-lifecycle events recorded since the last drain. Empty
    /// unless a probe is attached.
    fn drain_learner_events(&mut self) -> Vec<crate::telemetry::LearnerEvent> {
        Vec::new()
    }

    /// Lifecycle events lost to the policy's bounded probe buffer.
    fn probe_dropped(&self) -> u64 {
        0
    }

    /// The most recent slot's decision digest, when a probe is attached.
    fn last_decision(&self) -> Option<crate::telemetry::DecisionRecord> {
        None
    }

    /// Drains wall-clock LP solve times (milliseconds) accumulated since
    /// the last drain, for live histograms only — callers must never
    /// route these into traces or snapshots.
    fn drain_solve_times_ms(&mut self) -> Vec<f64> {
        Vec::new()
    }
}

/// Validation failures — a policy returned an illegal schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Allocation referenced a request the engine does not know.
    UnknownRequest(RequestId),
    /// Allocation targeted a completed/expired/not-yet-arrived request.
    NotSchedulable(RequestId),
    /// Two allocations for the same request in one slot.
    DuplicateAllocation(RequestId),
    /// A station's grants exceeded its capacity.
    CapacityExceeded {
        /// The over-committed station.
        station: StationId,
        /// Sum of grants.
        used: f64,
        /// The station's capacity.
        capacity: f64,
    },
    /// First service would violate the request's latency requirement
    /// (Ineq. 1) — policies must only start feasible requests.
    DeadlineViolated(RequestId),
    /// The serving station is unreachable from the request's home.
    Unreachable(RequestId, StationId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownRequest(r) => write!(f, "unknown request {r}"),
            SimError::NotSchedulable(r) => write!(f, "request {r} cannot be scheduled"),
            SimError::DuplicateAllocation(r) => write!(f, "duplicate allocation for {r}"),
            SimError::CapacityExceeded {
                station,
                used,
                capacity,
            } => write!(
                f,
                "station {station} over-committed: {used:.1} of {capacity:.1} MHz"
            ),
            SimError::DeadlineViolated(r) => {
                write!(f, "first service of {r} would violate its deadline")
            }
            SimError::Unreachable(r, s) => write!(f, "station {s} unreachable from {r}'s home"),
        }
    }
}

impl std::error::Error for SimError {}

/// What happened during one executed slot — the per-tick feedback a
/// long-running serving loop consumes (`mec-serve` reads these instead of
/// waiting for the end-of-horizon [`Metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotReport {
    /// The slot that was just executed.
    pub slot: u64,
    /// Requests that completed during this slot.
    pub completed: usize,
    /// Reward credited by those completions.
    pub completed_reward: f64,
    /// Requests that expired waiting during this slot.
    pub expired: usize,
    /// Streams aborted by the continuity requirement during this slot.
    pub aborted: usize,
}

/// A resumable image of an [`Engine`]'s mutable state: everything needed
/// to rebuild the engine at the same point of the same run — the slot
/// index, every job's dynamic state (active placements and remaining
/// work), accumulated metrics, and the demand RNG's stream position.
///
/// Captured with [`Engine::checkpoint`] and reapplied with
/// [`Engine::restore`] onto an engine built over the *same* topology,
/// path table, and [`SlotConfig`] (in particular the same `seed` — the
/// RNG is reseeded from it and fast-forwarded to the recorded stream
/// position). The event trace, if any, is not part of the state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineState {
    /// The next slot [`Engine::step`] will execute.
    pub next_slot: u64,
    /// Slots executed so far.
    pub slots_run: u64,
    /// Every job's dynamic state, in dense request-id order.
    pub jobs: Vec<Job>,
    /// Granted MHz·slots per station.
    pub busy_mhz_slots: Vec<f64>,
    /// Outcome counters accumulated so far.
    pub metrics: Metrics,
    /// Whether [`Engine::finish`] already accounted for leftovers.
    pub finished: bool,
    /// Words consumed from the demand-realization RNG stream.
    pub rng_word_pos: u64,
}

impl EngineState {
    /// The state of a freshly built engine with an empty workload over a
    /// `stations`-sized topology — the replay base a supervisor can hold
    /// before the first checkpoint arrives.
    pub fn genesis(stations: usize) -> Self {
        Self {
            next_slot: 0,
            slots_run: 0,
            jobs: Vec::new(),
            busy_mhz_slots: vec![0.0; stations],
            metrics: Metrics::new(),
            finished: false,
            rng_word_pos: 0,
        }
    }

    /// Splits the in-flight jobs homed on `station` out of this
    /// checkpoint: they are cloned into the returned [`StationSlice`] and
    /// the originals become [`Phase::Migrated`] in place. This is what
    /// makes checkpoints *splittable per-station* — a handoff ships only
    /// the drained station's slice, never the whole image.
    pub fn split_station(&mut self, station: StationId) -> StationSlice {
        let mut jobs = Vec::new();
        for job in &mut self.jobs {
            if job.request().home() == station
                && matches!(job.phase(), Phase::Waiting | Phase::Running)
            {
                jobs.push(job.clone());
                job.mark_migrated();
            }
        }
        StationSlice { station, jobs }
    }
}

/// The in-flight (waiting or running) jobs homed on one station, extracted
/// from an engine or checkpoint for a drain/leave handoff. The slice — not
/// the full engine image — is what moves between shards, so handoff cost
/// is bounded by the state that actually moved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationSlice {
    /// The station the jobs were homed on, in the *source* engine's
    /// station id space.
    pub station: StationId,
    /// The moved jobs, in dense source-id order.
    pub jobs: Vec<Job>,
}

impl StationSlice {
    /// Number of moved jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether nothing moved.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// The discrete time-slot engine.
///
/// Owns the job states, realizes demands on first service (seeded RNG, so
/// runs are reproducible), enforces capacities and deadlines, and
/// accumulates [`Metrics`].
///
/// Two driving styles are supported:
///
/// * **Batch** — [`Engine::run`] executes the configured horizon in one
///   call (the paper's experiments).
/// * **Resumable** — [`Engine::step`] executes a single slot and returns a
///   [`SlotReport`]; new requests may be injected between steps with
///   [`Engine::inject`], and [`Engine::finish`] closes the books. This is
///   the substrate of the `mec-serve` streaming runtime.
pub struct Engine<'a> {
    topo: &'a Topology,
    paths: &'a PathTable,
    config: SlotConfig,
    jobs: Vec<Job>,
    rng: ChaCha8Rng,
    /// Granted MHz·slots per station, accumulated across the run.
    busy_mhz_slots: Vec<f64>,
    slots_run: u64,
    trace: Option<Trace>,
    /// The next slot [`Engine::step`] will execute.
    next_slot: u64,
    /// Accumulated outcome counters (engine-owned so stepping can pause
    /// and resume without losing state).
    metrics: Metrics,
    /// Whether [`Engine::finish`] already accounted for leftovers.
    finished: bool,
}

impl<'a> Engine<'a> {
    /// Builds an engine over a workload.
    ///
    /// # Panics
    ///
    /// Panics if request ids are not dense `0..n` (the workload generator
    /// guarantees this).
    pub fn new(
        topo: &'a Topology,
        paths: &'a PathTable,
        requests: Vec<Request>,
        config: SlotConfig,
    ) -> Self {
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id().index(), i, "request ids must be dense");
        }
        let rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5bd1_e995);
        let stations = topo.station_count();
        Self {
            topo,
            paths,
            config,
            jobs: requests.into_iter().map(Job::new).collect(),
            rng,
            busy_mhz_slots: vec![0.0; stations],
            slots_run: 0,
            trace: None,
            next_slot: 0,
            metrics: Metrics::new(),
            finished: false,
        }
    }

    /// Turns on event tracing, keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn record(&mut self, slot: u64, event: Event) {
        if let Some(trace) = &mut self.trace {
            trace.record(slot, event);
        }
    }

    /// Per-station utilization in `[0, 1]` over the slots run so far:
    /// granted compute divided by capacity × time. All zeros before
    /// [`Engine::run`].
    pub fn utilization(&self) -> Vec<f64> {
        self.topo
            .stations()
            .iter()
            .zip(&self.busy_mhz_slots)
            .map(|(s, &busy)| {
                let denom = s.capacity().as_mhz() * self.slots_run as f64;
                if denom > 0.0 {
                    busy / denom
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Network-wide average utilization in `[0, 1]`.
    pub fn avg_utilization(&self) -> f64 {
        let total_cap: f64 = self
            .topo
            .stations()
            .iter()
            .map(|s| s.capacity().as_mhz())
            .sum();
        let busy: f64 = self.busy_mhz_slots.iter().sum();
        let denom = total_cap * self.slots_run as f64;
        if denom > 0.0 {
            busy / denom
        } else {
            0.0
        }
    }

    /// Read access to job states (after a run, for assertions/reports).
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Runs the full horizon under `policy`.
    ///
    /// Equivalent to [`Engine::step`]-ping `config.horizon` times and then
    /// calling [`Engine::finish`].
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] if the policy produces an illegal
    /// schedule; the simulation cannot continue past that point.
    pub fn run<P: SlotPolicy + ?Sized>(&mut self, policy: &mut P) -> Result<Metrics, SimError> {
        for _ in 0..self.config.horizon {
            self.step(policy)?;
        }
        Ok(self.finish())
    }

    /// The next slot index [`Engine::step`] will execute.
    pub const fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// Metrics accumulated so far (complete only after [`Engine::finish`]).
    pub const fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Jobs not yet in a terminal phase (waiting or running) — the
    /// engine's current queue depth.
    pub fn backlog(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.phase(), Phase::Waiting | Phase::Running))
            .count()
    }

    /// Injects a request mid-run: it is re-identified with the next dense
    /// id, its arrival is clamped forward to the next slot (an injected
    /// request cannot arrive in the past), and the assigned id is
    /// returned.
    ///
    /// This is how a long-running serving loop feeds streamed arrivals
    /// into an engine whose workload was not known up front.
    pub fn inject(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.jobs.len());
        let arrival = request.arrival_slot().max(self.next_slot);
        let request = Request::new(
            id,
            request.home(),
            arrival,
            request.duration_slots(),
            request.tasks().to_vec(),
            request.demand().clone(),
            request.deadline(),
        );
        self.jobs.push(Job::new(request));
        id
    }

    /// Extracts the in-flight jobs homed on `station` for a handoff:
    /// clones of every waiting/running job whose home is `station` are
    /// returned as a [`StationSlice`] and the originals become
    /// [`Phase::Migrated`] — terminal here, finishing elsewhere. Job ids
    /// stay dense (nothing is removed), so checkpoints and journals remain
    /// valid. Deterministic: jobs are visited in dense id order.
    pub fn extract_station(&mut self, station: StationId) -> StationSlice {
        let mut jobs = Vec::new();
        for job in &mut self.jobs {
            if job.request().home() == station
                && matches!(job.phase(), Phase::Waiting | Phase::Running)
            {
                jobs.push(job.clone());
                job.mark_migrated();
            }
        }
        StationSlice { station, jobs }
    }

    /// Absorbs a [`StationSlice`] extracted from another engine: each job
    /// is re-identified with the next dense id and rehomed to `home` (a
    /// station id in *this* engine's topology), preserving all dynamic
    /// state — phase, realized demand, remaining work, first-service slot.
    /// Unlike [`Engine::inject`], arrivals are *not* clamped forward and
    /// demands already realized are not re-drawn. Returns the absorbed
    /// job count.
    pub fn absorb_station(&mut self, slice: &StationSlice, home: StationId) -> usize {
        for job in &slice.jobs {
            let id = RequestId(self.jobs.len());
            self.jobs.push(job.rehome(id, home));
        }
        slice.jobs.len()
    }

    /// Captures the engine's mutable state as a serializable
    /// [`EngineState`]. Pairing it with [`Engine::restore`] on an engine
    /// built over the same topology/paths/config resumes the run exactly:
    /// the continuation is bit-identical to never having stopped.
    pub fn checkpoint(&self) -> EngineState {
        EngineState {
            next_slot: self.next_slot,
            slots_run: self.slots_run,
            jobs: self.jobs.clone(),
            busy_mhz_slots: self.busy_mhz_slots.clone(),
            metrics: self.metrics.clone(),
            finished: self.finished,
            rng_word_pos: self.rng.get_word_pos(),
        }
    }

    /// Reapplies a [`checkpoint`](Engine::checkpoint): replaces every piece
    /// of mutable state, reseeds the demand RNG from `config.seed`, and
    /// fast-forwards it to the recorded stream position. The engine must
    /// have been built over the same topology, path table, and config as
    /// the one that produced the state.
    ///
    /// # Panics
    ///
    /// Panics if the state's per-station vector does not match this
    /// engine's topology size.
    pub fn restore(&mut self, state: EngineState) {
        assert_eq!(
            state.busy_mhz_slots.len(),
            self.topo.station_count(),
            "engine state is for a different topology"
        );
        self.next_slot = state.next_slot;
        self.slots_run = state.slots_run;
        self.jobs = state.jobs;
        self.busy_mhz_slots = state.busy_mhz_slots;
        self.metrics = state.metrics;
        self.finished = state.finished;
        self.rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x5bd1_e995);
        self.rng.set_word_pos(state.rng_word_pos);
    }

    /// Executes exactly one slot under `policy` and reports what happened.
    ///
    /// Unlike [`Engine::run`], stepping is not bounded by
    /// `config.horizon`: the caller owns the clock and may keep stepping
    /// (and [`Engine::inject`]-ing) for as long as it wants.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] if the policy produces an illegal
    /// schedule; the simulation cannot continue past that point.
    pub fn step<P: SlotPolicy + ?Sized>(&mut self, policy: &mut P) -> Result<SlotReport, SimError> {
        debug_assert!(!self.finished, "step() after finish()");
        let slot = self.next_slot;
        mec_obs::prof_slot!(slot);
        mec_obs::prof_scope!("engine.step");
        let mut report = SlotReport {
            slot,
            ..SlotReport::default()
        };
        {
            // Trace arrivals.
            if self.trace.is_some() {
                let arrived: Vec<_> = self
                    .jobs
                    .iter()
                    .filter(|j| j.request().arrival_slot() == slot)
                    .map(|j| j.id())
                    .collect();
                for request in arrived {
                    self.record(slot, Event::Arrived { request });
                }
            }
            // Expire waiting jobs that can no longer start anywhere in time.
            {
                mec_obs::prof_scope!("engine.expire");
                let mut expired_now: Vec<mec_workload::request::RequestId> = Vec::new();
                for job in &mut self.jobs {
                    if job.phase() == Phase::Waiting
                        && job.request().arrival_slot() <= slot
                        && !{
                            let waiting = job.waiting_slots(slot);
                            let topo = self.topo;
                            let paths = self.paths;
                            let slot_ms = self.config.slot_ms;
                            topo.station_ids().any(|s| {
                                job.request()
                                    .meets_deadline_at(topo, paths, s, waiting, slot_ms)
                            })
                        }
                    {
                        job.expire();
                        self.metrics.record_expired();
                        report.expired += 1;
                        let request = job.id();
                        expired_now.push(request);
                    }
                }
                for request in expired_now {
                    self.record(slot, Event::Expired { request });
                }
            }

            // Build the policy's view.
            let views: Vec<JobView<'_>> = mec_obs::prof_span!(
                "engine.views",
                self.jobs
                    .iter()
                    .filter(|j| {
                        j.request().arrival_slot() <= slot
                            && matches!(j.phase(), Phase::Waiting | Phase::Running)
                    })
                    .map(|job| JobView { job, now: slot })
                    .collect()
            );
            let ctx = SlotContext {
                slot,
                views,
                topo: self.topo,
                paths: self.paths,
                config: &self.config,
            };
            let allocations = mec_obs::prof_span!("engine.schedule", policy.schedule(&ctx));
            drop(ctx);

            // Validate.
            {
                mec_obs::prof_scope!("engine.validate");
                let mut seen: HashMap<RequestId, ()> = HashMap::new();
                let mut station_load: HashMap<StationId, f64> = HashMap::new();
                for a in &allocations {
                    let Some(job) = self.jobs.get(a.request.index()) else {
                        return Err(SimError::UnknownRequest(a.request));
                    };
                    if job.request().arrival_slot() > slot
                        || !matches!(job.phase(), Phase::Waiting | Phase::Running)
                    {
                        return Err(SimError::NotSchedulable(a.request));
                    }
                    if seen.insert(a.request, ()).is_some() {
                        return Err(SimError::DuplicateAllocation(a.request));
                    }
                    if self.paths.delay(job.request().home(), a.station).is_none() {
                        return Err(SimError::Unreachable(a.request, a.station));
                    }
                    *station_load.entry(a.station).or_insert(0.0) += a.compute.as_mhz();
                }
                for (&station, &used) in &station_load {
                    let capacity = self.topo.station(station).capacity().as_mhz();
                    if used > capacity + 1e-6 {
                        return Err(SimError::CapacityExceeded {
                            station,
                            used,
                            capacity,
                        });
                    }
                }
            }

            // Serve.
            let slot_s = self.config.slot_seconds();
            let mut slot_reward = 0.0;
            let mut served_mb: HashMap<RequestId, f64> = HashMap::new();
            {
                mec_obs::prof_scope!("engine.serve");
                for a in &allocations {
                    self.busy_mhz_slots[a.station.index()] += a.compute.as_mhz();
                    let job = &mut self.jobs[a.request.index()];
                    if job.realized().is_none() {
                        let waiting = job.waiting_slots(slot);
                        if !job.request().meets_deadline_at(
                            self.topo,
                            self.paths,
                            a.station,
                            waiting,
                            self.config.slot_ms,
                        ) {
                            return Err(SimError::DeadlineViolated(a.request));
                        }
                        let outcome = job.request().demand().sample(&mut self.rng);
                        job.realize(outcome, slot, a.station, slot_s);
                        if let Some(trace) = &mut self.trace {
                            trace.record(
                                slot,
                                Event::Started {
                                    request: a.request,
                                    station: a.station,
                                    rate_mbps: outcome.rate.as_mbps(),
                                },
                            );
                        }
                    }
                    let processed_mb = (a.compute.as_mhz() / self.config.c_unit.as_mhz()) * slot_s;
                    *served_mb.entry(a.request).or_insert(0.0) += processed_mb;
                    if job.process(processed_mb, slot) {
                        let reward = job.realized().expect("realized on service").reward;
                        let latency = job
                            .experienced_latency(self.topo, self.paths, self.config.slot_ms)
                            .expect("served jobs have latency");
                        self.metrics.record_completion(reward, latency.as_ms());
                        report.completed += 1;
                        slot_reward += reward;
                        if let Some(trace) = &mut self.trace {
                            trace.record(
                                slot,
                                Event::Completed {
                                    request: a.request,
                                    reward,
                                },
                            );
                        }
                    }
                }
            }
            mec_obs::prof_span!("engine.observe", policy.observe(slot, slot_reward));
            report.completed_reward = slot_reward;

            // Sustained-service enforcement: running streams served below
            // the floor for too many consecutive slots tear down.
            if let Some(continuity) = self.config.continuity {
                mec_obs::prof_scope!("engine.continuity");
                let mut aborted: Vec<RequestId> = Vec::new();
                for job in &mut self.jobs {
                    if job.phase() != Phase::Running {
                        continue;
                    }
                    let outcome = job.realized().expect("running jobs are realized");
                    // Near the stream's end less than the full rate suffices.
                    let required = (outcome.rate.as_mbps() * slot_s * continuity.min_fraction)
                        .min(job.remaining_mb());
                    let got = served_mb.get(&job.id()).copied().unwrap_or(0.0);
                    job.note_service_level(got + 1e-12 >= required);
                    if job.stalled_slots() > continuity.grace_slots {
                        job.abort();
                        aborted.push(job.id());
                    }
                }
                for request in aborted {
                    let latency = self.jobs[request.index()]
                        .experienced_latency(self.topo, self.paths, self.config.slot_ms)
                        .map(|l| l.as_ms());
                    self.metrics.record_aborted(latency);
                    report.aborted += 1;
                    self.record(slot, Event::Aborted { request });
                }
            }
        }
        self.next_slot += 1;
        self.slots_run = self.next_slot;
        Ok(report)
    }

    /// Ends the run: jobs still waiting are counted expired, jobs still
    /// running are counted unserved, and the final [`Metrics`] are
    /// returned. Idempotent — a second call returns the same metrics
    /// without double-counting.
    pub fn finish(&mut self) -> Metrics {
        if !self.finished {
            self.finished = true;
            for job in &self.jobs {
                match job.phase() {
                    Phase::Waiting => self.metrics.record_expired(),
                    Phase::Running => self.metrics.record_unserved(
                        job.experienced_latency(self.topo, self.paths, self.config.slot_ms)
                            .map(|l| l.as_ms()),
                    ),
                    // A migrated job finishes in the engine that absorbed
                    // it; counting it here would double-book the outcome.
                    Phase::Completed | Phase::Expired | Phase::Aborted | Phase::Migrated => {}
                }
            }
        }
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::generator::{Shape, TopologyBuilder};
    use mec_topology::units::{DataRate, Latency};
    use mec_workload::demand::DemandDistribution;
    use mec_workload::task::Task;

    fn topo() -> Topology {
        TopologyBuilder::new(3)
            .shape(Shape::Line)
            .capacity_range(3000.0, 3000.0)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(2.0, 2.0)
            .build()
    }

    fn request(id: usize, arrival: u64, duration: u64, rate: f64, reward: f64) -> Request {
        Request::new(
            RequestId(id),
            0.into(),
            arrival,
            duration,
            Task::reference_pipeline(),
            DemandDistribution::deterministic(DataRate::mbps(rate), reward),
            Latency::ms(200.0),
        )
    }

    /// Serves everything at the home station with whatever fits.
    struct GreedyHome;
    impl SlotPolicy for GreedyHome {
        fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
            let mut out = Vec::new();
            let mut left = ctx.topo.station(0.into()).capacity();
            for v in &ctx.views {
                if !v.schedulable() {
                    continue;
                }
                let need = v.rate_estimate().demand(ctx.config.c_unit);
                let give = need.min(left);
                if give.is_positive() {
                    out.push(Allocation {
                        request: v.job.id(),
                        station: 0.into(),
                        compute: give,
                    });
                    left -= give;
                }
            }
            out
        }
        fn name(&self) -> &str {
            "greedy-home"
        }
    }

    #[test]
    fn single_job_completes_on_schedule() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // 40 MB/s for 10 slots of 0.05 s = 20 MB total; at 40 MB/s service
        // (800 MHz / 20), each slot processes 2 MB → 10 slots.
        let reqs = vec![request(0, 0, 10, 40.0, 500.0)];
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        let metrics = engine.run(&mut GreedyHome).unwrap();
        assert_eq!(metrics.completed(), 1);
        assert_eq!(metrics.total_reward(), 500.0);
        assert_eq!(engine.jobs()[0].completed_slot(), Some(9));
        // Latency: 0 waiting, 0 transmission (home), 5.5 ms processing.
        assert!((metrics.avg_latency_ms() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_shared_across_jobs() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // 5 jobs of 40 MB/s = 4000 MHz demand > 3000 capacity; greedy-home
        // starts four (2400 + 600 MHz) and starves the fifth, which expires
        // once its 200 ms (4 slot) deadline can no longer be met.
        let reqs: Vec<Request> = (0..5).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let cfg = SlotConfig {
            horizon: 100,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let metrics = engine.run(&mut GreedyHome).unwrap();
        assert_eq!(metrics.completed(), 4);
        assert_eq!(metrics.expired(), 1);
        assert_eq!(metrics.total_reward(), 400.0);
    }

    #[test]
    fn over_capacity_rejected() {
        struct OverCommit;
        impl SlotPolicy for OverCommit {
            fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
                ctx.views
                    .iter()
                    .map(|v| Allocation {
                        request: v.job.id(),
                        station: 0.into(),
                        compute: Compute::mhz(2000.0),
                    })
                    .collect()
            }
        }
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs: Vec<Request> = (0..2).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        let err = engine.run(&mut OverCommit).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { .. }));
    }

    #[test]
    fn duplicate_allocation_rejected() {
        struct Duplicator;
        impl SlotPolicy for Duplicator {
            fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
                ctx.views
                    .iter()
                    .flat_map(|v| {
                        let a = Allocation {
                            request: v.job.id(),
                            station: 0.into(),
                            compute: Compute::mhz(10.0),
                        };
                        [a, a]
                    })
                    .collect()
            }
        }
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 0, 10, 40.0, 100.0)];
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        assert_eq!(
            engine.run(&mut Duplicator).unwrap_err(),
            SimError::DuplicateAllocation(RequestId(0))
        );
    }

    #[test]
    fn waiting_too_long_expires() {
        struct Idle;
        impl SlotPolicy for Idle {
            fn schedule(&mut self, _ctx: &SlotContext<'_>) -> Vec<Allocation> {
                Vec::new()
            }
        }
        let topo = topo();
        let paths = topo.shortest_paths();
        // Deadline 200 ms = 4 slots of 50 ms; after 4 waiting slots even the
        // home station (5.5 ms proc) is infeasible.
        let reqs = vec![request(0, 0, 10, 40.0, 100.0)];
        let cfg = SlotConfig {
            horizon: 20,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let metrics = engine.run(&mut Idle).unwrap();
        assert_eq!(metrics.expired(), 1);
        assert_eq!(metrics.completed(), 0);
        assert_eq!(engine.jobs()[0].phase(), Phase::Expired);
    }

    #[test]
    fn late_first_service_violating_deadline_is_error() {
        struct LateStart {
            started: bool,
        }
        impl SlotPolicy for LateStart {
            fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
                // Try to start the job on slot 3 at the far station, whose
                // round-trip transmission blows the budget.
                if ctx.slot == 3 && !self.started {
                    self.started = true;
                    ctx.views
                        .iter()
                        .map(|v| Allocation {
                            request: v.job.id(),
                            station: 2.into(),
                            compute: Compute::mhz(100.0),
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
        let topo = topo();
        let paths = topo.shortest_paths();
        // Tight deadline: 160 ms. After 3 slots (150 ms) + 8 ms round trip
        // + 5.5 ms processing = 163.5 ms > 160 ms.
        let mut req = request(0, 0, 10, 40.0, 100.0);
        req = Request::new(
            req.id(),
            req.home(),
            req.arrival_slot(),
            req.duration_slots(),
            req.tasks().to_vec(),
            req.demand().clone(),
            Latency::ms(160.0),
        );
        let mut engine = Engine::new(&topo, &paths, vec![req], SlotConfig::default());
        let err = engine.run(&mut LateStart { started: false }).unwrap_err();
        assert_eq!(err, SimError::DeadlineViolated(RequestId(0)));
    }

    #[test]
    fn unfinished_jobs_counted_unserved() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // Horizon too short to finish: 40 MB/s × 100 slots = 200 MB of work,
        // horizon 5 slots.
        let reqs = vec![request(0, 0, 100, 40.0, 100.0)];
        let cfg = SlotConfig {
            horizon: 5,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let metrics = engine.run(&mut GreedyHome).unwrap();
        assert_eq!(metrics.completed(), 0);
        assert_eq!(metrics.unserved(), 1);
        assert_eq!(metrics.total_reward(), 0.0);
    }

    #[test]
    fn arrivals_respected() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 5, 10, 40.0, 100.0)];
        let cfg = SlotConfig {
            horizon: 40,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let metrics = engine.run(&mut GreedyHome).unwrap();
        assert_eq!(metrics.completed(), 1);
        // First service at slot 5 (arrival), zero waiting.
        assert_eq!(engine.jobs()[0].first_service(), Some(5));
        assert!((metrics.avg_latency_ms() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn continuity_aborts_starved_streams() {
        use crate::Continuity;
        // Serves full demand for 3 slots, then stops entirely.
        struct Flaky;
        impl SlotPolicy for Flaky {
            fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
                if ctx.slot >= 3 {
                    return Vec::new();
                }
                ctx.views
                    .iter()
                    .map(|v| Allocation {
                        request: v.job.id(),
                        station: 0.into(),
                        compute: Compute::mhz(800.0),
                    })
                    .collect()
            }
        }
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 0, 60, 40.0, 500.0)];
        let cfg = SlotConfig {
            horizon: 30,
            continuity: Some(Continuity {
                min_fraction: 0.5,
                grace_slots: 2,
            }),
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs.clone(), cfg);
        engine.enable_trace(50);
        let metrics = engine.run(&mut Flaky).unwrap();
        assert_eq!(metrics.aborted(), 1);
        assert_eq!(metrics.completed(), 0);
        assert_eq!(metrics.total_reward(), 0.0);
        assert_eq!(engine.jobs()[0].phase(), Phase::Aborted);
        // Stall starts at slot 3; grace 2 → abort after slot 5.
        assert!(engine
            .trace()
            .unwrap()
            .events()
            .iter()
            .any(|e| matches!(e.event, crate::trace::Event::Aborted { .. }) && e.slot == 5));

        // Without the requirement, the same policy merely leaves the job
        // unserved.
        let cfg_off = SlotConfig {
            horizon: 30,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg_off);
        let metrics = engine.run(&mut Flaky).unwrap();
        assert_eq!(metrics.aborted(), 0);
        assert_eq!(metrics.unserved(), 1);
    }

    #[test]
    fn continuity_tolerates_tail_underrun() {
        use crate::Continuity;
        // Grants exactly the realized demand each slot: the final slot
        // needs less than the full rate, which must not count as a stall.
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 0, 10, 40.0, 500.0)];
        let cfg = SlotConfig {
            horizon: 30,
            continuity: Some(Continuity {
                min_fraction: 1.0,
                grace_slots: 0,
            }),
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let metrics = engine.run(&mut GreedyHome).unwrap();
        assert_eq!(metrics.aborted(), 0);
        assert_eq!(metrics.completed(), 1);
    }

    #[test]
    fn trace_records_lifecycle() {
        use crate::trace::Event;
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 2, 10, 40.0, 500.0)];
        let cfg = SlotConfig {
            horizon: 30,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        engine.enable_trace(100);
        let _ = engine.run(&mut GreedyHome).unwrap();
        let trace = engine.trace().unwrap();
        let kinds: Vec<&Event> = trace.events().iter().map(|e| &e.event).collect();
        assert!(matches!(kinds[0], Event::Arrived { .. }));
        assert!(matches!(kinds[1], Event::Started { .. }));
        assert!(matches!(kinds[2], Event::Completed { .. }));
        assert_eq!(trace.events()[0].slot, 2);
        // Untouched engines have no trace.
        let mut quiet = Engine::new(&topo, &paths, vec![request(0, 0, 5, 40.0, 1.0)], cfg);
        let _ = quiet.run(&mut GreedyHome).unwrap();
        assert!(quiet.trace().is_none());
    }

    #[test]
    fn utilization_tracked() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs = vec![request(0, 0, 10, 40.0, 500.0)];
        let cfg = SlotConfig {
            horizon: 10,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        assert_eq!(engine.avg_utilization(), 0.0);
        let _ = engine.run(&mut GreedyHome).unwrap();
        let util = engine.utilization();
        // One 800 MHz job on station 0 (3000 MHz) for all 10 slots.
        assert!((util[0] - 800.0 / 3000.0).abs() < 1e-9, "{util:?}");
        assert_eq!(util[1], 0.0);
        assert!(engine.avg_utilization() > 0.0);
        assert!(engine.avg_utilization() < util[0]);
    }

    #[test]
    fn step_matches_run() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let mk = || {
            let reqs: Vec<Request> = (0..4).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
            Engine::new(&topo, &paths, reqs, SlotConfig::default())
        };
        let batch = mk().run(&mut GreedyHome).unwrap();
        let mut engine = mk();
        for _ in 0..SlotConfig::default().horizon {
            engine.step(&mut GreedyHome).unwrap();
        }
        let stepped = engine.finish();
        assert_eq!(batch, stepped);
        // finish() is idempotent.
        assert_eq!(engine.finish(), stepped);
    }

    #[test]
    fn step_reports_per_slot_outcomes() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // 40 MB/s for 10 slots → completes exactly at slot 9.
        let reqs = vec![request(0, 0, 10, 40.0, 500.0)];
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for slot in 0..10 {
            let report = engine.step(&mut GreedyHome).unwrap();
            assert_eq!(report.slot, slot);
            if slot < 9 {
                assert_eq!(report.completed, 0);
                assert_eq!(report.completed_reward, 0.0);
            } else {
                assert_eq!(report.completed, 1);
                assert_eq!(report.completed_reward, 500.0);
            }
        }
        assert_eq!(engine.backlog(), 0);
        assert_eq!(engine.metrics().completed(), 1);
    }

    #[test]
    fn inject_streams_arrivals_mid_run() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // Start with an empty workload; requests arrive while stepping.
        let mut engine = Engine::new(&topo, &paths, Vec::new(), SlotConfig::default());
        assert_eq!(engine.backlog(), 0);
        for slot in 0..40u64 {
            if slot == 3 || slot == 7 {
                // Template carries a stale id and a past arrival; inject
                // re-identifies and clamps.
                let id = engine.inject(request(0, 0, 10, 40.0, 250.0));
                assert_eq!(id.index() + 1, engine.jobs().len());
                assert_eq!(
                    engine.jobs()[id.index()].request().arrival_slot(),
                    slot,
                    "arrival clamps to the injection slot"
                );
            }
            engine.step(&mut GreedyHome).unwrap();
        }
        let metrics = engine.finish();
        assert_eq!(metrics.completed(), 2);
        assert_eq!(metrics.total_reward(), 500.0);
    }

    #[test]
    fn stepping_past_horizon_allowed() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon: 5,
            ..Default::default()
        };
        // 10-slot job, 5-slot horizon: run() leaves it unserved, but an
        // external clock may keep stepping to completion.
        let reqs = vec![request(0, 0, 10, 40.0, 100.0)];
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        for _ in 0..10 {
            engine.step(&mut GreedyHome).unwrap();
        }
        assert_eq!(engine.next_slot(), 10);
        assert_eq!(engine.finish().completed(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let mk = || {
            let reqs: Vec<Request> = (0..4).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
            Engine::new(&topo, &paths, reqs, SlotConfig::default())
        };
        let m1 = mk().run(&mut GreedyHome).unwrap();
        let m2 = mk().run(&mut GreedyHome).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs: Vec<Request> = (0..4).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for _ in 0..5 {
            engine.step(&mut GreedyHome).unwrap();
        }
        let state = engine.checkpoint();
        let mut clone = Engine::new(&topo, &paths, Vec::new(), SlotConfig::default());
        clone.restore(state.clone());
        assert_eq!(clone.checkpoint(), state, "restore must be lossless");
    }

    #[test]
    fn restored_engine_continues_identically() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let mk_reqs =
            || -> Vec<Request> { (0..6).map(|i| request(i, 0, 10, 40.0, 100.0)).collect() };
        // Reference run: straight through.
        let mut reference = Engine::new(&topo, &paths, mk_reqs(), SlotConfig::default());
        for _ in 0..20 {
            reference.step(&mut GreedyHome).unwrap();
        }
        // Checkpointed run: step 7 slots, checkpoint, restore into a fresh
        // engine, inject a mid-run request in both, and keep stepping.
        let mut original = Engine::new(&topo, &paths, mk_reqs(), SlotConfig::default());
        for _ in 0..7 {
            original.step(&mut GreedyHome).unwrap();
        }
        let state = original.checkpoint();
        let mut resumed = Engine::new(&topo, &paths, Vec::new(), SlotConfig::default());
        resumed.restore(state);
        for _ in 7..20 {
            let a = original.step(&mut GreedyHome).unwrap();
            let b = resumed.step(&mut GreedyHome).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(original.finish(), resumed.finish());
        assert_eq!(resumed.finish(), reference.finish());
    }

    #[test]
    fn restore_replays_rng_stream_position() {
        // Demands realize from the RNG; a checkpoint taken after some
        // realizations must resume the stream, not restart it.
        use mec_workload::demand::{DemandDistribution, DemandOutcome};
        let topo = topo();
        let paths = topo.shortest_paths();
        let two_level = DemandDistribution::new(vec![
            DemandOutcome {
                rate: DataRate::mbps(20.0),
                prob: 0.5,
                reward: 50.0,
            },
            DemandOutcome {
                rate: DataRate::mbps(40.0),
                prob: 0.5,
                reward: 100.0,
            },
        ])
        .unwrap();
        let uncertain = |id: usize, arrival: u64| {
            Request::new(
                RequestId(id),
                0.into(),
                arrival,
                5,
                Task::reference_pipeline(),
                two_level.clone(),
                Latency::ms(500.0),
            )
        };
        let reqs: Vec<Request> = (0..4).map(|i| uncertain(i, i as u64)).collect();
        let mut original = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for _ in 0..2 {
            original.step(&mut GreedyHome).unwrap();
        }
        let state = original.checkpoint();
        assert!(state.rng_word_pos > 0, "realizations consumed RNG words");
        let mut resumed = Engine::new(&topo, &paths, Vec::new(), SlotConfig::default());
        resumed.restore(state);
        for _ in 2..30 {
            let a = original.step(&mut GreedyHome).unwrap();
            let b = resumed.step(&mut GreedyHome).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(original.finish(), resumed.finish());
    }

    #[test]
    fn genesis_state_matches_fresh_engine() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let fresh = Engine::new(&topo, &paths, Vec::new(), SlotConfig::default());
        assert_eq!(
            fresh.checkpoint(),
            EngineState::genesis(topo.station_count())
        );
    }

    #[test]
    fn extract_station_moves_only_active_jobs_and_preserves_state() {
        let topo = topo();
        let paths = topo.shortest_paths();
        // Two jobs homed on station 0; run a few slots so both realize.
        let reqs: Vec<Request> = (0..2).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for _ in 0..3 {
            engine.step(&mut GreedyHome).unwrap();
        }
        let before_remaining = engine.jobs()[0].remaining_mb();
        let slice = engine.extract_station(0.into());
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.station, StationId::from(0));
        assert!(
            engine.jobs().iter().all(|j| j.phase() == Phase::Migrated),
            "originals marked migrated"
        );
        assert_eq!(engine.backlog(), 0);
        // The clone keeps realized demand and remaining work.
        assert_eq!(slice.jobs[0].remaining_mb(), before_remaining);
        assert_eq!(slice.jobs[0].phase(), Phase::Running);
        // A second extract finds nothing left.
        assert!(engine.extract_station(0.into()).is_empty());
        // finish() books nothing for migrated jobs.
        let m = engine.finish();
        assert_eq!(m.completed() + m.expired() + m.unserved() + m.aborted(), 0);
    }

    #[test]
    fn absorb_station_continues_jobs_with_new_home() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs: Vec<Request> = (0..2).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let mut source = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for _ in 0..3 {
            source.step(&mut GreedyHome).unwrap();
        }
        let slice = source.extract_station(0.into());

        // The takeover engine already holds one unrelated job, so absorbed
        // ids must start after it.
        let mut take = Engine::new(
            &topo,
            &paths,
            vec![request(0, 0, 10, 40.0, 50.0)],
            SlotConfig::default(),
        );
        for _ in 0..3 {
            take.step(&mut GreedyHome).unwrap();
        }
        let absorbed = take.absorb_station(&slice, 0.into());
        assert_eq!(absorbed, 2);
        let jobs = take.jobs();
        assert_eq!(jobs.len(), 3);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id().index(), i, "ids stay dense");
        }
        let moved = &jobs[1];
        assert_eq!(moved.phase(), Phase::Running);
        assert_eq!(moved.first_station(), Some(0.into()), "rehomed");
        assert_eq!(moved.realized(), slice.jobs[0].realized());
        assert_eq!(moved.remaining_mb(), slice.jobs[0].remaining_mb());
        // The absorbed jobs run to completion at the new home.
        for _ in 0..20 {
            take.step(&mut GreedyHome).unwrap();
        }
        let m = take.finish();
        assert_eq!(m.completed(), 3);
    }

    #[test]
    fn split_station_partitions_checkpoint() {
        let topo = topo();
        let paths = topo.shortest_paths();
        let reqs: Vec<Request> = (0..3).map(|i| request(i, 0, 10, 40.0, 100.0)).collect();
        let mut engine = Engine::new(&topo, &paths, reqs, SlotConfig::default());
        for _ in 0..2 {
            engine.step(&mut GreedyHome).unwrap();
        }
        let mut state = engine.checkpoint();
        let slice = state.split_station(0.into());
        assert_eq!(slice.len(), 3);
        assert!(state.jobs.iter().all(|j| j.phase() == Phase::Migrated));
        // Splitting the live engine at the same point yields the same
        // slice and the same residual state.
        let live = engine.extract_station(0.into());
        assert_eq!(live, slice);
        assert_eq!(engine.checkpoint(), state);
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn restore_rejects_mismatched_topology() {
        let small = TopologyBuilder::new(2).shape(Shape::Line).build();
        let small_paths = small.shortest_paths();
        let mut engine = Engine::new(&small, &small_paths, Vec::new(), SlotConfig::default());
        engine.restore(EngineState::genesis(5));
    }
}
