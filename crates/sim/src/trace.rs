//! Event tracing: an optional per-slot record of everything the engine
//! did, for debugging policies and rendering timelines.

use mec_topology::station::StationId;
use mec_workload::request::RequestId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One engine event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A request entered the system.
    Arrived {
        /// The request.
        request: RequestId,
    },
    /// First service: the demand realized.
    Started {
        /// The request.
        request: RequestId,
        /// Station of first service.
        station: StationId,
        /// Realized data rate in MB/s.
        rate_mbps: f64,
    },
    /// A request finished its stream and collected its reward.
    Completed {
        /// The request.
        request: RequestId,
        /// Reward credited.
        reward: f64,
    },
    /// A request could no longer meet its deadline and was dropped.
    Expired {
        /// The request.
        request: RequestId,
    },
    /// A running stream fell below the continuity floor for too long and
    /// was torn down.
    Aborted {
        /// The request.
        request: RequestId,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Arrived { request } => write!(f, "{request} arrived"),
            Event::Started {
                request,
                station,
                rate_mbps,
            } => write!(f, "{request} started at {station} ({rate_mbps:.1} MB/s)"),
            Event::Completed { request, reward } => {
                write!(f, "{request} completed (+{reward:.1} $)")
            }
            Event::Expired { request } => write!(f, "{request} expired"),
            Event::Aborted { request } => write!(f, "{request} aborted (continuity)"),
        }
    }
}

/// A time-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracedEvent {
    /// Slot in which the event happened.
    pub slot: u64,
    /// What happened.
    pub event: Event,
}

/// An append-only event log with a hard capacity (the engine stops
/// recording once full rather than growing unboundedly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TracedEvent>,
    capacity: usize,
    dropped: usize,
}

impl Trace {
    /// A trace that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops it silently when full, counting the drop).
    pub fn record(&mut self, slot: u64, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(TracedEvent { slot, event });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// Number of events that did not fit.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Events of one slot.
    pub fn slot(&self, slot: u64) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter().filter(move |e| e.slot == slot)
    }

    /// Renders a compact textual timeline (one line per event).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "t{:>5} | {}", e.slot, e.event);
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} further events dropped", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(10);
        t.record(
            0,
            Event::Arrived {
                request: RequestId(0),
            },
        );
        t.record(
            2,
            Event::Started {
                request: RequestId(0),
                station: StationId(1),
                rate_mbps: 40.0,
            },
        );
        t.record(
            9,
            Event::Completed {
                request: RequestId(0),
                reward: 500.0,
            },
        );
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.slot(2).count(), 1);
        let s = t.render();
        assert!(s.contains("r0 arrived"));
        assert!(s.contains("r0 started at bs1"));
        assert!(s.contains("+500.0 $"));
    }

    #[test]
    fn capacity_enforced() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(
                i,
                Event::Expired {
                    request: RequestId(i as usize),
                },
            );
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.render().contains("3 further events dropped"));
    }
}
