//! # mec-sim
//!
//! Discrete time-slot simulation substrate for the ICDCS'21 reproduction.
//!
//! The dynamic reward-maximization problem (§V) schedules **preemptible**
//! AR requests slot by slot (0.05 s slots by default). This crate provides
//! the machinery every online algorithm shares:
//!
//! * [`SlotConfig`]/[`engine::Engine`] — the slot loop: arrivals, demand
//!   realization on first service, work accounting, completion, expiry;
//! * [`lifecycle`] — per-request job state (waiting → running → completed /
//!   expired) with latency bookkeeping per Eq. 2;
//! * [`sharing`] — round-robin fair-share helpers used by `DynamicRR`;
//! * [`metrics`] — total reward, average experienced latency, counters.
//!
//! Scheduling *policy* lives in `mec-core`; the engine calls back into a
//! [`SlotPolicy`] each slot and validates that the returned allocations
//! respect station capacities and deadlines, so a buggy policy fails loudly
//! rather than silently over-committing resources.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lifecycle;
pub mod metrics;
pub mod sharing;
pub mod telemetry;
pub mod trace;

pub use engine::{
    Allocation, Engine, EngineState, SimError, SlotContext, SlotPolicy, SlotReport, StationSlice,
};
// `Continuity` is defined below alongside `SlotConfig`.
pub use lifecycle::{Job, JobView, Phase};
pub use metrics::Metrics;
pub use sharing::fair_share;
pub use telemetry::{ArmTelemetry, DecisionRecord, LearnerEvent, PolicyTelemetry, SolverTelemetry};
pub use trace::{Event, Trace, TracedEvent};

use mec_topology::units::Compute;
use serde::{Deserialize, Serialize};

/// Sustained-service requirement (§I: the "continuous processing of its
/// data stream after its being responded needs to be performed within a
/// specified delay requirement"). A running stream served below
/// `min_fraction` of its realized rate for more than `grace_slots`
/// consecutive slots aborts — its frames are arriving faster than they are
/// augmented, so the session is no longer interactive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Continuity {
    /// Minimum fraction of the realized rate that must be served per slot.
    pub min_fraction: f64,
    /// Consecutive under-served slots tolerated before the stream aborts.
    pub grace_slots: u64,
}

/// Global simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotConfig {
    /// Slot length in milliseconds (paper: 50 ms).
    pub slot_ms: f64,
    /// Number of slots in the monitoring period `T`.
    pub horizon: u64,
    /// Compute per unit data rate `C_unit` (paper: 20 MHz per MB/s).
    pub c_unit: Compute,
    /// Seed for demand realization.
    pub seed: u64,
    /// Optional sustained-service requirement (off by default — the
    /// paper's hard constraint is the response delay of Eq. 2).
    pub continuity: Option<Continuity>,
}

impl Default for SlotConfig {
    fn default() -> Self {
        Self {
            slot_ms: 50.0,
            horizon: 400,
            c_unit: Compute::mhz(20.0),
            seed: 0,
            continuity: None,
        }
    }
}

impl SlotConfig {
    /// Slot length in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.slot_ms / 1000.0
    }
}
