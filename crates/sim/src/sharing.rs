//! Round-robin (equal-share) compute division — the "RR" in `DynamicRR`.

use mec_topology::units::Compute;

/// Equal share of `capacity` among `n` requests; the whole capacity when
/// `n == 1`, and `capacity` itself when `n == 0` has no meaning so it
/// returns `None`.
pub fn fair_share(capacity: Compute, n: usize) -> Option<Compute> {
    if n == 0 {
        None
    } else {
        Some(capacity / n as f64)
    }
}

/// Splits `capacity` across jobs with individual demand caps: each job gets
/// at most its cap, and leftover capacity from capped jobs is re-distributed
/// to the rest (progressive filling / water-filling).
///
/// Returns per-job allocations in input order. The sum never exceeds
/// `capacity`, and no job exceeds its cap.
pub fn water_fill(capacity: Compute, caps: &[Compute]) -> Vec<Compute> {
    let n = caps.len();
    let mut alloc = vec![Compute::ZERO; n];
    if n == 0 || !capacity.is_positive() {
        return alloc;
    }
    let mut remaining = capacity;
    let mut open: Vec<usize> = (0..n).collect();
    // Each pass gives every open job an equal slice of the remaining
    // capacity, capped; capped jobs close. Terminates in <= n passes.
    while !open.is_empty() && remaining.as_mhz() > 1e-12 {
        let share = remaining / open.len() as f64;
        let mut next_open = Vec::with_capacity(open.len());
        let mut gave_any = false;
        for &i in &open {
            let headroom = caps[i] - alloc[i];
            let give = share.min(headroom).clamp_non_negative();
            if give.as_mhz() > 0.0 {
                alloc[i] += give;
                remaining -= give;
                gave_any = true;
            }
            if (caps[i] - alloc[i]).as_mhz() > 1e-12 {
                next_open.push(i);
            }
        }
        if !gave_any {
            break; // every open job is saturated to its cap
        }
        open = next_open;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(v: f64) -> Compute {
        Compute::mhz(v)
    }

    #[test]
    fn fair_share_divides() {
        assert_eq!(fair_share(mhz(3000.0), 3).unwrap().as_mhz(), 1000.0);
        assert_eq!(fair_share(mhz(3000.0), 1).unwrap().as_mhz(), 3000.0);
        assert!(fair_share(mhz(3000.0), 0).is_none());
    }

    #[test]
    fn water_fill_no_caps_binding() {
        let alloc = water_fill(mhz(900.0), &[mhz(1000.0), mhz(1000.0), mhz(1000.0)]);
        for a in &alloc {
            assert!((a.as_mhz() - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    fn water_fill_redistributes() {
        // One small job (cap 100), two big. 1000 total: small gets 100,
        // leftover 900 split 450/450.
        let alloc = water_fill(mhz(1000.0), &[mhz(100.0), mhz(2000.0), mhz(2000.0)]);
        assert!((alloc[0].as_mhz() - 100.0).abs() < 1e-9);
        assert!((alloc[1].as_mhz() - 450.0).abs() < 1e-9);
        assert!((alloc[2].as_mhz() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_total_capped() {
        let caps = [mhz(50.0), mhz(60.0)];
        let alloc = water_fill(mhz(1000.0), &caps);
        // All caps reachable: everyone saturates.
        assert!((alloc[0].as_mhz() - 50.0).abs() < 1e-9);
        assert!((alloc[1].as_mhz() - 60.0).abs() < 1e-9);
        let total: f64 = alloc.iter().map(|a| a.as_mhz()).sum();
        assert!(total <= 1000.0 + 1e-9);
    }

    #[test]
    fn water_fill_empty_and_zero() {
        assert!(water_fill(mhz(100.0), &[]).is_empty());
        let alloc = water_fill(mhz(0.0), &[mhz(10.0)]);
        assert_eq!(alloc[0].as_mhz(), 0.0);
    }
}
