//! Simulation outcome metrics: the quantities every figure plots.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated results of one simulation (or one offline schedule).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    total_reward: f64,
    latencies_ms: Vec<f64>,
    completed: usize,
    expired: usize,
    unserved: usize,
    aborted: usize,
}

impl Metrics {
    /// An empty metrics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a metrics record from checkpointed parts — the inverse of
    /// reading the accessors. For state codecs only.
    pub fn from_parts(
        total_reward: f64,
        latencies_ms: Vec<f64>,
        completed: usize,
        expired: usize,
        unserved: usize,
        aborted: usize,
    ) -> Self {
        Self {
            total_reward,
            latencies_ms,
            completed,
            expired,
            unserved,
            aborted,
        }
    }

    /// Credits reward for a completed request and records its experienced
    /// latency.
    pub fn record_completion(&mut self, reward: f64, latency_ms: f64) {
        self.total_reward += reward;
        self.latencies_ms.push(latency_ms);
        self.completed += 1;
    }

    /// Records a request dropped before first service.
    pub fn record_expired(&mut self) {
        self.expired += 1;
    }

    /// Records a running stream torn down for violating the sustained
    /// service floor (its latency still counts — it was served).
    pub fn record_aborted(&mut self, latency_ms: Option<f64>) {
        if let Some(l) = latency_ms {
            self.latencies_ms.push(l);
        }
        self.aborted += 1;
    }

    /// Records a request still unfinished when the horizon ended (its
    /// latency is counted if it was served at least once).
    pub fn record_unserved(&mut self, latency_ms: Option<f64>) {
        if let Some(l) = latency_ms {
            self.latencies_ms.push(l);
        }
        self.unserved += 1;
    }

    /// Total reward collected (the paper's primary metric).
    pub fn total_reward(&self) -> f64 {
        self.total_reward
    }

    /// Average experienced latency over every served request, in ms
    /// (0 when nothing was served).
    pub fn avg_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
        }
    }

    /// All recorded latencies in ms.
    pub fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }

    /// Completed request count.
    pub const fn completed(&self) -> usize {
        self.completed
    }

    /// Expired (never served) request count.
    pub const fn expired(&self) -> usize {
        self.expired
    }

    /// Requests still in flight at the horizon.
    pub const fn unserved(&self) -> usize {
        self.unserved
    }

    /// Streams torn down by the continuity requirement.
    pub const fn aborted(&self) -> usize {
        self.aborted
    }

    /// Merges another metrics record into this one (for multi-run
    /// aggregation the harness averages separately).
    pub fn merge(&mut self, other: &Metrics) {
        self.total_reward += other.total_reward;
        self.latencies_ms.extend_from_slice(&other.latencies_ms);
        self.completed += other.completed;
        self.expired += other.expired;
        self.unserved += other.unserved;
        self.aborted += other.aborted;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reward {:.1} | avg latency {:.1} ms | {} completed / {} expired / {} aborted / {} unserved",
            self.total_reward,
            self.avg_latency_ms(),
            self.completed,
            self.expired,
            self.aborted,
            self.unserved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = Metrics::new();
        m.record_completion(100.0, 50.0);
        m.record_completion(200.0, 150.0);
        m.record_expired();
        m.record_unserved(Some(80.0));
        m.record_unserved(None);
        assert_eq!(m.total_reward(), 300.0);
        assert!((m.avg_latency_ms() - (50.0 + 150.0 + 80.0) / 3.0).abs() < 1e-9);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.expired(), 1);
        assert_eq!(m.unserved(), 2);
    }

    #[test]
    fn empty_latency_is_zero() {
        assert_eq!(Metrics::new().avg_latency_ms(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Metrics::new();
        a.record_completion(10.0, 5.0);
        let mut b = Metrics::new();
        b.record_completion(20.0, 15.0);
        b.record_expired();
        a.merge(&b);
        assert_eq!(a.total_reward(), 30.0);
        assert_eq!(a.completed(), 2);
        assert_eq!(a.expired(), 1);
        assert_eq!(a.latencies_ms().len(), 2);
    }

    #[test]
    fn display_summarizes() {
        let mut m = Metrics::new();
        m.record_completion(42.0, 10.0);
        let s = format!("{m}");
        assert!(s.contains("reward 42.0"));
        assert!(s.contains("1 completed"));
    }
}
