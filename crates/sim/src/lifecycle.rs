//! Per-request job state across the slot loop.

use mec_topology::station::StationId;
use mec_topology::units::{DataRate, Latency};
use mec_topology::{PathTable, Topology};
use mec_workload::demand::DemandOutcome;
use mec_workload::request::{Request, RequestId};
use serde::{Deserialize, Serialize};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Arrived, not yet served in any slot.
    Waiting,
    /// Served at least once and still has work left.
    Running,
    /// All streamed data processed; reward collected.
    Completed,
    /// Could no longer meet its deadline before first service; dropped.
    Expired,
    /// Started, but was served below the sustained-service floor for too
    /// long (see [`crate::Continuity`]); the stream tore down mid-flight.
    Aborted,
    /// Handed off to another engine mid-flight (a station drain/leave
    /// migration): a clone continues elsewhere and finishes there, so this
    /// copy is terminal and counts toward no outcome bucket.
    Migrated,
}

/// One request's dynamic state inside the engine.
///
/// The demand (rate & reward) realizes the first time the job receives
/// compute — exactly the paper's information model where "the data rate of
/// each request is not known in advance until it is scheduled".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    request: Request,
    phase: Phase,
    realized: Option<DemandOutcome>,
    /// Slot of first service `b_j`.
    first_service: Option<u64>,
    /// Station of first service (used for the latency of Eq. 2).
    first_station: Option<StationId>,
    /// Remaining stream data to process, in MB (set on realization).
    remaining_mb: f64,
    completed_slot: Option<u64>,
    /// Consecutive slots served below the continuity floor.
    stalled_slots: u64,
}

impl Job {
    /// Wraps an arriving request.
    pub fn new(request: Request) -> Self {
        Self {
            request,
            phase: Phase::Waiting,
            realized: None,
            first_service: None,
            first_station: None,
            // Meaningless until realization (the accessor returns NaN
            // before then); zero rather than NaN so `PartialEq` on jobs —
            // and on checkpointed engine state — behaves.
            remaining_mb: 0.0,
            completed_slot: None,
            stalled_slots: 0,
        }
    }

    /// The underlying request.
    pub const fn request(&self) -> &Request {
        &self.request
    }

    /// Request id shortcut.
    pub const fn id(&self) -> RequestId {
        self.request.id()
    }

    /// Current phase.
    pub const fn phase(&self) -> Phase {
        self.phase
    }

    /// The realized demand, if the job has been served at least once.
    pub const fn realized(&self) -> Option<DemandOutcome> {
        self.realized
    }

    /// Slot of first service `b_j`, if any.
    pub const fn first_service(&self) -> Option<u64> {
        self.first_service
    }

    /// Station of first service, if any.
    pub const fn first_station(&self) -> Option<StationId> {
        self.first_station
    }

    /// Remaining work in MB (only meaningful once realized).
    pub fn remaining_mb(&self) -> f64 {
        if self.realized.is_some() {
            self.remaining_mb
        } else {
            f64::NAN
        }
    }

    /// The raw remaining-work field regardless of realization (zero until
    /// realized). For state codecs that must round-trip the job exactly;
    /// everything else wants [`Job::remaining_mb`].
    pub const fn remaining_mb_raw(&self) -> f64 {
        self.remaining_mb
    }

    /// Rebuilds a job from checkpointed parts — the inverse of reading the
    /// accessors field by field. For state codecs only: no invariants are
    /// re-derived, the caller must supply a consistent snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        request: Request,
        phase: Phase,
        realized: Option<DemandOutcome>,
        first_service: Option<u64>,
        first_station: Option<StationId>,
        remaining_mb: f64,
        completed_slot: Option<u64>,
        stalled_slots: u64,
    ) -> Self {
        Self {
            request,
            phase,
            realized,
            first_service,
            first_station,
            remaining_mb,
            completed_slot,
            stalled_slots,
        }
    }

    /// Slot in which the job completed, if it did.
    pub const fn completed_slot(&self) -> Option<u64> {
        self.completed_slot
    }

    /// Waiting time `b_j − a_j` in slots (against `now` if not yet served).
    pub fn waiting_slots(&self, now: u64) -> u64 {
        let b = self.first_service.unwrap_or(now);
        b.saturating_sub(self.request.arrival_slot())
    }

    /// Marks first service: realizes the demand outcome and initializes the
    /// outstanding work (`rate × duration` of stream data).
    ///
    /// # Panics
    ///
    /// Panics if already realized.
    pub(crate) fn realize(
        &mut self,
        outcome: DemandOutcome,
        slot: u64,
        station: StationId,
        slot_seconds: f64,
    ) {
        assert!(self.realized.is_none(), "demand already realized");
        self.realized = Some(outcome);
        self.first_service = Some(slot);
        self.first_station = Some(station);
        self.remaining_mb =
            outcome.rate.as_mbps() * self.request.duration_slots() as f64 * slot_seconds;
        self.phase = Phase::Running;
    }

    /// Applies `processed_mb` of service; returns `true` if this completed
    /// the job.
    pub(crate) fn process(&mut self, processed_mb: f64, slot: u64) -> bool {
        debug_assert!(self.realized.is_some(), "cannot process unrealized job");
        self.remaining_mb -= processed_mb;
        if self.remaining_mb <= 1e-9 {
            self.remaining_mb = 0.0;
            self.phase = Phase::Completed;
            self.completed_slot = Some(slot);
            true
        } else {
            false
        }
    }

    pub(crate) fn expire(&mut self) {
        debug_assert!(matches!(self.phase, Phase::Waiting));
        self.phase = Phase::Expired;
    }

    /// Consecutive under-served slots so far.
    pub const fn stalled_slots(&self) -> u64 {
        self.stalled_slots
    }

    /// Updates the stall counter after a slot: `healthy` means the job was
    /// served at or above the continuity floor.
    pub(crate) fn note_service_level(&mut self, healthy: bool) {
        if healthy {
            self.stalled_slots = 0;
        } else {
            self.stalled_slots += 1;
        }
    }

    /// Tears the stream down (continuity violation).
    pub(crate) fn abort(&mut self) {
        debug_assert!(matches!(self.phase, Phase::Running));
        self.phase = Phase::Aborted;
    }

    /// Marks the job as handed off to another engine: terminal here, a
    /// clone continues (and finishes) elsewhere.
    pub(crate) fn mark_migrated(&mut self) {
        debug_assert!(matches!(self.phase, Phase::Waiting | Phase::Running));
        self.phase = Phase::Migrated;
    }

    /// Rebuilds the job for absorption into another engine: new dense id,
    /// new home station, and — when already served — the first-service
    /// station rewritten to the new home, because the original station id
    /// is local to the *source* engine's topology and would corrupt
    /// latency lookups at the destination. All dynamic state (phase,
    /// realized demand, remaining work, first-service slot, stall counter)
    /// carries over unchanged.
    pub(crate) fn rehome(&self, id: RequestId, home: StationId) -> Self {
        let r = &self.request;
        let request = Request::new(
            id,
            home,
            r.arrival_slot(),
            r.duration_slots(),
            r.tasks().to_vec(),
            r.demand().clone(),
            r.deadline(),
        );
        Self {
            request,
            phase: self.phase,
            realized: self.realized,
            first_service: self.first_service,
            first_station: self.first_station.map(|_| home),
            remaining_mb: self.remaining_mb,
            completed_slot: self.completed_slot,
            stalled_slots: self.stalled_slots,
        }
    }

    /// Experienced latency per Eq. 2 (waiting + round-trip transmission +
    /// pipeline processing at the first serving station); `None` until
    /// served.
    pub fn experienced_latency(
        &self,
        topo: &Topology,
        paths: &PathTable,
        slot_ms: f64,
    ) -> Option<Latency> {
        let station = self.first_station?;
        let waiting = self.waiting_slots(self.first_service?);
        self.request
            .experienced_latency(topo, paths, station, waiting, slot_ms)
    }

    /// The compute this job can still absorb in one slot: enough to process
    /// `remaining_mb` within the slot, expressed as a sustained rate.
    pub fn max_useful_rate(&self, slot_seconds: f64) -> Option<DataRate> {
        self.realized?;
        Some(DataRate::mbps(self.remaining_mb / slot_seconds))
    }
}

/// Immutable per-job view handed to policies each slot.
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    /// The job (request + dynamic state).
    pub job: &'a Job,
    /// Current slot.
    pub now: u64,
}

impl JobView<'_> {
    /// Whether the job can still be (re)scheduled this slot.
    pub fn schedulable(&self) -> bool {
        matches!(self.job.phase(), Phase::Waiting | Phase::Running)
    }

    /// Expected rate before realization, realized rate after — the best
    /// point estimate a policy can act on.
    pub fn rate_estimate(&self) -> DataRate {
        match self.job.realized() {
            Some(o) => o.rate,
            None => self.job.request().demand().expected_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::generator::{Shape, TopologyBuilder};
    use mec_topology::units::Latency;
    use mec_workload::demand::DemandDistribution;
    use mec_workload::task::Task;

    fn job(arrival: u64, duration: u64) -> Job {
        Job::new(Request::new(
            RequestId(0),
            0.into(),
            arrival,
            duration,
            Task::reference_pipeline(),
            DemandDistribution::deterministic(DataRate::mbps(40.0), 500.0),
            Latency::ms(200.0),
        ))
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut j = job(2, 10);
        assert_eq!(j.phase(), Phase::Waiting);
        assert_eq!(j.waiting_slots(5), 3);

        let outcome = DemandOutcome {
            rate: DataRate::mbps(40.0),
            prob: 1.0,
            reward: 500.0,
        };
        j.realize(outcome, 5, 1.into(), 0.05);
        assert_eq!(j.phase(), Phase::Running);
        assert_eq!(j.first_service(), Some(5));
        // 40 MB/s * 10 slots * 0.05 s = 20 MB of stream data.
        assert!((j.remaining_mb() - 20.0).abs() < 1e-9);

        assert!(!j.process(15.0, 6));
        assert!((j.remaining_mb() - 5.0).abs() < 1e-9);
        assert!(j.process(5.0, 7));
        assert_eq!(j.phase(), Phase::Completed);
        assert_eq!(j.completed_slot(), Some(7));
    }

    #[test]
    fn waiting_freezes_after_service() {
        let mut j = job(0, 5);
        let outcome = DemandOutcome {
            rate: DataRate::mbps(30.0),
            prob: 1.0,
            reward: 1.0,
        };
        j.realize(outcome, 4, 0.into(), 0.05);
        // Waiting time is b_j - a_j regardless of `now`.
        assert_eq!(j.waiting_slots(100), 4);
    }

    #[test]
    fn expiry() {
        let mut j = job(0, 5);
        j.expire();
        assert_eq!(j.phase(), Phase::Expired);
    }

    #[test]
    fn latency_uses_first_station() {
        let topo = TopologyBuilder::new(3)
            .shape(Shape::Line)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(2.0, 2.0)
            .build();
        let paths = topo.shortest_paths();
        let mut j = job(0, 5);
        let outcome = DemandOutcome {
            rate: DataRate::mbps(30.0),
            prob: 1.0,
            reward: 1.0,
        };
        assert!(j.experienced_latency(&topo, &paths, 50.0).is_none());
        j.realize(outcome, 2, 1.into(), 0.05);
        // waiting 2 slots (100 ms) + 1 hop round trip (4 ms) + 5.5 ms proc.
        let lat = j.experienced_latency(&topo, &paths, 50.0).unwrap();
        assert!((lat.as_ms() - 109.5).abs() < 1e-9);
    }

    #[test]
    fn view_rate_estimate_switches_on_realization() {
        let mut j = job(0, 5);
        let v = JobView { job: &j, now: 0 };
        assert_eq!(v.rate_estimate().as_mbps(), 40.0); // expected = only outcome
        assert!(v.schedulable());
        let outcome = DemandOutcome {
            rate: DataRate::mbps(40.0),
            prob: 1.0,
            reward: 1.0,
        };
        j.realize(outcome, 0, 0.into(), 0.05);
        let v = JobView { job: &j, now: 0 };
        assert_eq!(v.rate_estimate().as_mbps(), 40.0);
    }

    #[test]
    #[should_panic(expected = "already realized")]
    fn double_realize_rejected() {
        let mut j = job(0, 5);
        let outcome = DemandOutcome {
            rate: DataRate::mbps(30.0),
            prob: 1.0,
            reward: 1.0,
        };
        j.realize(outcome, 0, 0.into(), 0.05);
        j.realize(outcome, 1, 0.into(), 0.05);
    }
}
