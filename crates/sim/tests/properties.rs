//! Property-based tests of the slot engine: a randomized-but-legal fuzz
//! policy must never trip validation, and the accounting invariants must
//! hold for any workload.

use mec_sim::{Allocation, Engine, Phase, SlotConfig, SlotContext, SlotPolicy};
use mec_topology::units::{Compute, DataRate, Latency};
use mec_topology::TopologyBuilder;
use mec_workload::{ArrivalProcess, WorkloadBuilder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Allocates random fractions of each station's capacity to random
/// schedulable jobs — legal by construction (capacity tracked, deadline
/// checked, no duplicates).
struct FuzzPolicy {
    rng: ChaCha8Rng,
}

impl SlotPolicy for FuzzPolicy {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        let mut remaining: Vec<f64> = ctx
            .topo
            .stations()
            .iter()
            .map(|s| s.capacity().as_mhz())
            .collect();
        let mut out = Vec::new();
        for view in &ctx.views {
            if !view.schedulable() || self.rng.gen::<f64>() < 0.3 {
                continue;
            }
            // Random feasible station for a first service; any station
            // afterwards.
            let stations: Vec<_> = ctx
                .topo
                .station_ids()
                .filter(|&s| {
                    view.job.realized().is_some()
                        || view.job.request().meets_deadline_at(
                            ctx.topo,
                            ctx.paths,
                            s,
                            view.job.waiting_slots(ctx.slot),
                            ctx.config.slot_ms,
                        )
                })
                .collect();
            if stations.is_empty() {
                continue;
            }
            let s = stations[self.rng.gen_range(0..stations.len())];
            let grant = remaining[s.index()] * self.rng.gen_range(0.0..0.4);
            if grant > 1.0 {
                remaining[s.index()] -= grant;
                out.push(Allocation {
                    request: view.job.id(),
                    station: s,
                    compute: Compute::mhz(grant),
                });
            }
        }
        out
    }

    fn name(&self) -> &str {
        "fuzz"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A legal-by-construction policy never triggers a SimError, and the
    /// final accounting conserves requests.
    #[test]
    fn fuzz_policy_runs_clean(
        seed in 0u64..2000,
        n in 1usize..40,
        stations in 1usize..8,
        horizon in 1u64..120,
    ) {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(n)
            .duration_range(5, 30)
            .arrivals(ArrivalProcess::UniformOver { horizon: horizon.max(2) / 2 + 1 })
            .build();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig { horizon, seed, ..Default::default() };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let metrics = engine
            .run(&mut FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed) })
            .expect("legal policy must not trip validation");
        prop_assert_eq!(
            metrics.completed() + metrics.expired() + metrics.unserved(),
            n
        );
        // Utilization is a valid fraction everywhere.
        for u in engine.utilization() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        // Reward only comes from completed jobs.
        let expected: f64 = engine
            .jobs()
            .iter()
            .filter(|j| j.phase() == Phase::Completed)
            .map(|j| j.realized().unwrap().reward)
            .sum();
        prop_assert!((metrics.total_reward() - expected).abs() < 1e-6);
    }

    /// Served jobs always meet their deadline (the engine's own
    /// enforcement, validated from the outside).
    #[test]
    fn served_jobs_meet_deadlines(seed in 0u64..500) {
        let topo = TopologyBuilder::new(5).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(25)
            .arrivals(ArrivalProcess::UniformOver { horizon: 40 })
            .build();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig { horizon: 100, seed, ..Default::default() };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        engine
            .run(&mut FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed ^ 7) })
            .expect("legal policy");
        for job in engine.jobs() {
            if job.first_service().is_some() {
                let lat = job.experienced_latency(&topo, &paths, cfg.slot_ms).unwrap();
                prop_assert!(lat.as_ms() <= job.request().deadline().as_ms() + 1e-6);
            }
        }
    }

    /// Work conservation: the data processed per job never exceeds what
    /// its realized stream contained.
    #[test]
    fn processed_work_bounded(seed in 0u64..500) {
        use mec_workload::demand::DemandDistribution;
        use mec_workload::request::{Request, RequestId};
        use mec_workload::task::Task;

        let topo = TopologyBuilder::new(3).seed(seed).build();
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    (i % 3).into(),
                    0,
                    10,
                    Task::reference_pipeline(),
                    DemandDistribution::deterministic(DataRate::mbps(40.0), 100.0),
                    Latency::ms(200.0),
                )
            })
            .collect();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig { horizon: 60, seed, ..Default::default() };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        engine
            .run(&mut FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed ^ 99) })
            .expect("legal policy");
        for job in engine.jobs() {
            if let Some(outcome) = job.realized() {
                let total =
                    outcome.rate.as_mbps() * job.request().duration_slots() as f64 * 0.05;
                if job.phase() == Phase::Running {
                    prop_assert!(job.remaining_mb() > 0.0 && job.remaining_mb() <= total + 1e-9);
                }
            }
        }
    }

    /// Checkpoint/restore round-trips the engine state after an arbitrary
    /// slot prefix, and a restored engine is indistinguishable from the
    /// original under any further schedule: stepping both with identical
    /// policies yields identical checkpoints again.
    #[test]
    fn checkpoint_restore_round_trips_any_prefix(
        seed in 0u64..1000,
        n in 1usize..30,
        stations in 1usize..6,
        prefix in 0u64..60,
        suffix in 1u64..40,
    ) {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(n)
            .duration_range(5, 20)
            .arrivals(ArrivalProcess::UniformOver { horizon: prefix + suffix / 2 + 1 })
            .build();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig { horizon: prefix + suffix, seed, ..Default::default() };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let mut warmup = FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed ^ 1) };
        for _ in 0..prefix {
            engine.step(&mut warmup).expect("legal policy");
        }
        let state = engine.checkpoint();
        // Round trip: a fresh engine restored to the state re-checkpoints
        // to exactly the same state.
        let mut restored = Engine::new(&topo, &paths, Vec::new(), cfg);
        restored.restore(state.clone());
        prop_assert_eq!(restored.checkpoint(), state);
        // Continuation: original and restored diverge nowhere under an
        // identical (fresh) policy stream.
        let mut cont_a = FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed ^ 2) };
        let mut cont_b = FuzzPolicy { rng: ChaCha8Rng::seed_from_u64(seed ^ 2) };
        for _ in 0..suffix {
            engine.step(&mut cont_a).expect("legal policy");
            restored.step(&mut cont_b).expect("legal policy");
        }
        prop_assert_eq!(engine.checkpoint(), restored.checkpoint());
    }
}
