//! Property-based tests of the uncertain-demand model.

use mec_topology::units::DataRate;
use mec_topology::TopologyBuilder;
use mec_workload::demand::{DemandDistribution, DemandOutcome};
use mec_workload::{ArrivalProcess, WorkloadBuilder};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing a valid demand distribution with 1-6 levels.
fn demand() -> impl Strategy<Value = DemandDistribution> {
    prop::collection::vec((1.0f64..100.0, 0.05f64..1.0, 0.0f64..2000.0), 1..6).prop_map(|triples| {
        let total: f64 = triples.iter().map(|t| t.1).sum();
        let outcomes = triples
            .into_iter()
            .map(|(rate, w, reward)| DemandOutcome {
                rate: DataRate::mbps(rate),
                prob: w / total,
                reward,
            })
            .collect();
        DemandDistribution::new(outcomes).expect("normalized by construction")
    })
}

proptest! {
    /// `E[min(ρ, cap)]` is monotone in `cap`, bounded by `E[ρ]`, and equals
    /// it once `cap` clears the support.
    #[test]
    fn truncated_expectation_monotone(d in demand(), caps in prop::collection::vec(0.0f64..150.0, 2)) {
        let (lo, hi) = (caps[0].min(caps[1]), caps[0].max(caps[1]));
        let elo = d.expected_truncated_rate(DataRate::mbps(lo)).as_mbps();
        let ehi = d.expected_truncated_rate(DataRate::mbps(hi)).as_mbps();
        prop_assert!(elo <= ehi + 1e-12);
        prop_assert!(ehi <= d.expected_rate().as_mbps() + 1e-12);
        let above = d.max_rate().as_mbps() + 1.0;
        let full = d.expected_truncated_rate(DataRate::mbps(above)).as_mbps();
        prop_assert!((full - d.expected_rate().as_mbps()).abs() < 1e-9);
    }

    /// `expected_reward_within` is monotone in the available rate and
    /// reaches the full expected reward at the support's top.
    #[test]
    fn reward_within_monotone(d in demand()) {
        let mut prev = -1.0;
        for step in 0..12 {
            let cap = DataRate::mbps(step as f64 * 10.0);
            let r = d.expected_reward_within(cap);
            prop_assert!(r >= prev - 1e-12);
            prev = r;
        }
        prop_assert!((d.expected_reward_within(d.max_rate()) - d.expected_reward()).abs() < 1e-9);
    }

    /// Quantiles are monotone and live on the support.
    #[test]
    fn quantiles_monotone(d in demand(), q1 in 0.01f64..1.0, q2 in 0.01f64..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let rlo = d.rate_quantile(lo);
        let rhi = d.rate_quantile(hi);
        prop_assert!(rlo.as_mbps() <= rhi.as_mbps() + 1e-12);
        prop_assert!(d.outcomes().iter().any(|o| (o.rate.as_mbps() - rlo.as_mbps()).abs() < 1e-12));
    }

    /// Samples always land on the support, and the empirical mean converges
    /// to the expectation.
    #[test]
    fn sampling_on_support(d in demand(), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 4000;
        let mut mean = 0.0;
        for _ in 0..n {
            let o = d.sample(&mut rng);
            prop_assert!(d
                .outcomes()
                .iter()
                .any(|c| (c.rate.as_mbps() - o.rate.as_mbps()).abs() < 1e-12));
            mean += o.rate.as_mbps() / n as f64;
        }
        let expect = d.expected_rate().as_mbps();
        // 4000 samples on a <= 100 MB/s support: generous tolerance.
        prop_assert!((mean - expect).abs() < 5.0, "mean {mean} vs {expect}");
    }

    /// Generated workloads always respect their configured ranges.
    #[test]
    fn workload_ranges(
        seed in 0u64..500,
        n in 0usize..40,
        lo in 5.0f64..30.0,
        width in 1.0f64..30.0,
        levels in 1usize..7,
    ) {
        let topo = TopologyBuilder::new(4).seed(seed).build();
        let reqs = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(n)
            .rate_range(lo, lo + width)
            .levels(levels)
            .build();
        prop_assert_eq!(reqs.len(), n);
        for r in &reqs {
            prop_assert_eq!(r.demand().level_count(), levels);
            prop_assert!(r.demand().min_rate().as_mbps() >= lo - 1e-9);
            prop_assert!(r.demand().max_rate().as_mbps() <= lo + width + 1e-9);
            let mass: f64 = r.demand().outcomes().iter().map(|o| o.prob).sum();
            prop_assert!((mass - 1.0).abs() < 1e-9);
        }
    }

    /// Arrival processes are sorted and within-horizon for all shapes.
    #[test]
    fn arrivals_sorted(seed in 0u64..500, n in 0usize..50, horizon in 1u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for process in [
            ArrivalProcess::AllAtOnce,
            ArrivalProcess::UniformOver { horizon },
            ArrivalProcess::Poisson { rate: 0.7, horizon },
        ] {
            let slots = process.generate(&mut rng, n);
            prop_assert_eq!(slots.len(), n);
            prop_assert!(slots.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(slots.iter().all(|&s| s < horizon.max(1)));
        }
    }
}
