//! Workload generation with the paper's §VI-A defaults.

use crate::arrivals::ArrivalProcess;
use crate::demand::{DemandDistribution, DemandOutcome};
use crate::pricing::PricingModel;
use crate::request::{Request, RequestId};
use crate::task::{Task, TaskKind};
use mec_topology::units::{DataRate, Latency};
use mec_topology::Topology;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builder for random AR workloads.
///
/// Defaults follow §VI-A: 3-5 tasks per request, rates drawn from a finite
/// set spanning [30, 50] MB/s with geometrically decaying probabilities,
/// rewards of 12-15 $ per MB/s, a 200 ms latency requirement, and all
/// requests arriving at once (the offline setting).
///
/// # Example
///
/// ```
/// use mec_topology::TopologyBuilder;
/// use mec_workload::{ArrivalProcess, WorkloadBuilder};
///
/// let topo = TopologyBuilder::new(10).seed(3).build();
/// let requests = WorkloadBuilder::new(&topo)
///     .seed(3)
///     .count(50)
///     .rate_range(30.0, 50.0)
///     .arrivals(ArrivalProcess::UniformOver { horizon: 200 })
///     .build();
/// assert_eq!(requests.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder<'a> {
    topo: &'a Topology,
    seed: u64,
    count: usize,
    rate_range: (f64, f64),
    levels: usize,
    decay: f64,
    tasks_range: (usize, usize),
    deadline: Latency,
    duration_range: (u64, u64),
    arrivals: ArrivalProcess,
    pricing: PricingModel,
}

impl<'a> WorkloadBuilder<'a> {
    /// Starts a builder over `topo` with the paper's defaults.
    pub fn new(topo: &'a Topology) -> Self {
        Self {
            topo,
            seed: 0,
            count: 150,
            rate_range: (30.0, 50.0),
            levels: 5,
            decay: 0.75,
            tasks_range: (3, 5),
            deadline: Latency::ms(200.0),
            duration_range: (20, 60),
            arrivals: ArrivalProcess::AllAtOnce,
            pricing: PricingModel::default(),
        }
    }

    /// Seeds the deterministic PRNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of requests `|R|`.
    #[must_use]
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// The span of the finite rate set `DR` in MB/s (Fig 6 sweeps the max).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi`.
    #[must_use]
    pub fn rate_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi, "rate range must be 0 < lo <= hi");
        self.rate_range = (lo, hi);
        self
    }

    /// Number of discrete rate levels `|DR|`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    #[must_use]
    pub fn levels(mut self, levels: usize) -> Self {
        assert!(levels >= 1, "need at least one rate level");
        self.levels = levels;
        self
    }

    /// Geometric decay of level probabilities (1.0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `decay <= 0`.
    #[must_use]
    pub fn decay(mut self, decay: f64) -> Self {
        assert!(decay > 0.0, "decay must be positive");
        self.decay = decay;
        self
    }

    /// Tasks per request drawn uniformly from `[lo, hi]` (paper: 3-5).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lo <= hi`.
    #[must_use]
    pub fn tasks_range(mut self, lo: usize, hi: usize) -> Self {
        assert!(1 <= lo && lo <= hi, "tasks range must be 1 <= lo <= hi");
        self.tasks_range = (lo, hi);
        self
    }

    /// Latency requirement `D̂_j` applied to every request.
    #[must_use]
    pub fn deadline(mut self, deadline: Latency) -> Self {
        self.deadline = deadline;
        self
    }

    /// Stream durations (in slots) drawn uniformly from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lo <= hi`.
    #[must_use]
    pub fn duration_range(mut self, lo: u64, hi: u64) -> Self {
        assert!(1 <= lo && lo <= hi, "duration range must be 1 <= lo <= hi");
        self.duration_range = (lo, hi);
        self
    }

    /// Arrival process (offline = `AllAtOnce`, online = uniform/Poisson).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Reward pricing model.
    #[must_use]
    pub fn pricing(mut self, pricing: PricingModel) -> Self {
        self.pricing = pricing;
        self
    }

    fn pipeline<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Task> {
        let k = if self.tasks_range.0 == self.tasks_range.1 {
            self.tasks_range.0
        } else {
            rng.gen_range(self.tasks_range.0..=self.tasks_range.1)
        };
        if k == 4 {
            // The trace's reference pipeline.
            Task::reference_pipeline()
        } else {
            (0..k)
                .map(|i| {
                    let kind = match i {
                        0 => TaskKind::Render,
                        1 => TaskKind::Track,
                        2 => TaskKind::Recognize,
                        _ => TaskKind::Generic,
                    };
                    let size = rng.gen_range(64.0..=100.0);
                    let complexity = rng.gen_range(0.8..=2.0);
                    Task::new(kind, size, complexity)
                })
                .collect()
        }
    }

    fn demand<R: Rng + ?Sized>(&self, rng: &mut R) -> DemandDistribution {
        let (lo, hi) = self.rate_range;
        let k = self.levels;
        let rates: Vec<DataRate> = if k == 1 {
            vec![DataRate::mbps((lo + hi) / 2.0)]
        } else {
            let step = (hi - lo) / (k - 1) as f64;
            (0..k)
                .map(|i| DataRate::mbps(lo + step * i as f64))
                .collect()
        };
        let weights: Vec<f64> = (0..k).map(|i| self.decay.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        let prices = self.pricing.request_prices(rng, k);
        let outcomes = rates
            .iter()
            .zip(&weights)
            .zip(&prices)
            .map(|((&rate, &w), &price)| DemandOutcome {
                rate,
                prob: w / total,
                reward: price * rate.as_mbps(),
            })
            .collect();
        DemandDistribution::new(outcomes).expect("generated outcomes are valid")
    }

    /// Generates the workload (deterministic in the seed).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no stations and `count > 0` (requests need
    /// a home station).
    pub fn build(&self) -> Vec<Request> {
        assert!(
            self.topo.station_count() > 0 || self.count == 0,
            "requests need at least one station to attach to"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let arrivals = self.arrivals.generate(&mut rng, self.count);
        (0..self.count)
            .map(|j| {
                let home = rng.gen_range(0..self.topo.station_count());
                let duration = if self.duration_range.0 == self.duration_range.1 {
                    self.duration_range.0
                } else {
                    rng.gen_range(self.duration_range.0..=self.duration_range.1)
                };
                Request::new(
                    RequestId(j),
                    home.into(),
                    arrivals[j],
                    duration,
                    self.pipeline(&mut rng),
                    self.demand(&mut rng),
                    self.deadline,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::TopologyBuilder;

    fn topo() -> Topology {
        TopologyBuilder::new(8).seed(1).build()
    }

    #[test]
    fn deterministic_in_seed() {
        let t = topo();
        let a = WorkloadBuilder::new(&t).seed(5).count(30).build();
        let b = WorkloadBuilder::new(&t).seed(5).count(30).build();
        assert_eq!(a, b);
        let c = WorkloadBuilder::new(&t).seed(6).count(30).build();
        assert_ne!(a, c);
    }

    #[test]
    fn defaults_match_paper() {
        let t = topo();
        let reqs = WorkloadBuilder::new(&t).count(100).build();
        assert_eq!(reqs.len(), 100);
        for r in &reqs {
            assert!((3..=5).contains(&r.task_count()));
            assert_eq!(r.deadline().as_ms(), 200.0);
            assert_eq!(r.arrival_slot(), 0);
            assert!(r.home().index() < t.station_count());
            for o in r.demand().outcomes() {
                assert!((30.0..=50.0).contains(&o.rate.as_mbps()));
                let unit = o.reward / o.rate.as_mbps();
                assert!((12.0..=15.0).contains(&unit));
            }
        }
    }

    #[test]
    fn rate_sweep_respected() {
        let t = topo();
        let reqs = WorkloadBuilder::new(&t)
            .count(40)
            .rate_range(15.0, 35.0)
            .build();
        for r in &reqs {
            assert!((r.demand().min_rate().as_mbps() - 15.0).abs() < 1e-9);
            assert!((r.demand().max_rate().as_mbps() - 35.0).abs() < 1e-9);
        }
    }

    #[test]
    fn online_arrivals_sorted_within_horizon() {
        let t = topo();
        let reqs = WorkloadBuilder::new(&t)
            .count(60)
            .arrivals(ArrivalProcess::UniformOver { horizon: 100 })
            .build();
        assert!(reqs
            .windows(2)
            .all(|w| w[0].arrival_slot() <= w[1].arrival_slot()));
        assert!(reqs.iter().all(|r| r.arrival_slot() < 100));
    }

    #[test]
    fn ids_are_dense() {
        let t = topo();
        let reqs = WorkloadBuilder::new(&t).count(10).build();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id().index(), i);
        }
    }

    #[test]
    fn empty_workload() {
        let t = topo();
        assert!(WorkloadBuilder::new(&t).count(0).build().is_empty());
    }

    #[test]
    fn fixed_task_count_four_uses_reference_pipeline() {
        let t = topo();
        let reqs = WorkloadBuilder::new(&t).count(5).tasks_range(4, 4).build();
        for r in &reqs {
            assert_eq!(r.tasks(), Task::reference_pipeline().as_slice());
        }
    }
}
