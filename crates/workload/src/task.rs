//! AR processing-pipeline tasks (§III-B).
//!
//! Each request's video stream flows through a sequence of tasks
//! `{M_{j,1}, …, M_{j,K_j}}`; the paper's reference pipeline is pose
//! tracking → object recognition → world-model update → rendering, with
//! rendering the most compute-intensive stage.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a task plays in the AR pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Render virtual objects into the frame (paper: 100 Kb output, the
    /// heaviest stage).
    Render,
    /// Track objects across frames (64 Kb).
    Track,
    /// Update the world model (64 Kb).
    UpdateWorld,
    /// Recognize objects (64 Kb).
    Recognize,
    /// A generic stage for synthetic pipelines.
    Generic,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TaskKind::Render => "render",
            TaskKind::Track => "track",
            TaskKind::UpdateWorld => "update-world",
            TaskKind::Recognize => "recognize",
            TaskKind::Generic => "generic",
        };
        f.write_str(name)
    }
}

/// One task `M_{j,k}` of an AR pipeline.
///
/// `complexity` scales a station's per-`ρ_unit` processing delay: the delay
/// of this task at station `bs_i` is
/// `d^pro_{jki} = complexity · bs_i.unit_proc_delay()` (the paper only says
/// the per-station delays vary; task complexity is how we make the heavier
/// stages heavier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    kind: TaskKind,
    output_kb: f64,
    complexity: f64,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `output_kb` or `complexity` is negative.
    pub fn new(kind: TaskKind, output_kb: f64, complexity: f64) -> Self {
        assert!(output_kb >= 0.0, "task output size must be non-negative");
        assert!(complexity >= 0.0, "task complexity must be non-negative");
        Self {
            kind,
            output_kb,
            complexity,
        }
    }

    /// The task's pipeline role.
    pub const fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Output matrix size in kilobits (fed to the successor task).
    pub const fn output_kb(&self) -> f64 {
        self.output_kb
    }

    /// Compute-intensity multiplier on the station's unit processing delay.
    pub const fn complexity(&self) -> f64 {
        self.complexity
    }

    /// The paper's four-stage reference pipeline: render (100 Kb, heavy),
    /// track (64 Kb), update world model (64 Kb), recognize (64 Kb).
    pub fn reference_pipeline() -> Vec<Task> {
        vec![
            Task::new(TaskKind::Render, 100.0, 2.0),
            Task::new(TaskKind::Track, 64.0, 1.0),
            Task::new(TaskKind::UpdateWorld, 64.0, 1.0),
            Task::new(TaskKind::Recognize, 64.0, 1.5),
        ]
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Kb, x{:.1})",
            self.kind, self.output_kb, self.complexity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pipeline_shape() {
        let pipeline = Task::reference_pipeline();
        assert_eq!(pipeline.len(), 4);
        assert_eq!(pipeline[0].kind(), TaskKind::Render);
        assert_eq!(pipeline[0].output_kb(), 100.0);
        // Rendering is the most compute-intensive stage.
        let max = pipeline
            .iter()
            .map(Task::complexity)
            .fold(f64::MIN, f64::max);
        assert_eq!(pipeline[0].complexity(), max);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_complexity_rejected() {
        let _ = Task::new(TaskKind::Generic, 64.0, -1.0);
    }

    #[test]
    fn display() {
        let t = Task::new(TaskKind::Track, 64.0, 1.0);
        assert_eq!(format!("{t}"), "track (64 Kb, x1.0)");
    }
}
