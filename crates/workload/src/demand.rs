//! Uncertain demands: finite probability distributions over
//! `(data rate, reward)` pairs (§III-B and §III-C of the paper).
//!
//! The actual data rate of a request is unknown until it is scheduled; only
//! a distribution over the finite rate set `DR` — with, per outcome, the
//! reward `RD_{j,ρ}` the provider earns — is known from historical traces.

use mec_topology::units::{total_cmp, DataRate};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(π_{j,ρ}, ρ, RD_{j,ρ})` triple: with probability `prob` the request
/// realizes data rate `rate` and earns `reward` dollars if fully served.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandOutcome {
    /// Realized data rate `ρ`.
    pub rate: DataRate,
    /// Probability `π_{j,ρ}` of this outcome.
    pub prob: f64,
    /// Reward `RD_{j,ρ}` (dollars) for serving the request at this rate.
    pub reward: f64,
}

/// Errors validating a [`DemandDistribution`].
#[derive(Debug, Clone, PartialEq)]
pub enum DemandError {
    /// The outcome list was empty.
    Empty,
    /// Probabilities did not sum to 1 (within 1e-6).
    BadProbabilitySum(f64),
    /// An outcome had a negative probability, rate, or reward.
    NegativeValue,
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::Empty => write!(f, "demand distribution has no outcomes"),
            DemandError::BadProbabilitySum(s) => {
                write!(f, "outcome probabilities sum to {s}, expected 1")
            }
            DemandError::NegativeValue => {
                write!(f, "probabilities, rates, and rewards must be non-negative")
            }
        }
    }
}

impl std::error::Error for DemandError {}

/// A request's demand distribution: the finite set `DR` of possible rates,
/// each with its probability and reward.
///
/// Outcomes are stored sorted by increasing rate, which makes the truncated
/// expectations and the "does it fit" reward sums (Eq. 8) simple prefix
/// scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandDistribution {
    outcomes: Vec<DemandOutcome>,
}

impl DemandDistribution {
    /// Builds a distribution from outcomes, sorting them by rate.
    ///
    /// # Errors
    ///
    /// Returns [`DemandError`] if the list is empty, any value is negative,
    /// or the probabilities do not sum to 1 within `1e-6`.
    pub fn new(mut outcomes: Vec<DemandOutcome>) -> Result<Self, DemandError> {
        if outcomes.is_empty() {
            return Err(DemandError::Empty);
        }
        if outcomes
            .iter()
            .any(|o| o.prob < 0.0 || o.reward < 0.0 || o.rate.as_mbps() < 0.0)
        {
            return Err(DemandError::NegativeValue);
        }
        let total: f64 = outcomes.iter().map(|o| o.prob).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(DemandError::BadProbabilitySum(total));
        }
        outcomes.sort_by(|a, b| total_cmp(&a.rate, &b.rate));
        Ok(Self { outcomes })
    }

    /// A degenerate (deterministic) demand: one rate with probability 1.
    pub fn deterministic(rate: DataRate, reward: f64) -> Self {
        Self {
            outcomes: vec![DemandOutcome {
                rate,
                prob: 1.0,
                reward,
            }],
        }
    }

    /// The outcomes, sorted by increasing rate.
    pub fn outcomes(&self) -> &[DemandOutcome] {
        &self.outcomes
    }

    /// Number of distinct rates `|DR|`.
    pub fn level_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Expected data rate `E(ρ_j)`.
    pub fn expected_rate(&self) -> DataRate {
        DataRate::mbps(
            self.outcomes
                .iter()
                .map(|o| o.prob * o.rate.as_mbps())
                .sum(),
        )
    }

    /// Expected reward `Σ_ρ π_{j,ρ} · RD_{j,ρ}` over all outcomes.
    pub fn expected_reward(&self) -> f64 {
        self.outcomes.iter().map(|o| o.prob * o.reward).sum()
    }

    /// Truncated expectation `E[min(ρ_j, cap)]` — the workhorse of
    /// Constraint (10) and Lemma 2.
    pub fn expected_truncated_rate(&self, cap: DataRate) -> DataRate {
        DataRate::mbps(
            self.outcomes
                .iter()
                .map(|o| o.prob * o.rate.as_mbps().min(cap.as_mbps()))
                .sum(),
        )
    }

    /// Expected reward counting only outcomes whose rate fits within
    /// `available` (Eq. 8: `ER_{jil}` with `available` the rate the residual
    /// slots can sustain). Outcomes that do not fit earn nothing.
    pub fn expected_reward_within(&self, available: DataRate) -> f64 {
        self.outcomes
            .iter()
            .take_while(|o| o.rate.as_mbps() <= available.as_mbps() + 1e-12)
            .map(|o| o.prob * o.reward)
            .sum()
    }

    /// The smallest rate `r` with `P(ρ ≤ r) ≥ q` — what a planner that
    /// provisions for the `q`-quantile of demand reserves.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1`.
    pub fn rate_quantile(&self, q: f64) -> DataRate {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let mut acc = 0.0;
        for o in &self.outcomes {
            acc += o.prob;
            if acc + 1e-12 >= q {
                return o.rate;
            }
        }
        self.max_rate()
    }

    /// The largest possible rate (the distribution is non-empty).
    pub fn max_rate(&self) -> DataRate {
        self.outcomes
            .last()
            .expect("distribution is never empty")
            .rate
    }

    /// The smallest possible rate.
    pub fn min_rate(&self) -> DataRate {
        self.outcomes
            .first()
            .expect("distribution is never empty")
            .rate
    }

    /// Samples a realized `(rate, reward)` outcome — the information the
    /// system only learns *after* scheduling the request (§IV-A).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DemandOutcome {
        let mut u: f64 = rng.gen();
        for o in &self.outcomes {
            if u < o.prob {
                return *o;
            }
            u -= o.prob;
        }
        // Floating-point slack: fall back to the last outcome.
        *self.outcomes.last().expect("distribution is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn three_level() -> DemandDistribution {
        DemandDistribution::new(vec![
            DemandOutcome {
                rate: DataRate::mbps(50.0),
                prob: 0.2,
                reward: 600.0,
            },
            DemandOutcome {
                rate: DataRate::mbps(30.0),
                prob: 0.5,
                reward: 400.0,
            },
            DemandOutcome {
                rate: DataRate::mbps(40.0),
                prob: 0.3,
                reward: 500.0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn sorted_by_rate() {
        let d = three_level();
        let rates: Vec<f64> = d.outcomes().iter().map(|o| o.rate.as_mbps()).collect();
        assert_eq!(rates, vec![30.0, 40.0, 50.0]);
        assert_eq!(d.min_rate().as_mbps(), 30.0);
        assert_eq!(d.max_rate().as_mbps(), 50.0);
        assert_eq!(d.level_count(), 3);
    }

    #[test]
    fn expectations() {
        let d = three_level();
        assert!(
            (d.expected_rate().as_mbps() - (0.5 * 30.0 + 0.3 * 40.0 + 0.2 * 50.0)).abs() < 1e-9
        );
        assert!((d.expected_reward() - (0.5 * 400.0 + 0.3 * 500.0 + 0.2 * 600.0)).abs() < 1e-9);
    }

    #[test]
    fn truncated_expectation() {
        let d = three_level();
        // cap 35: min(30,35)=30, min(40,35)=35, min(50,35)=35
        let expect = 0.5 * 30.0 + 0.3 * 35.0 + 0.2 * 35.0;
        assert!((d.expected_truncated_rate(DataRate::mbps(35.0)).as_mbps() - expect).abs() < 1e-9);
        // Huge cap: equals the plain expectation.
        assert!(
            (d.expected_truncated_rate(DataRate::mbps(1e9)).as_mbps()
                - d.expected_rate().as_mbps())
            .abs()
                < 1e-9
        );
        // Zero cap: zero.
        assert_eq!(d.expected_truncated_rate(DataRate::ZERO).as_mbps(), 0.0);
    }

    #[test]
    fn reward_within_prefix() {
        let d = three_level();
        assert_eq!(d.expected_reward_within(DataRate::mbps(29.0)), 0.0);
        assert!((d.expected_reward_within(DataRate::mbps(30.0)) - 200.0).abs() < 1e-9);
        assert!((d.expected_reward_within(DataRate::mbps(45.0)) - 350.0).abs() < 1e-9);
        assert!(
            (d.expected_reward_within(DataRate::mbps(50.0)) - d.expected_reward()).abs() < 1e-9
        );
    }

    /// Maps a sampled rate to its level index, or an error naming the
    /// accepted values — so an out-of-support sample fails the test with a
    /// diagnosis instead of a bare panic.
    fn level_index(rate_mbps: f64) -> Result<usize, String> {
        match rate_mbps as u32 {
            30 => Ok(0),
            40 => Ok(1),
            50 => Ok(2),
            other => Err(format!(
                "unexpected rate {other} MB/s; accepted values: 30, 40, 50"
            )),
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let d = three_level();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let o = d.sample(&mut rng);
            let idx = level_index(o.rate.as_mbps()).expect("sample stays within support");
            counts[idx] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freq[0] - 0.5).abs() < 0.01);
        assert!((freq[1] - 0.3).abs() < 0.01);
        assert!((freq[2] - 0.2).abs() < 0.01);
    }

    #[test]
    fn quantiles() {
        let d = three_level();
        // CDF: 30 → 0.5, 40 → 0.8, 50 → 1.0.
        assert_eq!(d.rate_quantile(0.3).as_mbps(), 30.0);
        assert_eq!(d.rate_quantile(0.5).as_mbps(), 30.0);
        assert_eq!(d.rate_quantile(0.6).as_mbps(), 40.0);
        assert_eq!(d.rate_quantile(0.9).as_mbps(), 50.0);
        assert_eq!(d.rate_quantile(1.0).as_mbps(), 50.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn bad_quantile_rejected() {
        let _ = three_level().rate_quantile(0.0);
    }

    #[test]
    fn deterministic_demand() {
        let d = DemandDistribution::deterministic(DataRate::mbps(42.0), 7.0);
        assert_eq!(d.expected_rate().as_mbps(), 42.0);
        assert_eq!(d.expected_reward(), 7.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng).rate.as_mbps(), 42.0);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            DemandDistribution::new(vec![]).unwrap_err(),
            DemandError::Empty
        );
        let bad_sum = DemandDistribution::new(vec![DemandOutcome {
            rate: DataRate::mbps(1.0),
            prob: 0.5,
            reward: 1.0,
        }]);
        assert!(matches!(bad_sum, Err(DemandError::BadProbabilitySum(_))));
        let neg = DemandDistribution::new(vec![DemandOutcome {
            rate: DataRate::mbps(1.0),
            prob: 1.0,
            reward: -1.0,
        }]);
        assert_eq!(neg.unwrap_err(), DemandError::NegativeValue);
    }
}
