//! # mec-workload
//!
//! AR workload substrate for the ICDCS'21 reproduction: requests with task
//! pipelines, **uncertain demands** (finite probability distributions over
//! `(data rate, reward)` pairs, §III-B/C), arrival processes, and a synthetic
//! Braud-style AR trace generator replacing the paper's private dataset.
//!
//! ## Example
//!
//! ```
//! use mec_topology::TopologyBuilder;
//! use mec_workload::WorkloadBuilder;
//!
//! let topo = TopologyBuilder::new(20).seed(1).build();
//! let requests = WorkloadBuilder::new(&topo).seed(1).count(100).build();
//! assert_eq!(requests.len(), 100);
//! let r = &requests[0];
//! assert!(r.demand().expected_rate().as_mbps() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod codec;
pub mod demand;
pub mod generator;
pub mod pricing;
pub mod request;
pub mod task;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use codec::{parse_requests, write_requests, CodecError};
pub use demand::{DemandDistribution, DemandError, DemandOutcome};
pub use generator::WorkloadBuilder;
pub use pricing::PricingModel;
pub use request::{Request, RequestId};
pub use task::{Task, TaskKind};
pub use trace::{ArTraceConfig, FrameStats};
