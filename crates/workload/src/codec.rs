//! Plain-text workload exchange.
//!
//! Experiments should be reproducible outside this process: the codec
//! writes a request set to a self-describing CSV dialect and reads it back
//! bit-exactly (f64 values round-trip through Rust's shortest-repr
//! formatting). One row per request:
//!
//! ```text
//! id,home,arrival,duration,deadline_ms,tasks,demand
//! 0,bs3,0,40,200,render:100:2|track:64:1,30:0.5:400|40:0.3:500
//! ```
//!
//! `tasks` is `kind:output_kb:complexity` pipe-joined; `demand` is
//! `rate:prob:reward` pipe-joined.

use crate::demand::{DemandDistribution, DemandOutcome};
use crate::request::{Request, RequestId};
use crate::task::{Task, TaskKind};
use mec_topology::units::{DataRate, Latency};
use std::fmt;

/// Errors reading a workload file.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The header line did not match the expected columns.
    BadHeader(String),
    /// A row had the wrong number of columns.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader(h) => write!(f, "unexpected header: {h}"),
            CodecError::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CodecError {}

const HEADER: &str = "id,home,arrival,duration,deadline_ms,tasks,demand";

fn kind_name(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Render => "render",
        TaskKind::Track => "track",
        TaskKind::UpdateWorld => "update-world",
        TaskKind::Recognize => "recognize",
        TaskKind::Generic => "generic",
    }
}

fn kind_of(name: &str) -> Option<TaskKind> {
    Some(match name {
        "render" => TaskKind::Render,
        "track" => TaskKind::Track,
        "update-world" => TaskKind::UpdateWorld,
        "recognize" => TaskKind::Recognize,
        "generic" => TaskKind::Generic,
        _ => return None,
    })
}

/// Serializes a request set.
pub fn write_requests(requests: &[Request]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(HEADER);
    out.push('\n');
    for r in requests {
        let tasks: Vec<String> = r
            .tasks()
            .iter()
            .map(|t| {
                format!(
                    "{}:{}:{}",
                    kind_name(t.kind()),
                    t.output_kb(),
                    t.complexity()
                )
            })
            .collect();
        let demand: Vec<String> = r
            .demand()
            .outcomes()
            .iter()
            .map(|o| format!("{}:{}:{}", o.rate.as_mbps(), o.prob, o.reward))
            .collect();
        let _ = writeln!(
            out,
            "{},bs{},{},{},{},{},{}",
            r.id().index(),
            r.home().index(),
            r.arrival_slot(),
            r.duration_slots(),
            r.deadline().as_ms(),
            tasks.join("|"),
            demand.join("|")
        );
    }
    out
}

fn row_err(line: usize, reason: impl Into<String>) -> CodecError {
    CodecError::BadRow {
        line,
        reason: reason.into(),
    }
}

/// Parses a request set written by [`write_requests`].
///
/// # Errors
///
/// Returns [`CodecError`] on any malformed header, row, task, or demand
/// entry (including demand distributions that fail validation).
pub fn parse_requests(text: &str) -> Result<Vec<Request>, CodecError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => return Err(CodecError::BadHeader(h.to_string())),
        None => return Err(CodecError::BadHeader(String::new())),
    }
    let mut requests = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = raw.split(',').collect();
        if cols.len() != 7 {
            return Err(row_err(
                line,
                format!("expected 7 columns, got {}", cols.len()),
            ));
        }
        let id: usize = cols[0]
            .parse()
            .map_err(|_| row_err(line, "bad request id"))?;
        let home: usize = cols[1]
            .strip_prefix("bs")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| row_err(line, "bad home station"))?;
        let arrival: u64 = cols[2].parse().map_err(|_| row_err(line, "bad arrival"))?;
        let duration: u64 = cols[3].parse().map_err(|_| row_err(line, "bad duration"))?;
        let deadline: f64 = cols[4].parse().map_err(|_| row_err(line, "bad deadline"))?;
        let tasks: Vec<Task> = cols[5]
            .split('|')
            .map(|t| {
                let parts: Vec<&str> = t.split(':').collect();
                if parts.len() != 3 {
                    return Err(row_err(line, format!("bad task entry '{t}'")));
                }
                let kind = kind_of(parts[0])
                    .ok_or_else(|| row_err(line, format!("bad task kind '{}'", parts[0])))?;
                let size: f64 = parts[1]
                    .parse()
                    .map_err(|_| row_err(line, "bad task size"))?;
                let complexity: f64 = parts[2]
                    .parse()
                    .map_err(|_| row_err(line, "bad task complexity"))?;
                Ok(Task::new(kind, size, complexity))
            })
            .collect::<Result<_, _>>()?;
        let outcomes: Vec<DemandOutcome> = cols[6]
            .split('|')
            .map(|o| {
                let parts: Vec<&str> = o.split(':').collect();
                if parts.len() != 3 {
                    return Err(row_err(line, format!("bad demand entry '{o}'")));
                }
                let rate: f64 = parts[0].parse().map_err(|_| row_err(line, "bad rate"))?;
                let prob: f64 = parts[1].parse().map_err(|_| row_err(line, "bad prob"))?;
                let reward: f64 = parts[2].parse().map_err(|_| row_err(line, "bad reward"))?;
                Ok(DemandOutcome {
                    rate: DataRate::mbps(rate),
                    prob,
                    reward,
                })
            })
            .collect::<Result<_, _>>()?;
        let demand = DemandDistribution::new(outcomes)
            .map_err(|e| row_err(line, format!("invalid demand: {e}")))?;
        requests.push(Request::new(
            RequestId(id),
            home.into(),
            arrival,
            duration,
            tasks,
            demand,
            Latency::ms(deadline),
        ));
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadBuilder;
    use mec_topology::TopologyBuilder;

    #[test]
    fn roundtrip_is_exact() {
        let topo = TopologyBuilder::new(6).seed(9).build();
        let requests = WorkloadBuilder::new(&topo).seed(9).count(25).build();
        let text = write_requests(&requests);
        let back = parse_requests(&text).unwrap();
        assert_eq!(requests, back);
    }

    #[test]
    fn empty_set_roundtrips() {
        let text = write_requests(&[]);
        assert_eq!(parse_requests(&text).unwrap(), Vec::new());
    }

    #[test]
    fn header_checked() {
        assert!(matches!(
            parse_requests("nope\n"),
            Err(CodecError::BadHeader(_))
        ));
        assert!(matches!(parse_requests(""), Err(CodecError::BadHeader(_))));
    }

    #[test]
    fn malformed_rows_rejected() {
        let bad_cols = format!("{HEADER}\n1,2,3\n");
        assert!(matches!(
            parse_requests(&bad_cols),
            Err(CodecError::BadRow { line: 2, .. })
        ));
        let bad_demand = format!("{HEADER}\n0,bs0,0,10,200,render:64:1,30:0.5:100\n");
        // Probabilities don't sum to 1.
        let err = parse_requests(&bad_demand).unwrap_err();
        assert!(matches!(err, CodecError::BadRow { line: 2, .. }));
        assert!(err.to_string().contains("invalid demand"));
    }

    #[test]
    fn blank_lines_skipped() {
        let topo = TopologyBuilder::new(3).seed(1).build();
        let requests = WorkloadBuilder::new(&topo).seed(1).count(2).build();
        let mut text = write_requests(&requests);
        text.push('\n');
        assert_eq!(parse_requests(&text).unwrap().len(), 2);
    }
}
