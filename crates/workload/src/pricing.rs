//! Reward pricing (§III-C, §VI-A).
//!
//! The paper pays "[12, 15] dollars per unit of data rate", but stresses that
//! rewards are *not* simply proportional to rates: different outcomes of the
//! same request can carry different unit prices (pricing varies across time
//! periods and providers). [`PricingModel`] therefore draws an independent
//! unit price per `(request, rate)` outcome.

use mec_topology::units::DataRate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws per-outcome rewards from a unit-price range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    unit_price_lo: f64,
    unit_price_hi: f64,
}

impl Default for PricingModel {
    /// The paper's default: 12-15 $ per MB/s of served rate.
    fn default() -> Self {
        Self {
            unit_price_lo: 12.0,
            unit_price_hi: 15.0,
        }
    }
}

impl PricingModel {
    /// A pricing model with unit prices drawn uniformly from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo <= hi, "price range must be 0 <= lo <= hi");
        Self {
            unit_price_lo: lo,
            unit_price_hi: hi,
        }
    }

    /// Lower unit price bound.
    pub const fn lo(&self) -> f64 {
        self.unit_price_lo
    }

    /// Upper unit price bound.
    pub const fn hi(&self) -> f64 {
        self.unit_price_hi
    }

    /// Reward for one outcome: `price · rate` with an independently drawn
    /// unit price. Two outcomes of the same request get different prices,
    /// which is exactly the paper's "demand-independent reward" property.
    pub fn reward_for<R: Rng + ?Sized>(&self, rng: &mut R, rate: DataRate) -> f64 {
        let price = if self.unit_price_lo == self.unit_price_hi {
            self.unit_price_lo
        } else {
            rng.gen_range(self.unit_price_lo..=self.unit_price_hi)
        };
        price * rate.as_mbps()
    }

    /// Draws one request's unit prices: a per-request base price (providers
    /// value different customers/time periods differently — §III-C) plus a
    /// small per-outcome jitter, clamped into the band. This is what gives
    /// reward-aware algorithms something to select on under saturation.
    pub fn request_prices<R: Rng + ?Sized>(&self, rng: &mut R, outcomes: usize) -> Vec<f64> {
        let base = if self.unit_price_lo == self.unit_price_hi {
            self.unit_price_lo
        } else {
            rng.gen_range(self.unit_price_lo..=self.unit_price_hi)
        };
        let half_jitter = (self.unit_price_hi - self.unit_price_lo) * 0.1;
        (0..outcomes)
            .map(|_| {
                let jitter = if half_jitter > 0.0 {
                    rng.gen_range(-half_jitter..=half_jitter)
                } else {
                    0.0
                };
                (base + jitter).clamp(self.unit_price_lo, self.unit_price_hi)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_matches_paper() {
        let p = PricingModel::default();
        assert_eq!(p.lo(), 12.0);
        assert_eq!(p.hi(), 15.0);
    }

    #[test]
    fn rewards_within_band() {
        let p = PricingModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            let r = p.reward_for(&mut rng, DataRate::mbps(40.0));
            assert!((12.0 * 40.0..=15.0 * 40.0).contains(&r));
        }
    }

    #[test]
    fn degenerate_band() {
        let p = PricingModel::new(10.0, 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(p.reward_for(&mut rng, DataRate::mbps(3.0)), 30.0);
    }

    #[test]
    #[should_panic(expected = "0 <= lo <= hi")]
    fn bad_range_rejected() {
        let _ = PricingModel::new(5.0, 4.0);
    }
}
