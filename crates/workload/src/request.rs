//! AR requests `r_j`: identity, home station, arrival time, task pipeline,
//! uncertain demand, and latency requirement (§III).

use crate::demand::DemandDistribution;
use crate::task::Task;
use mec_topology::station::StationId;
use mec_topology::units::Latency;
use mec_topology::{PathTable, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a request within a workload (dense `0..n`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub usize);

impl RequestId {
    /// The underlying dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for RequestId {
    fn from(value: usize) -> Self {
        RequestId(value)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An AR request `r_j`.
///
/// The request arrives at its `home` station at time slot `arrival_slot`
/// (`a_j`), streams video for `duration_slots` slots, must experience at
/// most `deadline` (`D̂_j`) of total latency, and its `(rate, reward)` pair
/// only realizes after scheduling (see [`DemandDistribution`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    id: RequestId,
    home: StationId,
    arrival_slot: u64,
    duration_slots: u64,
    tasks: Vec<Task>,
    demand: DemandDistribution,
    deadline: Latency,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if the task list is empty (every AR pipeline has at least one
    /// stage) or the deadline is negative.
    pub fn new(
        id: RequestId,
        home: StationId,
        arrival_slot: u64,
        duration_slots: u64,
        tasks: Vec<Task>,
        demand: DemandDistribution,
        deadline: Latency,
    ) -> Self {
        assert!(!tasks.is_empty(), "a request needs at least one task");
        assert!(
            deadline.as_ms() >= 0.0,
            "latency requirement must be non-negative"
        );
        Self {
            id,
            home,
            arrival_slot,
            duration_slots,
            tasks,
            demand,
            deadline,
        }
    }

    /// The request's identifier.
    pub const fn id(&self) -> RequestId {
        self.id
    }

    /// The base station the user attaches to.
    pub const fn home(&self) -> StationId {
        self.home
    }

    /// Arrival time slot `a_j`.
    pub const fn arrival_slot(&self) -> u64 {
        self.arrival_slot
    }

    /// How many slots the request streams for once fully served.
    pub const fn duration_slots(&self) -> u64 {
        self.duration_slots
    }

    /// The task pipeline `{M_{j,1}, …, M_{j,K_j}}`.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks `K_j`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The uncertain demand distribution.
    pub const fn demand(&self) -> &DemandDistribution {
        &self.demand
    }

    /// Latency requirement `D̂_j`.
    pub const fn deadline(&self) -> Latency {
        self.deadline
    }

    /// Processing delay `Σ_k d^pro_{jki}` of running the whole pipeline at
    /// station `i`: each task's complexity scales the station's
    /// per-`ρ_unit` processing delay.
    pub fn proc_delay_at(&self, topo: &Topology, station: StationId) -> Latency {
        let unit = topo.station(station).unit_proc_delay();
        self.tasks.iter().map(|t| unit * t.complexity()).sum()
    }

    /// Round-trip transmission delay `2 · Σ_{e ∈ p_{ji}} d^trans_{je}` from
    /// the home station to `station` along the shortest path, or `None` if
    /// unreachable.
    pub fn trans_delay_to(&self, paths: &PathTable, station: StationId) -> Option<Latency> {
        paths.delay(self.home, station).map(|d| d * 2.0)
    }

    /// Experienced latency (Eq. 2) of serving this request at `station`
    /// after waiting `waiting_slots` time slots of `slot_ms` each:
    /// waiting + round-trip transmission + pipeline processing.
    ///
    /// Returns `None` if `station` is unreachable from the home station.
    pub fn experienced_latency(
        &self,
        topo: &Topology,
        paths: &PathTable,
        station: StationId,
        waiting_slots: u64,
        slot_ms: f64,
    ) -> Option<Latency> {
        let trans = self.trans_delay_to(paths, station)?;
        let proc = self.proc_delay_at(topo, station);
        Some(Latency::ms(waiting_slots as f64 * slot_ms) + trans + proc)
    }

    /// Whether serving at `station` with the given waiting time meets the
    /// latency requirement `D_j ≤ D̂_j` (Ineq. 1).
    pub fn meets_deadline_at(
        &self,
        topo: &Topology,
        paths: &PathTable,
        station: StationId,
        waiting_slots: u64,
        slot_ms: f64,
    ) -> bool {
        self.experienced_latency(topo, paths, station, waiting_slots, slot_ms)
            .is_some_and(|d| d.as_ms() <= self.deadline.as_ms() + 1e-9)
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (home {}, arrives t{}, {} tasks, E[rate] {})",
            self.id,
            self.home,
            self.arrival_slot,
            self.tasks.len(),
            self.demand.expected_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::generator::{Shape, TopologyBuilder};
    use mec_topology::units::DataRate;

    fn sample_request(home: usize, deadline_ms: f64) -> Request {
        Request::new(
            RequestId(0),
            home.into(),
            0,
            10,
            Task::reference_pipeline(),
            DemandDistribution::deterministic(DataRate::mbps(40.0), 500.0),
            Latency::ms(deadline_ms),
        )
    }

    fn line_topology() -> Topology {
        TopologyBuilder::new(4)
            .shape(Shape::Line)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(2.0, 2.0)
            .build()
    }

    #[test]
    fn proc_delay_scales_with_complexity() {
        let topo = line_topology();
        let r = sample_request(0, 200.0);
        // Reference pipeline complexities: 2.0 + 1.0 + 1.0 + 1.5 = 5.5,
        // unit delay 1 ms.
        let d = r.proc_delay_at(&topo, 2.into());
        assert!((d.as_ms() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn latency_accumulates_all_terms() {
        let topo = line_topology();
        let paths = topo.shortest_paths();
        let r = sample_request(0, 200.0);
        // Serve at station 2: two hops of 2 ms each, round trip = 8 ms;
        // processing = 5.5 ms; waiting = 2 slots * 50 ms = 100 ms.
        let lat = r
            .experienced_latency(&topo, &paths, 2.into(), 2, 50.0)
            .unwrap();
        assert!((lat.as_ms() - (100.0 + 8.0 + 5.5)).abs() < 1e-9);
    }

    #[test]
    fn deadline_check() {
        let topo = line_topology();
        let paths = topo.shortest_paths();
        let tight = sample_request(0, 10.0);
        // At home station: no transmission, 5.5 ms processing.
        assert!(tight.meets_deadline_at(&topo, &paths, 0.into(), 0, 50.0));
        // One waiting slot (50 ms) blows the 10 ms budget.
        assert!(!tight.meets_deadline_at(&topo, &paths, 0.into(), 1, 50.0));
        // Far station: 3 hops round trip = 12 ms > 10 ms.
        assert!(!tight.meets_deadline_at(&topo, &paths, 3.into(), 0, 50.0));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_pipeline_rejected() {
        let _ = Request::new(
            RequestId(0),
            0.into(),
            0,
            1,
            vec![],
            DemandDistribution::deterministic(DataRate::mbps(1.0), 1.0),
            Latency::ms(200.0),
        );
    }
}
