//! Arrival processes for the dynamic (online) experiments (§V).
//!
//! The offline problems take every request as already waiting (all arrivals
//! at slot 0); the online problem streams them in over the horizon.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How request arrival slots are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every request arrives at slot 0 (the offline setting of §IV).
    AllAtOnce,
    /// Arrival slots drawn uniformly from `[0, horizon)`.
    UniformOver {
        /// Number of time slots in the monitoring period `T`.
        horizon: u64,
    },
    /// Poisson process with `rate` expected arrivals per slot; requests
    /// beyond the horizon wrap into the final slot so the count is exact.
    Poisson {
        /// Expected arrivals per slot `λ`.
        rate: f64,
        /// Number of time slots in the monitoring period `T`.
        horizon: u64,
    },
}

impl ArrivalProcess {
    /// Generates `count` arrival slots, sorted non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if a horizon of 0 or a non-positive Poisson rate is supplied
    /// with `count > 0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        let mut slots = match *self {
            ArrivalProcess::AllAtOnce => vec![0; count],
            ArrivalProcess::UniformOver { horizon } => {
                assert!(horizon > 0 || count == 0, "horizon must be positive");
                (0..count).map(|_| rng.gen_range(0..horizon)).collect()
            }
            ArrivalProcess::Poisson { rate, horizon } => {
                assert!(horizon > 0 || count == 0, "horizon must be positive");
                assert!(rate > 0.0 || count == 0, "poisson rate must be positive");
                // Exponential inter-arrival gaps with mean 1/rate slots.
                let mut t = 0.0f64;
                (0..count)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -u.ln() / rate;
                        (t.floor() as u64).min(horizon - 1)
                    })
                    .collect()
            }
        };
        slots.sort_unstable();
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_at_once_is_zeroes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let slots = ArrivalProcess::AllAtOnce.generate(&mut rng, 5);
        assert_eq!(slots, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn uniform_within_horizon_and_sorted() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let slots = ArrivalProcess::UniformOver { horizon: 100 }.generate(&mut rng, 50);
        assert_eq!(slots.len(), 50);
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        assert!(slots.iter().all(|&s| s < 100));
    }

    #[test]
    fn poisson_mean_gap_close_to_inverse_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let slots = ArrivalProcess::Poisson {
            rate: 0.5,
            horizon: 10_000,
        }
        .generate(&mut rng, 1000);
        // Mean arrival time of the k-th of n should be near k/rate; check the
        // last arrival is near 1000 / 0.5 = 2000 slots.
        let last = *slots.last().unwrap() as f64;
        assert!((1500.0..2500.0).contains(&last), "last = {last}");
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_clamps_to_horizon() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let slots = ArrivalProcess::Poisson {
            rate: 0.001,
            horizon: 10,
        }
        .generate(&mut rng, 100);
        assert!(slots.iter().all(|&s| s < 10));
    }

    #[test]
    fn zero_count_is_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(ArrivalProcess::UniformOver { horizon: 0 }
            .generate(&mut rng, 0)
            .is_empty());
    }
}
