//! Synthetic Braud-style AR trace (§VI-A).
//!
//! The paper drives its experiments from the dataset of Braud et al. [5]
//! (OpenCV tracking + YOLO recognition over JPEG frames), which is not
//! public. We reproduce its *published statistics* instead: 64 KB JPEG
//! frames uploaded at 90-120 fps through a four-task pipeline whose stage
//! outputs are render 100 KB, track 64 KB, update-world 64 KB and recognize
//! 64 KB — which works out to per-request aggregate rates inside the
//! paper's [30, 50] MB/s band (356 KB/frame × 90-120 fps ≈ 32-43 MB/s).
//!
//! Rate *levels* (the finite set `DR`) discretize the fps band; level
//! probabilities decay geometrically so high rates are rare, matching the
//! paper's observation that "the probability of requests with large data
//! rates is usually small".

use crate::demand::{DemandDistribution, DemandOutcome};
use crate::pricing::PricingModel;
use crate::task::Task;
use mec_topology::units::DataRate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Camera/upload statistics of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameStats {
    /// JPEG frame size in KB (paper: 64).
    pub frame_kb: f64,
    /// Minimum upload rate in frames per second (paper: 90).
    pub fps_lo: f64,
    /// Maximum upload rate in frames per second (paper: 120).
    pub fps_hi: f64,
}

impl Default for FrameStats {
    fn default() -> Self {
        Self {
            frame_kb: 64.0,
            fps_lo: 90.0,
            fps_hi: 120.0,
        }
    }
}

impl FrameStats {
    /// Aggregate per-frame payload in KB given a pipeline: the camera frame
    /// plus every stage's output matrix.
    pub fn payload_kb(&self, pipeline: &[Task]) -> f64 {
        self.frame_kb + pipeline.iter().map(Task::output_kb).sum::<f64>()
    }

    /// Aggregate data rate at `fps` for a pipeline, in MB/s.
    pub fn rate_at(&self, fps: f64, pipeline: &[Task]) -> DataRate {
        DataRate::mbps(self.payload_kb(pipeline) * fps / 1000.0)
    }
}

/// Configuration of the synthetic AR trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArTraceConfig {
    /// Camera statistics.
    pub frames: FrameStats,
    /// Number of discrete rate levels `|DR|` (paper's set of possible
    /// rates; default 5).
    pub levels: usize,
    /// Geometric decay of level probabilities (level k gets weight
    /// `decay^k`); 1.0 means uniform. Default 0.75.
    pub decay: f64,
    /// Reward pricing.
    pub pricing: PricingModel,
}

impl Default for ArTraceConfig {
    fn default() -> Self {
        Self {
            frames: FrameStats::default(),
            levels: 5,
            decay: 0.75,
            pricing: PricingModel::default(),
        }
    }
}

impl ArTraceConfig {
    /// The discrete fps levels spanning `[fps_lo, fps_hi]`.
    fn fps_levels(&self) -> Vec<f64> {
        let k = self.levels.max(1);
        if k == 1 {
            return vec![(self.frames.fps_lo + self.frames.fps_hi) / 2.0];
        }
        let step = (self.frames.fps_hi - self.frames.fps_lo) / (k - 1) as f64;
        (0..k)
            .map(|i| self.frames.fps_lo + step * i as f64)
            .collect()
    }

    /// The finite rate set `DR` implied by the fps levels and a pipeline.
    pub fn rate_levels(&self, pipeline: &[Task]) -> Vec<DataRate> {
        self.fps_levels()
            .into_iter()
            .map(|fps| self.frames.rate_at(fps, pipeline))
            .collect()
    }

    /// Draws one request's demand distribution over the rate levels:
    /// geometrically decaying probabilities and an independent price per
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `decay <= 0`.
    pub fn demand_distribution<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pipeline: &[Task],
    ) -> DemandDistribution {
        assert!(self.levels >= 1, "need at least one rate level");
        assert!(self.decay > 0.0, "decay must be positive");
        let rates = self.rate_levels(pipeline);
        let weights: Vec<f64> = (0..rates.len())
            .map(|i| self.decay.powi(i as i32))
            .collect();
        let total: f64 = weights.iter().sum();
        let outcomes = rates
            .iter()
            .zip(&weights)
            .map(|(&rate, &w)| DemandOutcome {
                rate,
                prob: w / total,
                reward: self.pricing.reward_for(rng, rate),
            })
            .collect();
        DemandDistribution::new(outcomes).expect("trace outcomes are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_band_reproduced() {
        // 356 KB payload at 90-120 fps lands inside [30, 50] MB/s.
        let cfg = ArTraceConfig::default();
        let pipeline = Task::reference_pipeline();
        assert!((cfg.frames.payload_kb(&pipeline) - 356.0).abs() < 1e-9);
        let rates = cfg.rate_levels(&pipeline);
        assert_eq!(rates.len(), 5);
        for r in &rates {
            assert!(
                (30.0..=50.0).contains(&r.as_mbps()),
                "rate {} outside the paper band",
                r
            );
        }
        // Monotone increasing levels.
        assert!(rates.windows(2).all(|w| w[0].as_mbps() < w[1].as_mbps()));
    }

    #[test]
    fn probabilities_decay() {
        let cfg = ArTraceConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = cfg.demand_distribution(&mut rng, &Task::reference_pipeline());
        let probs: Vec<f64> = d.outcomes().iter().map(|o| o.prob).collect();
        assert!(probs.windows(2).all(|w| w[0] > w[1]), "{probs:?}");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_decay_one() {
        let cfg = ArTraceConfig {
            decay: 1.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = cfg.demand_distribution(&mut rng, &Task::reference_pipeline());
        for o in d.outcomes() {
            assert!((o.prob - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn single_level_is_midpoint() {
        let cfg = ArTraceConfig {
            levels: 1,
            ..Default::default()
        };
        let rates = cfg.rate_levels(&Task::reference_pipeline());
        assert_eq!(rates.len(), 1);
        // midpoint fps = 105 → 356 * 105 / 1000 = 37.38 MB/s
        assert!((rates[0].as_mbps() - 37.38).abs() < 1e-9);
    }

    #[test]
    fn rewards_track_pricing_band() {
        let cfg = ArTraceConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d = cfg.demand_distribution(&mut rng, &Task::reference_pipeline());
        for o in d.outcomes() {
            let per_unit = o.reward / o.rate.as_mbps();
            assert!((12.0..=15.0).contains(&per_unit), "unit price {per_unit}");
        }
    }
}
