//! `mec-placement` — service placement, caching, and live topology
//! reconfiguration for the MEC serving plane.
//!
//! The paper's model lets every base station execute any AR request the
//! moment it arrives. A production edge does not: a request can only be
//! served where its *service* (models, feature databases, renderers) is
//! already placed, stations have bounded storage, and the fleet itself
//! changes while the run is live. This crate supplies that layer:
//!
//! - [`ServiceCatalog`] — a seed-deterministic catalog of services with
//!   storage footprints, placement costs, and warm/cold install
//!   latencies ([`service`]).
//! - [`BsCache`] — a capacity-bounded per-station store with
//!   deterministic LRU / LFU eviction and seed-stable tie-breaks
//!   ([`cache`]).
//! - [`PlacementState`] — the per-BS state machine: membership
//!   (active / draining / inactive), resident services, and installs in
//!   flight with their latency charged against the slot budget
//!   ([`state`]).
//! - [`OpsLog`] — `BsJoin` / `BsLeave` / `BsDrain` reconfiguration ops
//!   as a compacted, replayable JSONL journal ([`ops`]).
//!
//! Everything is deterministic by construction — `BTreeMap` state, no
//! wall-clock, pinned tie-breaks — because the serving plane's oracle
//! is snapshot byte-identity: same seed + same ops script must produce
//! byte-identical final snapshots, including across crash-and-replay.
//! The wiring into admission, routing, shard handoff, and chaos lives
//! in `mec-serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ops;
pub mod service;
pub mod state;

pub use cache::{BsCache, EvictionPolicy};
pub use ops::{OpsLog, OpsParseError, OpsSalvage, ReconfigOp};
pub use service::{Service, ServiceCatalog, ServiceId};
pub use state::{BsStatus, InstallDone, InstallOutcome, PlacementConfig, PlacementState};
