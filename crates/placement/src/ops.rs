//! Live topology reconfiguration ops and their JSONL journal.
//!
//! A reconfiguration is a sequence of [`ReconfigOp`]s, each pinned to a
//! virtual slot: a station **joins** the serving fleet, **leaves** it
//! immediately, or **drains** — stops taking new admissions at `slot`
//! and hands its in-flight state off `window` slots later. Ops are
//! carried as JSON lines, one op per line:
//!
//! ```text
//! {"op":"join","station":12,"slot":40}
//! {"op":"drain","station":3,"slot":50,"window":10}
//! {"op":"leave","station":7,"slot":90}
//! ```
//!
//! The same format is both the *script* an operator feeds a run
//! (`mec-serve --ops-script`) and the *journal* the run writes back
//! (`--ops-journal-out`): replaying a journal reproduces the run's
//! reconfiguration byte-for-byte. Blank lines and `#` comments are
//! allowed on input for script ergonomics.
//!
//! [`OpsLog::compact`] collapses a long journal to the per-station ops
//! that determine membership: the first op when it is a join (a station
//! whose first op is a join starts *outside* the fleet) and the last op
//! (which fixes the final status). Replaying a compacted log yields the
//! same final [`crate::PlacementState`] membership as the uncompacted
//! one — property-tested in `tests/compaction.rs`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One scripted reconfiguration op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigOp {
    /// The station (re-)enters the fleet at `slot` and starts taking
    /// admissions. A station whose *first* op is a join starts outside
    /// the fleet.
    BsJoin {
        /// Global station id.
        station: usize,
        /// Virtual slot the join takes effect at.
        slot: u64,
    },
    /// The station leaves immediately at `slot`: admissions stop and
    /// in-flight state is handed off in the same slot.
    BsLeave {
        /// Global station id.
        station: usize,
        /// Virtual slot the leave takes effect at.
        slot: u64,
    },
    /// The station stops taking new admissions at `slot` and hands its
    /// in-flight state off at `slot + window`.
    BsDrain {
        /// Global station id.
        station: usize,
        /// Virtual slot draining begins at.
        slot: u64,
        /// Slots between the drain start and the handoff.
        window: u64,
    },
}

impl ReconfigOp {
    /// The station the op targets.
    pub const fn station(&self) -> usize {
        match *self {
            Self::BsJoin { station, .. }
            | Self::BsLeave { station, .. }
            | Self::BsDrain { station, .. } => station,
        }
    }

    /// The slot the op begins at.
    pub const fn slot(&self) -> u64 {
        match *self {
            Self::BsJoin { slot, .. } | Self::BsLeave { slot, .. } | Self::BsDrain { slot, .. } => {
                slot
            }
        }
    }

    /// The op's JSONL spelling (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        match *self {
            Self::BsJoin { station, slot } => {
                format!("{{\"op\":\"join\",\"station\":{station},\"slot\":{slot}}}")
            }
            Self::BsLeave { station, slot } => {
                format!("{{\"op\":\"leave\",\"station\":{station},\"slot\":{slot}}}")
            }
            Self::BsDrain {
                station,
                slot,
                window,
            } => format!(
                "{{\"op\":\"drain\",\"station\":{station},\"slot\":{slot},\"window\":{window}}}"
            ),
        }
    }
}

impl fmt::Display for ReconfigOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::BsJoin { station, slot } => write!(f, "join station {station} at slot {slot}"),
            Self::BsLeave { station, slot } => write!(f, "leave station {station} at slot {slot}"),
            Self::BsDrain {
                station,
                slot,
                window,
            } => write!(
                f,
                "drain station {station} at slot {slot} (window {window})"
            ),
        }
    }
}

/// An ops line that failed to parse; the message names the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsParseError {
    /// What went wrong, including the offending text.
    pub message: String,
}

impl fmt::Display for OpsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ops journal: {}", self.message)
    }
}

impl std::error::Error for OpsParseError {}

fn err(message: impl Into<String>) -> OpsParseError {
    OpsParseError {
        message: message.into(),
    }
}

/// Parses one flat JSON object line of the ops journal. The format is
/// fixed and flat (string `op`, integer fields), so a tiny hand-rolled
/// scanner suffices — no JSON framework in the hot path.
fn parse_line(line: &str) -> Result<ReconfigOp, OpsParseError> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err(format!("expected a JSON object, got {line:?}")))?;
    let (mut op, mut station, mut slot, mut window) = (None, None, None, None);
    for field in inner.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| err(format!("expected \"key\":value, got {field:?} in {line:?}")))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "op" => op = Some(value.trim_matches('"').to_string()),
            "station" | "slot" | "window" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| err(format!("bad number {value:?} in {line:?}")))?;
                match key {
                    "station" => station = Some(n as usize),
                    "slot" => slot = Some(n),
                    _ => window = Some(n),
                }
            }
            other => return Err(err(format!("unknown field {other:?} in {line:?}"))),
        }
    }
    let station = station.ok_or_else(|| err(format!("missing \"station\" in {line:?}")))?;
    let slot = slot.ok_or_else(|| err(format!("missing \"slot\" in {line:?}")))?;
    match op.as_deref() {
        Some("join") => Ok(ReconfigOp::BsJoin { station, slot }),
        Some("leave") => Ok(ReconfigOp::BsLeave { station, slot }),
        Some("drain") => Ok(ReconfigOp::BsDrain {
            station,
            slot,
            window: window.ok_or_else(|| err(format!("drain needs \"window\" in {line:?}")))?,
        }),
        Some(other) => Err(err(format!(
            "unknown op {other:?} (accepted: join, leave, drain)"
        ))),
        None => Err(err(format!("missing \"op\" in {line:?}"))),
    }
}

/// What [`OpsLog::parse_jsonl_lossy`] dropped while salvaging a damaged
/// ops journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpsSalvage {
    /// Non-blank lines dropped (the first malformed one and everything
    /// after it).
    pub dropped_lines: usize,
    /// Why the first dropped line failed to parse; `None` when nothing
    /// was dropped.
    pub detail: Option<String>,
}

impl OpsSalvage {
    /// Whether the journal parsed without loss.
    pub fn is_clean(&self) -> bool {
        self.dropped_lines == 0
    }
}

/// An ordered log of reconfiguration ops.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpsLog {
    /// The ops, in log order.
    pub ops: Vec<ReconfigOp>,
}

impl OpsLog {
    /// Parses a JSONL ops script/journal. Blank lines are skipped and
    /// `#` starts a comment.
    ///
    /// # Errors
    ///
    /// Returns [`OpsParseError`] naming the first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<Self, OpsParseError> {
        let mut ops = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            ops.push(parse_line(line)?);
        }
        Ok(Self { ops })
    }

    /// Parses a JSONL ops journal that may have a torn or corrupted
    /// tail, salvaging the longest valid prefix: parsing stops at the
    /// first malformed line and everything from there on is *dropped*,
    /// never skipped over — matching the arrival-journal salvage rule, a
    /// bad record ends the trustworthy region of the file.
    ///
    /// Returns the salvaged log plus how many non-blank lines were
    /// dropped and why the first one failed (`None` when the journal was
    /// fully intact). Deterministic: the same bytes always salvage to
    /// the same log.
    pub fn parse_jsonl_lossy(text: &str) -> (Self, OpsSalvage) {
        let mut ops = Vec::new();
        let mut lines = text.lines();
        let mut salvage = OpsSalvage::default();
        for line in lines.by_ref() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            match parse_line(line) {
                Ok(op) => ops.push(op),
                Err(e) => {
                    salvage.dropped_lines = 1;
                    salvage.detail = Some(e.message);
                    break;
                }
            }
        }
        if salvage.detail.is_some() {
            salvage.dropped_lines += lines
                .filter(|l| !l.split('#').next().unwrap_or("").trim().is_empty())
                .count();
        }
        (Self { ops }, salvage)
    }

    /// Renders the log as JSONL, one op per line with a trailing
    /// newline, in log order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.to_json());
            out.push('\n');
        }
        out
    }

    /// Whether the log holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops in the log.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Sorts the log by `(slot, log order)` — the order the runtime
    /// applies ops in. The sort is stable, so same-slot ops keep their
    /// relative script order.
    pub fn normalize(&mut self) {
        let mut indexed: Vec<(usize, ReconfigOp)> = self.ops.drain(..).enumerate().collect();
        indexed.sort_by_key(|(i, op)| (op.slot(), *i));
        self.ops = indexed.into_iter().map(|(_, op)| op).collect();
    }

    /// The largest station id any op names (for validation against the
    /// actual topology).
    pub fn max_station(&self) -> Option<usize> {
        self.ops.iter().map(ReconfigOp::station).max()
    }

    /// The stations that start *outside* the fleet: those whose first op
    /// (in normalized order) is a join.
    pub fn initially_inactive(&self) -> Vec<usize> {
        let mut sorted = self.clone();
        sorted.normalize();
        let mut seen = std::collections::BTreeSet::new();
        let mut inactive = std::collections::BTreeSet::new();
        for op in &sorted.ops {
            if seen.insert(op.station()) {
                if let ReconfigOp::BsJoin { station, .. } = op {
                    inactive.insert(*station);
                }
            }
        }
        inactive.into_iter().collect()
    }

    /// Compacts the log to the ops that determine membership: per
    /// station, the first op when it is a join (it decides the station's
    /// *initial* activity) and the last op (it decides the *final*
    /// status). Everything in between is history with no effect on the
    /// final [`crate::PlacementState`] membership.
    ///
    /// The result is normalized. Replaying it yields the same final
    /// membership as replaying the full log.
    pub fn compact(&self) -> Self {
        let mut sorted = self.clone();
        sorted.normalize();
        let mut first: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        let mut last: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for (i, op) in sorted.ops.iter().enumerate() {
            first.entry(op.station()).or_insert(i);
            last.insert(op.station(), i);
        }
        let mut keep = std::collections::BTreeSet::new();
        for (station, &f) in &first {
            if matches!(sorted.ops[f], ReconfigOp::BsJoin { .. }) {
                keep.insert(f);
            }
            keep.insert(last[station]);
        }
        Self {
            ops: keep.into_iter().map(|i| sorted.ops[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(station: usize, slot: u64) -> ReconfigOp {
        ReconfigOp::BsJoin { station, slot }
    }
    fn leave(station: usize, slot: u64) -> ReconfigOp {
        ReconfigOp::BsLeave { station, slot }
    }
    fn drain(station: usize, slot: u64, window: u64) -> ReconfigOp {
        ReconfigOp::BsDrain {
            station,
            slot,
            window,
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let log = OpsLog {
            ops: vec![join(12, 40), drain(3, 50, 10), leave(7, 90)],
        };
        let text = log.to_jsonl();
        assert_eq!(
            text,
            "{\"op\":\"join\",\"station\":12,\"slot\":40}\n\
             {\"op\":\"drain\",\"station\":3,\"slot\":50,\"window\":10}\n\
             {\"op\":\"leave\",\"station\":7,\"slot\":90}\n"
        );
        assert_eq!(OpsLog::parse_jsonl(&text).unwrap(), log);
    }

    #[test]
    fn scripts_allow_comments_and_blanks() {
        let text = "\n# drain station 3 for ten slots\n\
                    {\"op\":\"drain\",\"station\":3,\"slot\":50,\"window\":10}  # inline\n\n";
        let log = OpsLog::parse_jsonl(text).unwrap();
        assert_eq!(log.ops, vec![drain(3, 50, 10)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"op\":\"explode\",\"station\":1,\"slot\":2}",
            "{\"op\":\"join\",\"slot\":2}",
            "{\"op\":\"join\",\"station\":1}",
            "{\"op\":\"drain\",\"station\":1,\"slot\":2}",
            "{\"op\":\"join\",\"station\":-1,\"slot\":2}",
            "{\"station\":1,\"slot\":2}",
            "{\"op\":\"join\",\"station\":1,\"slot\":2,\"bogus\":3}",
        ] {
            let res = OpsLog::parse_jsonl(bad);
            assert!(res.is_err(), "{bad:?} should not parse: {res:?}");
        }
    }

    #[test]
    fn lossy_parse_salvages_prefix_and_counts_drops() {
        let text = "{\"op\":\"join\",\"station\":1,\"slot\":5}\n\
                    # a comment survives\n\
                    {\"op\":\"drain\",\"station\":2,\"slot\":9,\"win\n\
                    {\"op\":\"leave\",\"station\":3,\"slot\":12}\n";
        let (log, salvage) = OpsLog::parse_jsonl_lossy(text);
        assert_eq!(log.ops, vec![join(1, 5)]);
        assert_eq!(
            salvage.dropped_lines, 2,
            "torn line and the valid one after it"
        );
        assert!(!salvage.is_clean());
        assert!(salvage.detail.is_some());

        let (clean, salvage) =
            OpsLog::parse_jsonl_lossy("{\"op\":\"join\",\"station\":1,\"slot\":5}\n");
        assert_eq!(clean.ops, vec![join(1, 5)]);
        assert!(salvage.is_clean());
        assert_eq!(salvage.detail, None);
    }

    #[test]
    fn normalize_sorts_by_slot_stably() {
        let mut log = OpsLog {
            ops: vec![leave(1, 90), join(2, 10), leave(2, 10), join(1, 5)],
        };
        log.normalize();
        assert_eq!(
            log.ops,
            vec![join(1, 5), join(2, 10), leave(2, 10), leave(1, 90)]
        );
    }

    #[test]
    fn initially_inactive_sees_first_join() {
        let log = OpsLog {
            ops: vec![leave(1, 90), join(1, 5), join(4, 20), drain(2, 30, 5)],
        };
        // Station 1's first op (slot 5) is a join; 4's only op is a join;
        // 2's first op is a drain.
        assert_eq!(log.initially_inactive(), vec![1, 4]);
    }

    #[test]
    fn compaction_keeps_first_join_and_last_op() {
        let log = OpsLog {
            ops: vec![
                join(1, 5),
                leave(1, 20),
                join(1, 40),
                drain(2, 10, 5),
                join(2, 50),
                leave(3, 8),
            ],
        };
        let compacted = log.compact();
        assert_eq!(
            compacted.ops,
            vec![join(1, 5), leave(3, 8), join(1, 40), join(2, 50)],
            "first join survives, last op survives, history dropped"
        );
        // Compaction may flip a station's *initial* membership (station 2
        // starts inactive above) but never its replayed *final* state:
        // that only happens when the kept last op is a join.
        let replay = |l: &OpsLog| {
            let mut s = crate::PlacementState::new(4, &crate::PlacementConfig::default());
            s.replay_ops(l, 10_000);
            s.digest()
        };
        assert_eq!(replay(&compacted), replay(&log));
    }

    #[test]
    fn max_station_spans_all_ops() {
        let log = OpsLog {
            ops: vec![join(3, 1), drain(17, 2, 1)],
        };
        assert_eq!(log.max_station(), Some(17));
        assert_eq!(OpsLog::default().max_station(), None);
    }
}
