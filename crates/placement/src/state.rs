//! The per-base-station placement state machine.
//!
//! [`PlacementState`] owns, for every base station: a membership status
//! ([`BsStatus`]), a capacity-bounded service cache ([`BsCache`]), and
//! the set of installs currently in flight. All of it is deterministic:
//! the catalog comes from a seed, eviction tie-breaks are pinned, and
//! pending installs live in a `BTreeMap` so completion order never
//! depends on hash or thread state.
//!
//! The serving runtime drives this machine directly (admission checks,
//! install decisions, drain handoffs). [`PlacementState::replay_ops`]
//! additionally replays a whole [`OpsLog`] against a fresh state with
//! the same membership semantics the runtime uses — that is what the
//! compaction round-trip proptest leans on.

use crate::cache::{BsCache, EvictionPolicy};
use crate::ops::{OpsLog, ReconfigOp};
use crate::service::{ServiceCatalog, ServiceId};
use std::collections::BTreeMap;
use std::fmt;

/// A base station's fleet-membership status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BsStatus {
    /// Serving: admits requests and accepts installs.
    #[default]
    Active,
    /// Winding down: refuses new admissions, hands its in-flight state
    /// off at slot `until`.
    Draining {
        /// The slot the handoff happens at.
        until: u64,
    },
    /// Out of the fleet: no admissions, no residents.
    Inactive,
}

impl fmt::Display for BsStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Active => write!(f, "active"),
            Self::Draining { until } => write!(f, "draining(until={until})"),
            Self::Inactive => write!(f, "inactive"),
        }
    }
}

/// Placement configuration carried inside the serve config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementConfig {
    /// Catalog size; `0` disables placement entirely (every station
    /// serves every request, as in the pre-placement runtime).
    pub services: usize,
    /// Per-station cache capacity in storage units.
    pub cache_capacity: u32,
    /// Eviction policy for full caches.
    pub eviction: EvictionPolicy,
    /// Catalog generation seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            services: 0,
            cache_capacity: 8,
            eviction: EvictionPolicy::Lru,
            seed: 0,
        }
    }
}

/// What [`PlacementState::begin_install`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallOutcome {
    /// An install started; the service becomes resident at `ready_at`.
    Started {
        /// First slot the service is usable at.
        ready_at: u64,
        /// Whether this is a warm (previously hosted) install.
        warm: bool,
        /// Residents evicted to make room, ascending by eviction order.
        evicted: Vec<ServiceId>,
    },
    /// The same install is already in flight; ride along.
    AlreadyInstalling {
        /// First slot the service is usable at.
        ready_at: u64,
    },
    /// The service cannot be placed here (station out of the fleet, or
    /// the cache cannot make room).
    Unplaceable,
}

/// A completed install reported by [`PlacementState::complete_due`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallDone {
    /// Station the service is now resident on.
    pub station: usize,
    /// The installed service.
    pub service: ServiceId,
    /// Whether the install was warm.
    pub warm: bool,
    /// Slots the install took.
    pub latency: u64,
}

/// An install in flight on one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    ready_at: u64,
    started: u64,
}

/// Placement state across the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementState {
    catalog: ServiceCatalog,
    eviction: EvictionPolicy,
    status: Vec<BsStatus>,
    caches: Vec<BsCache>,
    pending: BTreeMap<(usize, ServiceId), Pending>,
}

impl PlacementState {
    /// Fresh state for `stations` base stations, all active, caches
    /// empty. With `cfg.services == 0` the state is *disabled*: no
    /// catalog, [`PlacementState::enabled`] is `false`, and routing
    /// should skip placement checks entirely (membership ops still
    /// apply).
    pub fn new(stations: usize, cfg: &PlacementConfig) -> Self {
        Self {
            catalog: ServiceCatalog::generate(cfg.services, cfg.seed),
            eviction: cfg.eviction,
            status: vec![BsStatus::Active; stations],
            caches: (0..stations)
                .map(|_| BsCache::new(cfg.cache_capacity))
                .collect(),
            pending: BTreeMap::new(),
        }
    }

    /// Whether placement is on (non-empty catalog).
    pub fn enabled(&self) -> bool {
        !self.catalog.is_empty()
    }

    /// Number of base stations tracked.
    pub fn stations(&self) -> usize {
        self.status.len()
    }

    /// The service catalog.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The service a request with dense index `request_index` needs.
    pub fn service_of(&self, request_index: usize) -> ServiceId {
        self.catalog.service_of(request_index)
    }

    /// Station `st`'s membership status.
    pub fn status(&self, st: usize) -> BsStatus {
        self.status[st]
    }

    /// Whether station `st` currently admits new requests.
    pub fn is_active(&self, st: usize) -> bool {
        matches!(self.status[st], BsStatus::Active)
    }

    /// Whether `service` is resident and usable on an active `st`.
    pub fn holds(&self, st: usize, service: ServiceId) -> bool {
        self.is_active(st) && self.caches[st].contains(service)
    }

    /// Records a use of `service` on `st` at `slot` (cache recency /
    /// frequency bookkeeping). Returns `false` if not resident.
    pub fn touch(&mut self, st: usize, service: ServiceId, slot: u64) -> bool {
        self.caches[st].touch(service, slot)
    }

    /// Starts (or joins) an install of `service` on `st` at `slot`.
    pub fn begin_install(&mut self, st: usize, service: ServiceId, slot: u64) -> InstallOutcome {
        if !self.is_active(st) {
            return InstallOutcome::Unplaceable;
        }
        if let Some(p) = self.pending.get(&(st, service)) {
            return InstallOutcome::AlreadyInstalling {
                ready_at: p.ready_at,
            };
        }
        debug_assert!(
            !self.caches[st].contains(service),
            "installing a service that is already resident"
        );
        let spec = *self.catalog.get(service);
        let warm = self.caches[st].is_warm(service);
        let Some(evicted) = self.caches[st].reserve(service, spec.footprint, self.eviction) else {
            return InstallOutcome::Unplaceable;
        };
        let slots = if warm {
            spec.warm_slots
        } else {
            spec.cold_slots
        };
        let ready_at = slot + slots;
        self.pending.insert(
            (st, service),
            Pending {
                ready_at,
                started: slot,
            },
        );
        InstallOutcome::Started {
            ready_at,
            warm,
            evicted,
        }
    }

    /// Completes every pending install with `ready_at <= slot`, in
    /// ascending `(station, service)` order. The services become
    /// resident (and warm) on their stations.
    pub fn complete_due(&mut self, slot: u64) -> Vec<InstallDone> {
        let due: Vec<(usize, ServiceId)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.ready_at <= slot)
            .map(|(k, _)| *k)
            .collect();
        due.into_iter()
            .map(|(st, service)| {
                let p = self.pending.remove(&(st, service)).expect("key just seen");
                let spec = *self.catalog.get(service);
                // The warm set only grows at commit, so probing it just
                // before commit reproduces the install's warmth.
                let warm = self.caches[st].is_warm(service);
                self.caches[st].commit(service, spec.footprint, slot);
                InstallDone {
                    station: st,
                    service,
                    warm,
                    latency: p.ready_at - p.started,
                }
            })
            .collect()
    }

    /// Number of installs in flight fleet-wide.
    pub fn pending_installs(&self) -> usize {
        self.pending.len()
    }

    /// Station `st` (re-)joins the fleet, cancelling any drain. Its warm
    /// set survived being away, so reinstalls are warm.
    pub fn activate(&mut self, st: usize) {
        self.status[st] = BsStatus::Active;
    }

    /// Station `st` stops admitting and will hand off at `until`.
    /// Draining an inactive station is a no-op (returns `false`).
    pub fn begin_drain(&mut self, st: usize, until: u64) -> bool {
        if matches!(self.status[st], BsStatus::Inactive) {
            return false;
        }
        self.status[st] = BsStatus::Draining { until };
        true
    }

    /// Station `st` leaves the fleet now: pending installs are
    /// abandoned (reservations released), residents dropped (warm set
    /// survives), status set to [`BsStatus::Inactive`].
    pub fn deactivate(&mut self, st: usize) {
        let abandoned: Vec<(usize, ServiceId)> = self
            .pending
            .range((st, ServiceId(0))..(st + 1, ServiceId(0)))
            .map(|(k, _)| *k)
            .collect();
        for key in abandoned {
            self.pending.remove(&key);
            self.caches[st].release(self.catalog.get(key.1).footprint);
        }
        self.caches[st].clear_residents();
        self.status[st] = BsStatus::Inactive;
    }

    /// Storage units used on station `st` (residents + reservations).
    pub fn occupancy(&self, st: usize) -> u32 {
        self.caches[st].occupancy()
    }

    /// Per-station cache capacity.
    pub fn capacity(&self, st: usize) -> u32 {
        self.caches[st].capacity()
    }

    /// Stations currently admitting, ascending.
    pub fn active_stations(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&s| self.is_active(s))
            .collect()
    }

    /// Active stations holding `service`, ascending.
    pub fn holders(&self, service: ServiceId) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&s| self.holds(s, service))
            .collect()
    }

    /// Stations whose drain handoff is due at or before `slot`,
    /// ascending.
    pub fn drains_due(&self, slot: u64) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&s| matches!(self.status[s], BsStatus::Draining { until } if until <= slot))
            .collect()
    }

    /// Applies one membership op at its scheduled slot. Joins activate
    /// (cancelling drains), leaves deactivate immediately, drains
    /// schedule a handoff at `slot + window`.
    pub fn apply_op(&mut self, op: &ReconfigOp) {
        match *op {
            ReconfigOp::BsJoin { station, .. } => self.activate(station),
            ReconfigOp::BsLeave { station, .. } => self.deactivate(station),
            ReconfigOp::BsDrain {
                station,
                slot,
                window,
            } => {
                self.begin_drain(station, slot.saturating_add(window));
            }
        }
    }

    /// Replays a whole ops log against this (fresh) state with the
    /// runtime's membership semantics: stations whose first op is a join
    /// start inactive, ops apply in normalized order, drain handoffs due
    /// at a slot land before ops scheduled at that slot, and every drain
    /// due by `horizon` completes at the end.
    pub fn replay_ops(&mut self, log: &OpsLog, horizon: u64) {
        for st in log.initially_inactive() {
            self.status[st] = BsStatus::Inactive;
        }
        let mut sorted = log.clone();
        sorted.normalize();
        for op in &sorted.ops {
            for st in self.drains_due(op.slot()) {
                self.deactivate(st);
            }
            self.apply_op(op);
        }
        for st in self.drains_due(horizon) {
            self.deactivate(st);
        }
    }

    /// Deterministic multi-line rendering of the full machine state —
    /// membership, cache contents, and pending installs. Two states with
    /// equal digests route identically.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for st in 0..self.status.len() {
            out.push_str(&format!(
                "bs{} {} {}\n",
                st,
                self.status[st],
                self.caches[st].digest()
            ));
        }
        for ((st, svc), p) in &self.pending {
            out.push_str(&format!(
                "pending bs{} {} ready_at={} started={}\n",
                st, svc, p.ready_at, p.started
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(services: usize) -> PlacementConfig {
        PlacementConfig {
            services,
            cache_capacity: 4,
            eviction: EvictionPolicy::Lru,
            seed: 11,
        }
    }

    #[test]
    fn disabled_state_routes_nowhere_special() {
        let state = PlacementState::new(3, &cfg(0));
        assert!(!state.enabled());
        assert!(state.is_active(2));
    }

    #[test]
    fn install_lifecycle_warm_and_cold() {
        let mut state = PlacementState::new(2, &cfg(8));
        let svc = state.service_of(3);
        let spec = *state.catalog().get(svc);
        let InstallOutcome::Started {
            ready_at,
            warm,
            evicted,
        } = state.begin_install(0, svc, 10)
        else {
            panic!("expected a started install")
        };
        assert!(!warm, "first-ever install is cold");
        assert!(evicted.is_empty());
        assert_eq!(ready_at, 10 + spec.cold_slots);
        // Joining the same install reports the same completion slot.
        assert_eq!(
            state.begin_install(0, svc, 11),
            InstallOutcome::AlreadyInstalling { ready_at }
        );
        assert!(state.complete_due(ready_at - 1).is_empty());
        let done = state.complete_due(ready_at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency, spec.cold_slots);
        assert!(state.holds(0, svc));
        // Drop and reinstall: warm this time.
        state.deactivate(0);
        assert!(!state.holds(0, svc));
        state.activate(0);
        match state.begin_install(0, svc, 50) {
            InstallOutcome::Started { warm, ready_at, .. } => {
                assert!(warm, "previously hosted service reinstalls warm");
                assert_eq!(ready_at, 50 + spec.warm_slots);
            }
            other => panic!("expected a warm install, got {other:?}"),
        }
    }

    #[test]
    fn drain_refuses_admissions_then_hands_off() {
        let mut state = PlacementState::new(2, &cfg(4));
        assert!(state.begin_drain(1, 30));
        assert!(!state.is_active(1), "draining stations stop admitting");
        assert_eq!(state.drains_due(29), Vec::<usize>::new());
        assert_eq!(state.drains_due(30), vec![1]);
        // A join cancels the drain.
        state.activate(1);
        assert_eq!(state.drains_due(30), Vec::<usize>::new());
        assert!(state.is_active(1));
    }

    #[test]
    fn deactivate_releases_pending_reservations() {
        let mut state = PlacementState::new(1, &cfg(6));
        let svc = state.service_of(0);
        state.begin_install(0, svc, 0);
        assert!(state.occupancy(0) > 0);
        state.deactivate(0);
        assert_eq!(state.occupancy(0), 0);
        assert_eq!(state.pending_installs(), 0);
        assert_eq!(state.complete_due(u64::MAX), vec![]);
    }

    #[test]
    fn replay_matches_runtime_membership_semantics() {
        use crate::ops::ReconfigOp::*;
        let log = OpsLog {
            ops: vec![
                BsJoin {
                    station: 2,
                    slot: 5,
                }, // first op join → starts inactive
                BsDrain {
                    station: 0,
                    slot: 10,
                    window: 5,
                },
                BsJoin {
                    station: 0,
                    slot: 12,
                }, // cancels the drain before its handoff
                BsDrain {
                    station: 1,
                    slot: 20,
                    window: 3,
                }, // completes at 23
            ],
        };
        let mut state = PlacementState::new(3, &cfg(0));
        state.replay_ops(&log, 1_000);
        assert!(state.is_active(0), "join cancelled the drain");
        assert_eq!(state.status(1), BsStatus::Inactive);
        assert!(state.is_active(2));
    }

    #[test]
    fn digest_pins_membership_caches_and_pending() {
        let mut a = PlacementState::new(2, &cfg(4));
        let b = a.clone();
        assert_eq!(a.digest(), b.digest());
        a.begin_install(0, a.service_of(0), 3);
        assert_ne!(a.digest(), b.digest());
    }
}
