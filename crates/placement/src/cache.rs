//! Per-station service cache: capacity-bounded storage with
//! deterministic eviction.
//!
//! Eviction never consults randomness: victims are chosen by
//! `(last_used, id)` under LRU or `(uses, last_used, id)` under LFU,
//! with the smallest service id breaking every tie — so a run's cache
//! contents depend only on the seed and the request stream, never on
//! iteration order or thread timing.
//!
//! Capacity is *reserved* when an install begins and *committed* when it
//! completes, so concurrent pending installs can never overcommit the
//! store. Stations remember every service they ever finished installing
//! (the warm set): reinstalling one of those is a warm install even
//! after eviction — the layers are still on disk.

use crate::service::ServiceId;
use std::collections::{BTreeMap, BTreeSet};

/// How a full cache chooses its eviction victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used resident (ties: smallest id).
    #[default]
    Lru,
    /// Evict the least-frequently-used resident (ties: least recently
    /// used, then smallest id).
    Lfu,
}

impl EvictionPolicy {
    /// Parses the CLI spelling (`lru` | `lfu`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "lru" => Some(Self::Lru),
            "lfu" => Some(Self::Lfu),
            _ => None,
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lru => write!(f, "lru"),
            Self::Lfu => write!(f, "lfu"),
        }
    }
}

/// Usage bookkeeping for one resident service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Residency {
    footprint: u32,
    last_used: u64,
    uses: u64,
}

/// One base station's capacity-bounded service store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BsCache {
    capacity: u32,
    /// Units held by residents plus reservations for pending installs.
    used: u32,
    resident: BTreeMap<ServiceId, Residency>,
    /// Services this station ever finished installing (warm on return).
    warm: BTreeSet<ServiceId>,
}

impl BsCache {
    /// An empty cache holding at most `capacity` storage units.
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Whether `service` is resident (installed and not evicted).
    pub fn contains(&self, service: ServiceId) -> bool {
        self.resident.contains_key(&service)
    }

    /// Whether a (re-)install of `service` would be warm.
    pub fn is_warm(&self, service: ServiceId) -> bool {
        self.warm.contains(&service)
    }

    /// Storage units currently used (residents plus reservations).
    pub const fn occupancy(&self) -> u32 {
        self.used
    }

    /// The cache's capacity in storage units.
    pub const fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Resident service ids, ascending.
    pub fn residents(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.resident.keys().copied()
    }

    /// Records a use of a resident `service` at `slot`. Returns `false`
    /// (and changes nothing) if the service is not resident.
    pub fn touch(&mut self, service: ServiceId, slot: u64) -> bool {
        match self.resident.get_mut(&service) {
            Some(r) => {
                r.last_used = slot;
                r.uses += 1;
                true
            }
            None => false,
        }
    }

    /// The eviction victim under `policy`, if any resident exists.
    fn victim(&self, policy: EvictionPolicy) -> Option<ServiceId> {
        self.resident
            .iter()
            .min_by_key(|(id, r)| match policy {
                // BTreeMap iterates ascending by id, and `min_by_key`
                // keeps the first minimum — the smallest id wins ties.
                EvictionPolicy::Lru => (r.last_used, 0, **id),
                EvictionPolicy::Lfu => (r.uses, r.last_used, **id),
            })
            .map(|(id, _)| *id)
    }

    /// Reserves `footprint` units for an install of `service`, evicting
    /// residents per `policy` until the reservation fits. Returns the
    /// evicted ids (possibly empty), or `None` when `footprint` exceeds
    /// the total capacity (the service can never be placed here).
    pub fn reserve(
        &mut self,
        service: ServiceId,
        footprint: u32,
        policy: EvictionPolicy,
    ) -> Option<Vec<ServiceId>> {
        debug_assert!(!self.contains(service), "reserving a resident service");
        if footprint > self.capacity {
            return None;
        }
        let mut evicted = Vec::new();
        while self.used + footprint > self.capacity {
            // Reservations are not evictable, so a station saturated by
            // pending installs refuses further installs this slot.
            let victim = self.victim(policy)?;
            let r = self.resident.remove(&victim).expect("victim is resident");
            self.used -= r.footprint;
            evicted.push(victim);
        }
        self.used += footprint;
        Some(evicted)
    }

    /// Releases a reservation made by [`BsCache::reserve`] for an
    /// install that was abandoned (e.g. the station drained away).
    pub fn release(&mut self, footprint: u32) {
        self.used = self.used.saturating_sub(footprint);
    }

    /// Completes an install: the reserved `service` becomes resident
    /// (first use at `slot`) and joins the warm set.
    pub fn commit(&mut self, service: ServiceId, footprint: u32, slot: u64) {
        self.resident.insert(
            service,
            Residency {
                footprint,
                last_used: slot,
                uses: 1,
            },
        );
        self.warm.insert(service);
    }

    /// Drops every resident (a station leaving the fleet). The warm set
    /// survives: storage is not wiped, so a returning station reinstalls
    /// warm.
    pub fn clear_residents(&mut self) {
        for r in self.resident.values() {
            self.used -= r.footprint;
        }
        self.resident.clear();
    }

    /// Deterministic one-line rendering (for digests and tests).
    pub fn digest(&self) -> String {
        let residents: Vec<String> = self
            .resident
            .iter()
            .map(|(id, r)| format!("{}:{}u@{}x{}", id.index(), r.footprint, r.last_used, r.uses))
            .collect();
        format!(
            "used={}/{} [{}]",
            self.used,
            self.capacity,
            residents.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ServiceId {
        ServiceId(i)
    }

    #[test]
    fn lru_evicts_oldest_with_id_tiebreak() {
        let mut c = BsCache::new(3);
        for i in 0..3 {
            assert_eq!(c.reserve(id(i), 1, EvictionPolicy::Lru), Some(vec![]));
            c.commit(id(i), 1, 5); // identical last_used: tie on id
        }
        let evicted = c.reserve(id(9), 1, EvictionPolicy::Lru).unwrap();
        assert_eq!(evicted, vec![id(0)], "tie broken by smallest id");
        c.commit(id(9), 1, 6);
        // Touching 1 makes 2 the LRU victim.
        assert!(c.touch(id(1), 7));
        let evicted = c.reserve(id(10), 1, EvictionPolicy::Lru).unwrap();
        assert_eq!(evicted, vec![id(2)]);
    }

    #[test]
    fn lfu_evicts_least_used_then_lru_then_id() {
        let mut c = BsCache::new(3);
        for i in 0..3 {
            c.reserve(id(i), 1, EvictionPolicy::Lfu).unwrap();
            c.commit(id(i), 1, i as u64); // uses=1 each, last_used 0,1,2
        }
        c.touch(id(0), 10); // uses: 2,1,1 → victim is 1 (older than 2? no:
                            // last_used 1 < 2 → 1 evicted)
        let evicted = c.reserve(id(5), 1, EvictionPolicy::Lfu).unwrap();
        assert_eq!(evicted, vec![id(1)]);
        c.commit(id(5), 1, 11);
        // Equal uses and equal last_used tie-break on id: make 2 and 5 tie.
        c.touch(id(2), 20);
        c.touch(id(5), 20);
        c.touch(id(0), 21);
        // uses: svc0=3, svc2=2, svc5=2; last_used: svc2=20, svc5=20.
        let evicted = c.reserve(id(6), 1, EvictionPolicy::Lfu).unwrap();
        assert_eq!(evicted, vec![id(2)], "tie broken by smallest id");
    }

    #[test]
    fn oversized_service_is_unplaceable() {
        let mut c = BsCache::new(4);
        assert_eq!(c.reserve(id(0), 5, EvictionPolicy::Lru), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn reservations_hold_capacity_until_commit_or_release() {
        let mut c = BsCache::new(4);
        c.reserve(id(0), 3, EvictionPolicy::Lru).unwrap();
        assert_eq!(c.occupancy(), 3);
        assert!(!c.contains(id(0)), "reserved, not yet resident");
        // A second pending install cannot evict the reservation.
        assert_eq!(c.reserve(id(1), 2, EvictionPolicy::Lru), None);
        c.release(3);
        assert_eq!(c.reserve(id(1), 2, EvictionPolicy::Lru), Some(vec![]));
        c.commit(id(1), 2, 0);
        assert!(c.contains(id(1)));
    }

    #[test]
    fn warm_set_survives_eviction_and_clear() {
        let mut c = BsCache::new(2);
        c.reserve(id(3), 2, EvictionPolicy::Lru).unwrap();
        c.commit(id(3), 2, 0);
        assert!(c.is_warm(id(3)));
        let evicted = c.reserve(id(4), 2, EvictionPolicy::Lru).unwrap();
        assert_eq!(evicted, vec![id(3)]);
        assert!(c.is_warm(id(3)), "evicted but still warm");
        c.commit(id(4), 2, 1);
        c.clear_residents();
        assert_eq!(c.occupancy(), 0);
        assert!(c.is_warm(id(4)), "leaving does not wipe the warm set");
    }
}
