//! The service catalog: what can be placed on a base station.
//!
//! Every AR request executes against exactly one *service* (the detector
//! models, feature databases, and renderers its pipeline needs). A
//! service occupies storage on the station that hosts it and takes time
//! to install: a **cold** install fetches everything from the backbone,
//! a **warm** install restores a service the station has hosted before
//! (layers still present in local storage).
//!
//! Catalogs are generated deterministically from a seed (splitmix64 per
//! service index), so two runs with the same `(count, seed)` see the
//! same footprints, costs, and install latencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service within a catalog (dense `0..n`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServiceId(pub usize);

impl ServiceId {
    /// The underlying dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ServiceId {
    fn from(value: usize) -> Self {
        ServiceId(value)
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// One placeable service: storage footprint, placement cost, and install
/// latencies in slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// The service's identifier.
    pub id: ServiceId,
    /// Storage units the service occupies in a station cache.
    pub footprint: u32,
    /// Slots a cold (first-ever on this station) install takes.
    pub cold_slots: u64,
    /// Slots a warm (previously hosted, then evicted) install takes.
    pub warm_slots: u64,
    /// Abstract placement cost charged per install (reported, not
    /// optimized — the routing layer decides by latency, not cost).
    pub install_cost: f64,
}

/// splitmix64: the same finalizer the serving runtime uses for shard
/// seeds; one application per draw keeps the catalog seed-stable.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic set of services plus the request → service mapping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: Vec<Service>,
}

impl ServiceCatalog {
    /// Generates `count` services from `seed`. Footprints span 1–4
    /// storage units, cold installs 2–5 slots, warm installs half the
    /// cold latency (at least one slot).
    pub fn generate(count: usize, seed: u64) -> Self {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let services = (0..count)
            .map(|i| {
                let r = splitmix64(&mut state);
                let footprint = 1 + (r % 4) as u32;
                let cold_slots = 2 + ((r >> 8) % 4);
                let warm_slots = (cold_slots / 2).max(1);
                Service {
                    id: ServiceId(i),
                    footprint,
                    cold_slots,
                    warm_slots,
                    install_cost: f64::from(footprint) + cold_slots as f64 * 0.5,
                }
            })
            .collect();
        Self { services }
    }

    /// Number of services in the catalog.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the catalog is empty (placement disabled).
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// The service a request with dense index `request_index` executes
    /// against: a fixed modulo mapping, so the service mix follows the
    /// request id distribution deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn service_of(&self, request_index: usize) -> ServiceId {
        assert!(!self.services.is_empty(), "catalog is empty");
        ServiceId(request_index % self.services.len())
    }

    /// The service with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ServiceId) -> &Service {
        &self.services[id.index()]
    }

    /// All services, ascending by id.
    pub fn services(&self) -> &[Service] {
        &self.services
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ServiceCatalog::generate(64, 7);
        let b = ServiceCatalog::generate(64, 7);
        assert_eq!(a, b);
        let c = ServiceCatalog::generate(64, 8);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn parameters_stay_in_range() {
        let catalog = ServiceCatalog::generate(200, 3);
        assert_eq!(catalog.len(), 200);
        for s in catalog.services() {
            assert!((1..=4).contains(&s.footprint));
            assert!((2..=5).contains(&s.cold_slots));
            assert!(s.warm_slots >= 1 && s.warm_slots < s.cold_slots);
            assert!(s.install_cost > 0.0);
        }
    }

    #[test]
    fn service_mapping_is_modulo() {
        let catalog = ServiceCatalog::generate(10, 0);
        assert_eq!(catalog.service_of(3), ServiceId(3));
        assert_eq!(catalog.service_of(13), ServiceId(3));
        assert_eq!(catalog.service_of(10), ServiceId(0));
    }

    #[test]
    #[should_panic(expected = "catalog is empty")]
    fn empty_catalog_has_no_mapping() {
        let _ = ServiceCatalog::default().service_of(0);
    }
}
