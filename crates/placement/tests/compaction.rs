//! Property test: compacting an ops journal never changes the final
//! placement state a replay produces.
//!
//! `OpsLog::compact` keeps, per station, the first op when it is a join
//! (which fixes the station's initial membership) and the last op (which
//! fixes its final status). For *any* sequence of join/leave/drain ops,
//! replaying the compacted log must land on the same final
//! `PlacementState` digest as replaying the full log.

use mec_placement::{OpsLog, PlacementConfig, PlacementState, ReconfigOp};
use proptest::prelude::*;

const STATIONS: usize = 6;
const HORIZON: u64 = 10_000;

fn arb_op() -> impl Strategy<Value = ReconfigOp> {
    let station = 0..STATIONS;
    let slot = 0u64..200;
    prop_oneof![
        (station.clone(), slot.clone())
            .prop_map(|(station, slot)| ReconfigOp::BsJoin { station, slot }),
        (station.clone(), slot.clone())
            .prop_map(|(station, slot)| ReconfigOp::BsLeave { station, slot }),
        (station, slot, 0u64..40).prop_map(|(station, slot, window)| ReconfigOp::BsDrain {
            station,
            slot,
            window
        }),
    ]
}

fn replayed(log: &OpsLog) -> String {
    let cfg = PlacementConfig {
        services: 16,
        cache_capacity: 4,
        seed: 9,
        ..PlacementConfig::default()
    };
    let mut state = PlacementState::new(STATIONS, &cfg);
    state.replay_ops(log, HORIZON);
    state.digest()
}

proptest! {
    #[test]
    fn compaction_roundtrip_preserves_final_state(ops in prop::collection::vec(arb_op(), 0..64)) {
        let log = OpsLog { ops };
        let compacted = log.compact();
        prop_assert!(compacted.len() <= log.len());
        prop_assert_eq!(replayed(&compacted), replayed(&log));
    }

    #[test]
    fn compaction_is_idempotent(ops in prop::collection::vec(arb_op(), 0..64)) {
        let log = OpsLog { ops };
        let once = log.compact();
        let twice = once.compact();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn jsonl_roundtrip_is_lossless(ops in prop::collection::vec(arb_op(), 0..64)) {
        let log = OpsLog { ops };
        let parsed = OpsLog::parse_jsonl(&log.to_jsonl()).unwrap();
        prop_assert_eq!(parsed, log);
    }
}
