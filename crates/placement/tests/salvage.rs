//! Property tests: salvaging a damaged ops journal is deterministic and
//! never invents ops.
//!
//! `OpsLog::parse_jsonl_lossy` follows the arrival-journal salvage rule:
//! the first malformed line ends the trustworthy region, everything
//! after it is dropped (counted, never skipped over). Under arbitrary
//! truncation and injected garbage the salvaged log must be an exact
//! prefix of the original, and the salvage must compose with the
//! normalize/compact round-trips the clean parser guarantees.

use mec_placement::{OpsLog, ReconfigOp};
use proptest::prelude::*;

const STATIONS: usize = 6;

fn arb_op() -> impl Strategy<Value = ReconfigOp> {
    let station = 0..STATIONS;
    let slot = 0u64..200;
    prop_oneof![
        (station.clone(), slot.clone())
            .prop_map(|(station, slot)| ReconfigOp::BsJoin { station, slot }),
        (station.clone(), slot.clone())
            .prop_map(|(station, slot)| ReconfigOp::BsLeave { station, slot }),
        (station, slot, 0u64..40).prop_map(|(station, slot, window)| ReconfigOp::BsDrain {
            station,
            slot,
            window
        }),
    ]
}

/// Lines guaranteed not to parse as ops: plain garbage, unknown ops and
/// fields, missing fields, and torn (mid-write truncated) records.
fn arb_garbage() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("not json".to_string()),
        Just("{\"op\":\"explode\",\"station\":1,\"slot\":2}".to_string()),
        Just("{\"op\":\"join\",\"slot\":2}".to_string()),
        Just("{\"op\":\"drain\",\"station\":1,\"slot\":2}".to_string()),
        Just("{\"bogus\":1,\"station\":1,\"slot\":2}".to_string()),
        Just("{::,}".to_string()),
        (0u64..1000).prop_map(|n| format!("{{\"op\":\"join\",\"station\":{n}")),
        (0u64..1000).prop_map(|n| format!("{{\"op\":\"leave\",\"station\":{n},\"slot\":x}}")),
    ]
}

proptest! {
    #[test]
    fn truncation_salvages_an_exact_prefix(
        ops in prop::collection::vec(arb_op(), 0..64),
        cut_frac in 0.0f64..=1.0,
    ) {
        let log = OpsLog { ops };
        let text = log.to_jsonl();
        // The journal is pure ASCII, so any byte index is a char boundary.
        let cut = ((cut_frac * text.len() as f64) as usize).min(text.len());
        let torn = &text[..cut];
        let (salvaged, salvage) = OpsLog::parse_jsonl_lossy(torn);
        prop_assert!(salvaged.len() <= log.len());
        prop_assert_eq!(&salvaged.ops[..], &log.ops[..salvaged.len()]);
        // Deterministic: the same bytes salvage identically every time.
        let (again, salvage_again) = OpsLog::parse_jsonl_lossy(torn);
        prop_assert_eq!(&salvaged, &again);
        prop_assert_eq!(&salvage, &salvage_again);
        // A clean salvage means the strict parser agrees byte-for-byte.
        if salvage.is_clean() {
            prop_assert_eq!(OpsLog::parse_jsonl(torn).unwrap(), salvaged);
        }
    }

    #[test]
    fn garbage_ends_the_trustworthy_region(
        ops in prop::collection::vec(arb_op(), 0..32),
        garbage in arb_garbage(),
        pos in 0usize..4096,
    ) {
        // Inject one non-blank garbage line; valid lines after it must be
        // dropped, not skipped over: a bad record ends the file's
        // trustworthy region.
        prop_assert!(OpsLog::parse_jsonl(&garbage).is_err(), "{garbage:?}");
        let log = OpsLog { ops };
        let mut lines: Vec<String> = log.to_jsonl().lines().map(String::from).collect();
        let k = pos % (lines.len() + 1);
        lines.insert(k, garbage);
        let text = lines.join("\n");
        let (salvaged, salvage) = OpsLog::parse_jsonl_lossy(&text);
        prop_assert_eq!(&salvaged.ops[..], &log.ops[..k]);
        prop_assert_eq!(salvage.dropped_lines, 1 + (log.len() - k));
        prop_assert!(!salvage.is_clean());
        prop_assert!(salvage.detail.is_some());
    }

    #[test]
    fn salvaged_logs_compose_with_normalize_and_compact(
        ops in prop::collection::vec(arb_op(), 0..64),
        cut_frac in 0.0f64..=1.0,
    ) {
        let log = OpsLog { ops };
        let text = log.to_jsonl();
        let cut = ((cut_frac * text.len() as f64) as usize).min(text.len());
        let (mut salvaged, _) = OpsLog::parse_jsonl_lossy(&text[..cut]);
        // Whatever survived salvage round-trips losslessly through the
        // strict parser...
        let reparsed = OpsLog::parse_jsonl(&salvaged.to_jsonl()).unwrap();
        prop_assert_eq!(&reparsed, &salvaged);
        // ...and still supports the normalize/compact invariants.
        salvaged.normalize();
        let compacted = salvaged.compact();
        prop_assert!(compacted.len() <= salvaged.len());
        prop_assert_eq!(compacted.compact(), salvaged.compact());
    }
}
