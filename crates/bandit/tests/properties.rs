//! Property-based tests for the bandit substrate.

use mec_bandit::{
    ArmId, BanditPolicy, ConfidenceSchedule, LipschitzDomain, RegretTracker, SuccessiveElimination,
    Ucb1,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Successive elimination never eliminates the true best arm when fed
    /// Bernoulli rewards, for any gap structure and seed we try.
    #[test]
    fn best_arm_survives(
        seed in 0u64..5000,
        best_mean in 0.6f64..0.95,
        gap in 0.25f64..0.5,
        arms in 2usize..8,
        best_idx_raw in 0usize..8,
    ) {
        let best_idx = best_idx_raw % arms;
        let horizon = 4000u64;
        let mut means = vec![(best_mean - gap).max(0.01); arms];
        means[best_idx] = best_mean;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = SuccessiveElimination::new(arms, ConfidenceSchedule::Horizon(horizon));
        for _ in 0..horizon {
            let a = p.select();
            let r = if rng.gen::<f64>() < means[a.index()] { 1.0 } else { 0.0 };
            p.update(a, r);
        }
        prop_assert!(p.is_active(ArmId(best_idx)),
            "true best arm {} eliminated (means {:?})", best_idx, means);
        prop_assert_eq!(p.best().index(), best_idx);
    }

    /// SE's realized regret stays within a constant multiple of the
    /// `sqrt(κ T log T)` bound from Theorem 3 / Slivkins.
    #[test]
    fn regret_within_theoretical_shape(seed in 0u64..200) {
        let means = [0.3, 0.5, 0.8, 0.4];
        let horizon = 5000u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = SuccessiveElimination::new(means.len(), ConfidenceSchedule::Horizon(horizon));
        let mut tracker = RegretTracker::new(0.8);
        for _ in 0..horizon {
            let a = p.select();
            let r = if rng.gen::<f64>() < means[a.index()] { 1.0 } else { 0.0 };
            p.update(a, r);
            tracker.record(means[a.index()]); // pseudo-regret
        }
        let t = horizon as f64;
        let bound = 8.0 * (means.len() as f64 * t * t.ln()).sqrt();
        prop_assert!(tracker.regret() <= bound,
            "regret {} exceeds 8·sqrt(κT log T) = {}", tracker.regret(), bound);
    }

    /// UCB1 also concentrates on the best arm (sanity for the ablation).
    #[test]
    fn ucb_concentrates(seed in 0u64..100) {
        let means = [0.2, 0.85, 0.3];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = Ucb1::new(3);
        for _ in 0..3000 {
            let a = p.select();
            let r = if rng.gen::<f64>() < means[a.index()] { 1.0 } else { 0.0 };
            p.update(a, r);
        }
        prop_assert_eq!(p.best().index(), 1);
        prop_assert!(p.stats(ArmId(1)).pulls() > 2000);
    }

    /// `nearest` is the inverse of `value` on the grid, and every
    /// off-grid point maps to an arm within ε/2.
    #[test]
    fn lipschitz_nearest_inverse(
        lo in -100.0f64..100.0,
        width in 0.1f64..500.0,
        kappa in 2usize..64,
        x in 0.0f64..1.0,
    ) {
        let d = LipschitzDomain::new(lo, lo + width, kappa);
        for i in 0..kappa {
            let arm = ArmId(i);
            prop_assert_eq!(d.nearest(d.value(arm)), arm);
        }
        let point = lo + width * x;
        let snapped = d.value(d.nearest(point));
        prop_assert!((snapped - point).abs() <= d.epsilon() / 2.0 + 1e-9);
    }

    /// The total probability step budget: pull counts across arms always
    /// sum to the total pulls, and at least one arm stays active.
    #[test]
    fn conservation(seed in 0u64..500, arms in 1usize..10, steps in 1u64..2000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = SuccessiveElimination::new(arms, ConfidenceSchedule::Anytime);
        for _ in 0..steps {
            let a = p.select();
            p.update(a, rng.gen::<f64>());
        }
        let pulls: u64 = (0..arms).map(|i| p.stats(ArmId(i)).pulls()).sum();
        prop_assert_eq!(pulls, steps);
        prop_assert!(p.active_count() >= 1);
    }
}
