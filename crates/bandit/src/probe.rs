//! Learner probe: structured arm-lifecycle events for observability.
//!
//! Every policy in this crate implements [`LearnerProbe`]: a detachable
//! recorder of **arm-lifecycle events** — activate, sample, bound-update,
//! eliminate, re-activate — each carrying the arm's pull count, empirical
//! mean, and confidence radius at emission time. The recorder is *off by
//! default* and a disabled recorder is a branch-and-return on the update
//! path, so detached learners behave (and perform) exactly as before:
//! recording never perturbs selection, elimination, or RNG state.
//!
//! The buffer is bounded ([`PROBE_BUFFER_CAP`]): when a consumer stops
//! draining, further events are counted as dropped rather than growing
//! memory without bound, mirroring the trace-ring policy in `mec-obs`.

use crate::policy::ArmId;
use serde::{Deserialize, Serialize};

/// Events a drained probe buffer can hold before dropping (per learner).
pub const PROBE_BUFFER_CAP: usize = 4096;

/// What happened to an arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArmEventKind {
    /// The arm entered (or re-entered at probe attach) the active set.
    Activate,
    /// The arm was pulled and a reward was observed.
    Sample,
    /// The arm's confidence bounds changed (emitted for the pulled arm).
    BoundUpdate,
    /// The arm was removed from the active set.
    Eliminate,
    /// A previously eliminated arm was restored to the active set.
    Reactivate,
}

impl ArmEventKind {
    /// Stable lowercase name, used verbatim in trace events.
    pub const fn as_str(self) -> &'static str {
        match self {
            ArmEventKind::Activate => "activate",
            ArmEventKind::Sample => "sample",
            ArmEventKind::BoundUpdate => "bound_update",
            ArmEventKind::Eliminate => "eliminate",
            ArmEventKind::Reactivate => "reactivate",
        }
    }
}

/// One structured arm-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmLifecycleEvent {
    /// The learner's total pull count when the event fired.
    pub step: u64,
    /// The arm concerned.
    pub arm: ArmId,
    /// What happened.
    pub kind: ArmEventKind,
    /// The arm's pull count after the event.
    pub pulls: u64,
    /// The arm's empirical (or posterior/discounted) mean after the event.
    pub mean: f64,
    /// The arm's confidence radius after the event (infinite while
    /// unpulled; 0 for policies without confidence machinery).
    pub radius: f64,
    /// The observed reward ([`ArmEventKind::Sample`] only).
    pub reward: Option<f64>,
    /// The best active arm's mean after the event ([`ArmEventKind::Sample`]
    /// only) — the online-available per-step oracle for regret accounting.
    pub oracle: Option<f64>,
}

/// Bounded, detachable event buffer embedded in every policy.
///
/// Policies call [`ProbeRecorder::push`] at their lifecycle sites; the
/// calls are no-ops until a consumer enables the recorder. The recorder
/// is deliberately excluded from policy equality and serialization — it
/// is observability state, not learning state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProbeRecorder {
    enabled: bool,
    events: Vec<ArmLifecycleEvent>,
    dropped: u64,
}

impl ProbeRecorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether events are being recorded.
    pub const fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Turning it off keeps already-buffered
    /// events for a final drain.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records one event; drops (and counts) when the buffer is full.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        kind: ArmEventKind,
        step: u64,
        arm: ArmId,
        pulls: u64,
        mean: f64,
        radius: f64,
        reward: Option<f64>,
        oracle: Option<f64>,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= PROBE_BUFFER_CAP {
            self.dropped += 1;
            return;
        }
        self.events.push(ArmLifecycleEvent {
            step,
            arm,
            kind,
            pulls,
            mean,
            radius,
            reward,
            oracle,
        });
    }

    /// Removes and returns everything recorded since the last drain.
    pub fn drain(&mut self) -> Vec<ArmLifecycleEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events lost to the buffer cap since creation.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A learner whose arm lifecycle can be observed.
///
/// Implemented by every policy in this crate. The probe is detached by
/// default; [`LearnerProbe::set_probe`]`(true)` starts recording and
/// immediately emits an [`ArmEventKind::Activate`] event per currently
/// active arm, so a consumer attaching mid-run still sees the full live
/// set before any samples arrive.
pub trait LearnerProbe {
    /// Attaches (`true`) or detaches (`false`) the probe.
    fn set_probe(&mut self, enabled: bool);

    /// Whether the probe is attached.
    fn probe_enabled(&self) -> bool;

    /// Drains the lifecycle events recorded since the last drain.
    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent>;

    /// Events lost to the bounded probe buffer.
    fn probe_dropped(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = ProbeRecorder::new();
        r.push(
            ArmEventKind::Sample,
            1,
            ArmId(0),
            1,
            0.5,
            0.1,
            Some(0.5),
            Some(0.5),
        );
        assert!(r.drain().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut r = ProbeRecorder::new();
        r.set_enabled(true);
        for i in 0..(PROBE_BUFFER_CAP as u64 + 10) {
            r.push(
                ArmEventKind::BoundUpdate,
                i,
                ArmId(0),
                i,
                0.5,
                0.1,
                None,
                None,
            );
        }
        assert_eq!(r.dropped(), 10);
        let drained = r.drain();
        assert_eq!(drained.len(), PROBE_BUFFER_CAP);
        // Drain frees the buffer; new events record again.
        r.push(
            ArmEventKind::Sample,
            0,
            ArmId(1),
            1,
            0.2,
            0.3,
            Some(0.2),
            Some(0.2),
        );
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn event_kinds_have_stable_names() {
        assert_eq!(ArmEventKind::Activate.as_str(), "activate");
        assert_eq!(ArmEventKind::Sample.as_str(), "sample");
        assert_eq!(ArmEventKind::BoundUpdate.as_str(), "bound_update");
        assert_eq!(ArmEventKind::Eliminate.as_str(), "eliminate");
        assert_eq!(ArmEventKind::Reactivate.as_str(), "reactivate");
    }
}
