//! ε-greedy — the simplest exploration baseline, used in ablations.

use crate::policy::{ArmId, ArmView, BanditPolicy};
use crate::probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
use crate::stats::{ArmStats, ConfidenceSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ε-greedy: with probability `epsilon` explore a uniformly random arm,
/// otherwise exploit the best empirical mean.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    stats: Vec<ArmStats>,
    epsilon: f64,
    rng: StdRng,
    total: u64,
    probe: ProbeRecorder,
}

impl EpsilonGreedy {
    /// Creates an ε-greedy policy.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0` or `epsilon` is outside `[0, 1]`.
    pub fn new(arms: usize, epsilon: f64, seed: u64) -> Self {
        assert!(arms >= 1, "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self {
            stats: vec![ArmStats::new(); arms],
            epsilon,
            rng: StdRng::seed_from_u64(seed),
            total: 0,
            probe: ProbeRecorder::new(),
        }
    }

    /// The exploration probability.
    pub const fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The statistics of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn stats(&self, arm: ArmId) -> &ArmStats {
        &self.stats[arm.index()]
    }

    /// A telemetry view of every arm. ε-greedy has no confidence
    /// machinery of its own; the anytime-schedule bounds are reported
    /// for comparability with the UCB-family learners. No arm is ever
    /// eliminated.
    pub fn arm_views(&self) -> Vec<ArmView> {
        self.stats
            .iter()
            .enumerate()
            .map(|(i, s)| ArmView {
                arm: ArmId(i),
                pulls: s.pulls(),
                mean: s.mean(),
                ucb: s.ucb(ConfidenceSchedule::Anytime, self.total),
                lcb: s.lcb(ConfidenceSchedule::Anytime, self.total),
                active: true,
            })
            .collect()
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn select(&mut self) -> ArmId {
        // Pull every arm once before going greedy.
        if let Some(unpulled) = self.stats.iter().position(|s| s.pulls() == 0) {
            return ArmId(unpulled);
        }
        if self.rng.gen::<f64>() < self.epsilon {
            ArmId(self.rng.gen_range(0..self.stats.len()))
        } else {
            self.best()
        }
    }

    fn update(&mut self, arm: ArmId, reward: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&reward),
            "rewards must be normalized to [0, 1], got {reward}"
        );
        self.total += 1;
        self.stats[arm.index()].record(reward.clamp(0.0, 1.0));
        if self.probe.enabled() {
            let t = self.total;
            let s = self.stats[arm.index()];
            let radius = s.radius(ConfidenceSchedule::Anytime, t);
            let oracle = self
                .stats
                .iter()
                .map(ArmStats::mean)
                .fold(f64::NEG_INFINITY, f64::max);
            self.probe.push(
                ArmEventKind::Sample,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                Some(reward.clamp(0.0, 1.0)),
                Some(oracle),
            );
            self.probe.push(
                ArmEventKind::BoundUpdate,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                None,
                None,
            );
        }
    }

    fn best(&self) -> ArmId {
        let (best, _) = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.mean()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("means are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }
}

impl LearnerProbe for EpsilonGreedy {
    fn set_probe(&mut self, enabled: bool) {
        let attach = enabled && !self.probe.enabled();
        self.probe.set_enabled(enabled);
        if attach {
            let t = self.total;
            for (i, s) in self.stats.iter().enumerate() {
                self.probe.push(
                    ArmEventKind::Activate,
                    t,
                    ArmId(i),
                    s.pulls(),
                    s.mean(),
                    s.radius(ConfidenceSchedule::Anytime, t),
                    None,
                    None,
                );
            }
        }
    }

    fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent> {
        self.probe.drain()
    }

    fn probe_dropped(&self) -> u64 {
        self.probe.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_then_exploits() {
        let means = [0.1, 0.9];
        let mut p = EpsilonGreedy::new(2, 0.1, 42);
        for _ in 0..1000 {
            let a = p.select();
            p.update(a, means[a.index()]);
        }
        assert_eq!(p.best(), ArmId(1));
        // Exploitation dominates: arm 1 gets the lion's share.
        assert!(p.stats(ArmId(1)).pulls() > 800);
        // But ε-exploration keeps arm 0 sampled.
        assert!(p.stats(ArmId(0)).pulls() > 10);
    }

    #[test]
    fn zero_epsilon_is_greedy() {
        let mut p = EpsilonGreedy::new(3, 0.0, 1);
        // Initialization pass.
        for r in [0.2, 0.9, 0.5] {
            let a = p.select();
            p.update(a, r);
        }
        for _ in 0..50 {
            let a = p.select();
            assert_eq!(a, ArmId(1));
            p.update(a, 0.9);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_epsilon_rejected() {
        let _ = EpsilonGreedy::new(2, 1.5, 0);
    }
}
