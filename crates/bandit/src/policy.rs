//! The policy abstraction shared by all bandit algorithms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an arm (dense `0..arm_count`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ArmId(pub usize);

impl ArmId {
    /// The arm's dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ArmId {
    fn from(value: usize) -> Self {
        ArmId(value)
    }
}

impl fmt::Display for ArmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arm{}", self.0)
    }
}

/// A telemetry view of one arm: its running statistics, confidence
/// bounds, and membership in the active set. Produced by the policies'
/// `arm_views` accessors for observability; policies without confidence
/// machinery report `ucb == lcb == mean`, and policies that never
/// eliminate report every arm active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmView {
    /// The arm.
    pub arm: ArmId,
    /// Times pulled.
    pub pulls: u64,
    /// Empirical (or posterior/discounted) mean reward.
    pub mean: f64,
    /// Upper confidence bound at the current time.
    pub ucb: f64,
    /// Lower confidence bound at the current time.
    pub lcb: f64,
    /// Whether the arm is still selectable.
    pub active: bool,
}

/// A sequential arm-selection policy.
///
/// The protocol is the standard bandit loop: call [`BanditPolicy::select`]
/// to obtain the arm to play, observe a reward in `[0, 1]`, and feed it back
/// via [`BanditPolicy::update`].
pub trait BanditPolicy {
    /// Number of arms.
    fn arm_count(&self) -> usize;

    /// Chooses the next arm to play.
    fn select(&mut self) -> ArmId;

    /// Records the observed reward (must be in `[0, 1]`) for `arm`.
    fn update(&mut self, arm: ArmId, reward: f64);

    /// The arm the policy currently believes is best (highest empirical
    /// mean among arms it still considers; ties to the lowest index).
    fn best(&self) -> ArmId;

    /// Total number of updates so far.
    fn total_pulls(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_id_roundtrip() {
        let a: ArmId = 7.into();
        assert_eq!(a.index(), 7);
        assert_eq!(format!("{a}"), "arm7");
    }
}
