//! Discounted UCB (Kocsis & Szepesvári / Garivier & Moulines) — a
//! non-stationary bandit for drifting reward landscapes.
//!
//! `DynamicRR`'s threshold landscape is *not* stationary: the best `C^th`
//! during the arrival ramp differs from the best at saturation. D-UCB
//! geometrically discounts old observations (`γ < 1`), so the policy keeps
//! adapting; `γ = 1` recovers plain UCB1.

use crate::policy::{ArmId, ArmView, BanditPolicy};
use crate::probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
use serde::{Deserialize, Serialize};

/// Per-arm discounted statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct DiscountedStats {
    /// Discounted pull count `N_γ`.
    weight: f64,
    /// Discounted reward sum `S_γ`.
    sum: f64,
    /// Undiscounted pull count (telemetry only; selection uses `weight`).
    pulls: u64,
}

impl DiscountedStats {
    fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.sum / self.weight
        } else {
            0.0
        }
    }
}

/// The discounted-UCB policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscountedUcb {
    arms: Vec<DiscountedStats>,
    gamma: f64,
    /// Exploration scale (the `ξ` constant; 2.0 is the classical choice).
    xi: f64,
    total: u64,
    #[serde(skip, default)]
    probe: ProbeRecorder,
}

impl DiscountedUcb {
    /// Creates the policy with discount `gamma ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(arms: usize, gamma: f64) -> Self {
        assert!(arms >= 1, "need at least one arm");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Self {
            arms: vec![DiscountedStats::default(); arms],
            gamma,
            xi: 2.0,
            total: 0,
            probe: ProbeRecorder::new(),
        }
    }

    /// The discount factor.
    pub const fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Discounted mean of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn discounted_mean(&self, arm: ArmId) -> f64 {
        self.arms[arm.index()].mean()
    }

    /// A telemetry view of every arm: discounted means with the D-UCB
    /// padding as the confidence band (`ucb/lcb = mean ± padding`). No
    /// arm is ever eliminated.
    pub fn arm_views(&self) -> Vec<ArmView> {
        self.arms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let pad = self.padding(a);
                ArmView {
                    arm: ArmId(i),
                    pulls: a.pulls,
                    mean: a.mean(),
                    ucb: a.mean() + pad,
                    lcb: a.mean() - pad,
                    active: true,
                }
            })
            .collect()
    }

    fn padding(&self, arm: &DiscountedStats) -> f64 {
        if arm.weight <= 0.0 {
            return f64::INFINITY;
        }
        let n_gamma: f64 = self.arms.iter().map(|a| a.weight).sum();
        (self.xi * n_gamma.max(std::f64::consts::E).ln() / arm.weight).sqrt()
    }
}

impl BanditPolicy for DiscountedUcb {
    fn arm_count(&self) -> usize {
        self.arms.len()
    }

    fn select(&mut self) -> ArmId {
        let (best, _) = self
            .arms
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.mean() + self.padding(a)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("indices are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn update(&mut self, arm: ArmId, reward: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&reward),
            "rewards must be normalized to [0, 1], got {reward}"
        );
        for a in &mut self.arms {
            a.weight *= self.gamma;
            a.sum *= self.gamma;
        }
        let a = &mut self.arms[arm.index()];
        a.weight += 1.0;
        a.sum += reward.clamp(0.0, 1.0);
        a.pulls += 1;
        self.total += 1;
        if self.probe.enabled() {
            let t = self.total;
            let a = self.arms[arm.index()];
            let oracle = self
                .arms
                .iter()
                .map(DiscountedStats::mean)
                .fold(f64::NEG_INFINITY, f64::max);
            self.probe.push(
                ArmEventKind::Sample,
                t,
                arm,
                a.pulls,
                a.mean(),
                self.padding(&a),
                Some(reward.clamp(0.0, 1.0)),
                Some(oracle),
            );
            self.probe.push(
                ArmEventKind::BoundUpdate,
                t,
                arm,
                a.pulls,
                a.mean(),
                self.padding(&a),
                None,
                None,
            );
        }
    }

    fn best(&self) -> ArmId {
        let (best, _) = self
            .arms
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.mean()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("means are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }
}

impl LearnerProbe for DiscountedUcb {
    fn set_probe(&mut self, enabled: bool) {
        let attach = enabled && !self.probe.enabled();
        self.probe.set_enabled(enabled);
        if attach {
            let t = self.total;
            for (i, a) in self.arms.iter().enumerate() {
                self.probe.push(
                    ArmEventKind::Activate,
                    t,
                    ArmId(i),
                    a.pulls,
                    a.mean(),
                    self.padding(a),
                    None,
                    None,
                );
            }
        }
    }

    fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent> {
        self.probe.drain()
    }

    fn probe_dropped(&self) -> u64 {
        self.probe.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tracks_a_drifting_best_arm() {
        // Arm 0 is best for the first 2000 steps, then arm 1 takes over.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut p = DiscountedUcb::new(2, 0.99);
        for t in 0..4000u64 {
            let means = if t < 2000 { [0.8, 0.2] } else { [0.2, 0.8] };
            let a = p.select();
            let r = if rng.gen::<f64>() < means[a.index()] {
                1.0
            } else {
                0.0
            };
            p.update(a, r);
        }
        // After the switch, the discounted view must prefer arm 1.
        assert_eq!(p.best(), ArmId(1));
        assert!(p.discounted_mean(ArmId(1)) > p.discounted_mean(ArmId(0)));
    }

    #[test]
    fn undiscounted_matches_ucb_semantics() {
        let means = [0.3, 0.7];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut p = DiscountedUcb::new(2, 1.0);
        for _ in 0..2000 {
            let a = p.select();
            let r = if rng.gen::<f64>() < means[a.index()] {
                1.0
            } else {
                0.0
            };
            p.update(a, r);
        }
        assert_eq!(p.best(), ArmId(1));
        assert_eq!(p.total_pulls(), 2000);
    }

    #[test]
    fn unpulled_arms_selected_first() {
        let mut p = DiscountedUcb::new(3, 0.95);
        let mut seen = [false; 3];
        for _ in 0..3 {
            let a = p.select();
            seen[a.index()] = true;
            p.update(a, 0.5);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn bad_gamma_rejected() {
        let _ = DiscountedUcb::new(2, 0.0);
    }
}
