//! Per-arm statistics and confidence radii.

use serde::{Deserialize, Serialize};

/// How the confidence radius scales with time.
///
/// Following Slivkins [25] (the paper's reference for the successive
/// elimination bound), the radius of an arm with `n` pulls is
/// `r = sqrt(2 · log(T) / n)` with a known horizon `T`, or
/// `r = sqrt(2 · log(t + 1) / n)` with the anytime schedule where `t` is
/// the total number of pulls so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfidenceSchedule {
    /// The horizon `T` is known in advance.
    Horizon(u64),
    /// Unknown horizon; use the running pull count.
    Anytime,
}

impl ConfidenceSchedule {
    /// The `log` factor at total time `t`.
    fn log_factor(self, t: u64) -> f64 {
        match self {
            ConfidenceSchedule::Horizon(h) => (h.max(2) as f64).ln(),
            ConfidenceSchedule::Anytime => ((t + 1).max(2) as f64).ln(),
        }
    }
}

/// Running statistics of one arm: pull count and empirical mean.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArmStats {
    pulls: u64,
    mean: f64,
}

impl ArmStats {
    /// A fresh, unpulled arm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pulls.
    pub const fn pulls(&self) -> u64 {
        self.pulls
    }

    /// Empirical mean reward (0 for an unpulled arm).
    pub const fn mean(&self) -> f64 {
        self.mean
    }

    /// Incorporates one observation via an incremental mean update.
    pub fn record(&mut self, reward: f64) {
        self.pulls += 1;
        self.mean += (reward - self.mean) / self.pulls as f64;
    }

    /// Confidence radius `r_t(a)` at total time `t` under `schedule`;
    /// infinite for an unpulled arm (it can never be eliminated).
    pub fn radius(&self, schedule: ConfidenceSchedule, t: u64) -> f64 {
        if self.pulls == 0 {
            f64::INFINITY
        } else {
            (2.0 * schedule.log_factor(t) / self.pulls as f64).sqrt()
        }
    }

    /// Upper confidence bound `UCB_t(a) = mean + r_t(a)`.
    pub fn ucb(&self, schedule: ConfidenceSchedule, t: u64) -> f64 {
        self.mean + self.radius(schedule, t)
    }

    /// Lower confidence bound `LCB_t(a) = mean − r_t(a)`.
    pub fn lcb(&self, schedule: ConfidenceSchedule, t: u64) -> f64 {
        self.mean - self.radius(schedule, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_mean() {
        let mut s = ArmStats::new();
        for r in [1.0, 0.0, 0.5, 0.5] {
            s.record(r);
        }
        assert_eq!(s.pulls(), 4);
        assert!((s.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn radius_shrinks_with_pulls() {
        let mut s = ArmStats::new();
        assert_eq!(s.radius(ConfidenceSchedule::Horizon(100), 0), f64::INFINITY);
        s.record(0.5);
        let r1 = s.radius(ConfidenceSchedule::Horizon(100), 1);
        for _ in 0..9 {
            s.record(0.5);
        }
        let r10 = s.radius(ConfidenceSchedule::Horizon(100), 10);
        assert!(r10 < r1);
        assert!((r1 / r10 - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_mean() {
        let mut s = ArmStats::new();
        s.record(0.7);
        s.record(0.8);
        let sched = ConfidenceSchedule::Anytime;
        assert!(s.lcb(sched, 2) < s.mean());
        assert!(s.ucb(sched, 2) > s.mean());
        assert!((s.ucb(sched, 2) + s.lcb(sched, 2)) / 2.0 - s.mean() < 1e-12);
    }

    #[test]
    fn anytime_radius_grows_with_t() {
        let mut s = ArmStats::new();
        s.record(0.5);
        let early = s.radius(ConfidenceSchedule::Anytime, 2);
        let late = s.radius(ConfidenceSchedule::Anytime, 10_000);
        assert!(late > early);
    }
}
