//! Successive elimination — the arm-selection core of the paper's
//! `DynamicRR` (Algorithm 3, lines 5-9).
//!
//! All arms start *active*. Selection round-robins over the active set so
//! every active arm is tried "in possibly multiple rounds"; after each
//! update, any arm `a` whose upper confidence bound falls below the lower
//! confidence bound of some arm `a'` is deactivated. With the radius
//! schedule of [`ConfidenceSchedule`], the policy's regret is
//! `O(sqrt(κ · T · log T))` (Slivkins [25], Thm 1.9 — the bound quoted in
//! the paper's Theorem 3).

use crate::policy::{ArmId, ArmView, BanditPolicy};
use crate::probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
use crate::stats::{ArmStats, ConfidenceSchedule};
use serde::{Deserialize, Serialize};

/// Successive-elimination policy over a fixed arm set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuccessiveElimination {
    stats: Vec<ArmStats>,
    active: Vec<bool>,
    schedule: ConfidenceSchedule,
    cursor: usize,
    total: u64,
    #[serde(skip, default)]
    probe: ProbeRecorder,
}

impl SuccessiveElimination {
    /// Creates a policy over `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0`.
    pub fn new(arms: usize, schedule: ConfidenceSchedule) -> Self {
        assert!(arms >= 1, "need at least one arm");
        Self {
            stats: vec![ArmStats::new(); arms],
            active: vec![true; arms],
            schedule,
            cursor: 0,
            total: 0,
            probe: ProbeRecorder::new(),
        }
    }

    /// Restores every eliminated arm to the active set (groundwork for
    /// sliding-window variants that forget stale eliminations after a
    /// detected drift). Statistics are kept — only membership resets.
    pub fn reactivate_all(&mut self) {
        let t = self.total;
        for (i, act) in self.active.iter_mut().enumerate() {
            if !*act {
                *act = true;
                let s = &self.stats[i];
                self.probe.push(
                    ArmEventKind::Reactivate,
                    t,
                    ArmId(i),
                    s.pulls(),
                    s.mean(),
                    s.radius(self.schedule, t),
                    None,
                    None,
                );
            }
        }
    }

    /// The best active arm's empirical mean (the per-step online oracle).
    fn best_active_mean(&self) -> f64 {
        self.stats
            .iter()
            .zip(&self.active)
            .filter(|&(_, &act)| act)
            .map(|(s, _)| s.mean())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether `arm` is still active (never eliminated).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn is_active(&self, arm: ArmId) -> bool {
        self.active[arm.index()]
    }

    /// Number of still-active arms (always ≥ 1).
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The statistics of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn stats(&self, arm: ArmId) -> &ArmStats {
        &self.stats[arm.index()]
    }

    /// A telemetry view of every arm: pulls, empirical mean, the
    /// UCB/LCB bounds at the current total pull count, and whether the
    /// arm survives in the active set.
    pub fn arm_views(&self) -> Vec<ArmView> {
        self.stats
            .iter()
            .zip(&self.active)
            .enumerate()
            .map(|(i, (s, &active))| ArmView {
                arm: ArmId(i),
                pulls: s.pulls(),
                mean: s.mean(),
                ucb: s.ucb(self.schedule, self.total),
                lcb: s.lcb(self.schedule, self.total),
                active,
            })
            .collect()
    }

    /// Deactivates every arm dominated by another active arm:
    /// `UCB_t(a) < LCB_t(a')` for some active `a'`.
    fn prune(&mut self) {
        let t = self.total;
        let best_lcb = self
            .stats
            .iter()
            .zip(&self.active)
            .filter(|&(_, &act)| act)
            .map(|(s, _)| s.lcb(self.schedule, t))
            .fold(f64::NEG_INFINITY, f64::max);
        for (i, s) in self.stats.iter().enumerate() {
            if self.active[i] && s.ucb(self.schedule, t) < best_lcb {
                self.active[i] = false;
                self.probe.push(
                    ArmEventKind::Eliminate,
                    t,
                    ArmId(i),
                    s.pulls(),
                    s.mean(),
                    s.radius(self.schedule, t),
                    None,
                    None,
                );
            }
        }
        // The arm achieving best_lcb can never eliminate itself
        // (UCB ≥ LCB for every arm), so at least one arm stays active.
        debug_assert!(self.active.iter().any(|&a| a));
    }
}

impl BanditPolicy for SuccessiveElimination {
    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn select(&mut self) -> ArmId {
        // Round-robin over active arms so each is tried in turn.
        let n = self.stats.len();
        for _ in 0..n {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            if self.active[i] {
                return ArmId(i);
            }
        }
        unreachable!("at least one arm is always active");
    }

    fn update(&mut self, arm: ArmId, reward: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&reward),
            "rewards must be normalized to [0, 1], got {reward}"
        );
        self.total += 1;
        self.stats[arm.index()].record(reward.clamp(0.0, 1.0));
        if self.probe.enabled() {
            let t = self.total;
            let s = self.stats[arm.index()];
            let radius = s.radius(self.schedule, t);
            let oracle = self.best_active_mean();
            self.probe.push(
                ArmEventKind::Sample,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                Some(reward.clamp(0.0, 1.0)),
                Some(oracle),
            );
            self.probe.push(
                ArmEventKind::BoundUpdate,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                None,
                None,
            );
        }
        self.prune();
    }

    fn best(&self) -> ArmId {
        let mut best = None;
        for (i, s) in self.stats.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, m)) => s.mean() > m,
            };
            if better {
                best = Some((i, s.mean()));
            }
        }
        ArmId(best.expect("at least one active arm").0)
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }
}

impl LearnerProbe for SuccessiveElimination {
    fn set_probe(&mut self, enabled: bool) {
        let attach = enabled && !self.probe.enabled();
        self.probe.set_enabled(enabled);
        if attach {
            let t = self.total;
            for (i, s) in self.stats.iter().enumerate() {
                if self.active[i] {
                    self.probe.push(
                        ArmEventKind::Activate,
                        t,
                        ArmId(i),
                        s.pulls(),
                        s.mean(),
                        s.radius(self.schedule, t),
                        None,
                        None,
                    );
                }
            }
        }
    }

    fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent> {
        self.probe.drain()
    }

    fn probe_dropped(&self) -> u64 {
        self.probe.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_bernoulli_like(means: &[f64], steps: usize) -> SuccessiveElimination {
        // Deterministic "expected reward" feedback keeps the test exact.
        let mut p =
            SuccessiveElimination::new(means.len(), ConfidenceSchedule::Horizon(steps as u64));
        for _ in 0..steps {
            let arm = p.select();
            p.update(arm, means[arm.index()]);
        }
        p
    }

    #[test]
    fn eliminates_bad_arms() {
        let p = run_bernoulli_like(&[0.1, 0.9, 0.15], 600);
        assert!(p.is_active(ArmId(1)));
        assert!(!p.is_active(ArmId(0)));
        assert!(!p.is_active(ArmId(2)));
        assert_eq!(p.best(), ArmId(1));
    }

    #[test]
    fn never_eliminates_everything() {
        let p = run_bernoulli_like(&[0.5, 0.5, 0.5], 10_000);
        assert!(p.active_count() >= 1);
        // Identical arms are statistically indistinguishable: all stay.
        assert_eq!(p.active_count(), 3);
    }

    #[test]
    fn round_robin_spreads_pulls_while_active() {
        let mut p = SuccessiveElimination::new(4, ConfidenceSchedule::Anytime);
        for _ in 0..8 {
            let arm = p.select();
            p.update(arm, 0.5);
        }
        for i in 0..4 {
            assert_eq!(p.stats(ArmId(i)).pulls(), 2, "arm {i} not pulled twice");
        }
    }

    #[test]
    fn eliminated_arms_not_selected() {
        let mut p = run_bernoulli_like(&[0.05, 0.95], 400);
        assert!(!p.is_active(ArmId(0)));
        for _ in 0..10 {
            assert_eq!(p.select(), ArmId(1));
            p.update(ArmId(1), 0.95);
        }
    }

    #[test]
    fn single_arm_is_trivial() {
        let mut p = SuccessiveElimination::new(1, ConfidenceSchedule::Anytime);
        for _ in 0..5 {
            let a = p.select();
            assert_eq!(a, ArmId(0));
            p.update(a, 0.0);
        }
        assert_eq!(p.best(), ArmId(0));
        assert_eq!(p.total_pulls(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        let _ = SuccessiveElimination::new(0, ConfidenceSchedule::Anytime);
    }

    #[test]
    fn detached_probe_records_nothing() {
        let mut p = run_bernoulli_like(&[0.1, 0.9], 200);
        assert!(!p.probe_enabled());
        assert!(p.drain_probe().is_empty());
        assert_eq!(p.probe_dropped(), 0);
    }

    #[test]
    fn probe_emits_full_lifecycle() {
        use crate::probe::ArmEventKind::*;
        let mut p = SuccessiveElimination::new(3, ConfidenceSchedule::Horizon(600));
        p.set_probe(true);
        // Attach emits one activate per (active) arm.
        let attach = p.drain_probe();
        assert_eq!(attach.len(), 3);
        assert!(attach.iter().all(|e| e.kind == Activate && e.pulls == 0));
        assert!(attach.iter().all(|e| e.radius.is_infinite()));
        let means = [0.1, 0.9, 0.15];
        for _ in 0..600 {
            let arm = p.select();
            p.update(arm, means[arm.index()]);
        }
        let events = p.drain_probe();
        let samples: Vec<_> = events.iter().filter(|e| e.kind == Sample).collect();
        let eliminations: Vec<_> = events.iter().filter(|e| e.kind == Eliminate).collect();
        assert_eq!(samples.len(), 600);
        // Each sample carries the reward and the running oracle.
        assert!(samples
            .iter()
            .all(|e| e.reward.is_some() && e.oracle.is_some()));
        assert!(samples.iter().all(|e| e.radius.is_finite()));
        // Steps are monotone and pair each sample with a bound update.
        assert!(samples.windows(2).all(|w| w[0].step < w[1].step));
        assert_eq!(events.iter().filter(|e| e.kind == BoundUpdate).count(), 600);
        // Both bad arms were eliminated, and the probe saw it happen.
        assert_eq!(eliminations.len(), 2);
        let mut gone: Vec<usize> = eliminations.iter().map(|e| e.arm.index()).collect();
        gone.sort_unstable();
        assert_eq!(gone, vec![0, 2]);
        // Late oracle values approach the best arm's mean.
        let last = samples.last().unwrap();
        assert!((last.oracle.unwrap() - 0.9).abs() < 0.05);
        // Reactivation restores the eliminated arms and says so.
        p.reactivate_all();
        let revived = p.drain_probe();
        assert_eq!(revived.iter().filter(|e| e.kind == Reactivate).count(), 2);
        assert_eq!(p.active_count(), 3);
    }

    #[test]
    fn probe_does_not_perturb_learning() {
        let means = [0.3, 0.8, 0.5, 0.2];
        let mut plain = SuccessiveElimination::new(4, ConfidenceSchedule::Horizon(500));
        let mut probed = SuccessiveElimination::new(4, ConfidenceSchedule::Horizon(500));
        probed.set_probe(true);
        for _ in 0..500 {
            let a = plain.select();
            plain.update(a, means[a.index()]);
            let b = probed.select();
            probed.update(b, means[b.index()]);
            assert_eq!(a, b);
        }
        assert_eq!(plain.best(), probed.best());
        assert_eq!(plain.active_count(), probed.active_count());
        for i in 0..4 {
            assert_eq!(
                plain.stats(ArmId(i)).pulls(),
                probed.stats(ArmId(i)).pulls()
            );
        }
    }
}
