//! Thompson sampling with Beta posteriors — the Bayesian ablation baseline
//! for the threshold learner.
//!
//! Rewards in `[0, 1]` are treated as Bernoulli via the standard trick of
//! a weighted posterior update (`alpha += r`, `beta += 1 − r`), which keeps
//! the posterior exact for binary rewards and a sensible approximation for
//! fractional ones.

use crate::policy::{ArmId, ArmView, BanditPolicy};
use crate::probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-arm Beta(α, β) posterior.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Posterior {
    alpha: f64,
    beta: f64,
    pulls: u64,
}

impl Posterior {
    fn new() -> Self {
        // Uniform prior Beta(1, 1).
        Self {
            alpha: 1.0,
            beta: 1.0,
            pulls: 0,
        }
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Posterior standard deviation — the Bayesian analogue of the
    /// frequentist confidence radius reported by the UCB-family probes.
    fn std_dev(&self) -> f64 {
        let n = self.alpha + self.beta;
        (self.alpha * self.beta / (n * n * (n + 1.0))).sqrt()
    }

    /// Draws one posterior sample via the Jöhnk/gamma-free method: for
    /// Beta(α, β) with α, β ≥ 1 we use the fact that the maximum of
    /// `round(α)` uniforms approximates poorly, so instead sample by the
    /// ratio-of-gammas with Marsaglia-Tsang gamma sampling.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = gamma_sample(rng, self.alpha);
        let y = gamma_sample(rng, self.beta);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Marsaglia-Tsang gamma sampler (shape ≥ 1 via squeeze, shape < 1 via the
/// boost `Gamma(a) = Gamma(a+1) · U^{1/a}`), unit scale.
fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Thompson sampling over Beta posteriors.
#[derive(Debug, Clone)]
pub struct ThompsonBeta {
    arms: Vec<Posterior>,
    rng: StdRng,
    total: u64,
    probe: ProbeRecorder,
}

impl ThompsonBeta {
    /// Creates the policy with a uniform prior on every arm.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0`.
    pub fn new(arms: usize, seed: u64) -> Self {
        assert!(arms >= 1, "need at least one arm");
        Self {
            arms: vec![Posterior::new(); arms],
            rng: StdRng::seed_from_u64(seed),
            total: 0,
            probe: ProbeRecorder::new(),
        }
    }

    /// Posterior mean of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn posterior_mean(&self, arm: ArmId) -> f64 {
        self.arms[arm.index()].mean()
    }

    /// Pull count of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pulls(&self, arm: ArmId) -> u64 {
        self.arms[arm.index()].pulls
    }

    /// A telemetry view of every arm. The Beta posterior carries no
    /// frequentist confidence bounds, so `ucb == lcb == mean` (the
    /// posterior mean). No arm is ever eliminated.
    pub fn arm_views(&self) -> Vec<ArmView> {
        self.arms
            .iter()
            .enumerate()
            .map(|(i, p)| ArmView {
                arm: ArmId(i),
                pulls: p.pulls,
                mean: p.mean(),
                ucb: p.mean(),
                lcb: p.mean(),
                active: true,
            })
            .collect()
    }
}

impl BanditPolicy for ThompsonBeta {
    fn arm_count(&self) -> usize {
        self.arms.len()
    }

    fn select(&mut self) -> ArmId {
        let mut best = (0usize, f64::MIN);
        for i in 0..self.arms.len() {
            let s = self.arms[i].sample(&mut self.rng);
            if s > best.1 {
                best = (i, s);
            }
        }
        ArmId(best.0)
    }

    fn update(&mut self, arm: ArmId, reward: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&reward),
            "rewards must be normalized to [0, 1], got {reward}"
        );
        let r = reward.clamp(0.0, 1.0);
        let p = &mut self.arms[arm.index()];
        p.alpha += r;
        p.beta += 1.0 - r;
        p.pulls += 1;
        self.total += 1;
        if self.probe.enabled() {
            let t = self.total;
            let p = self.arms[arm.index()];
            let oracle = self
                .arms
                .iter()
                .map(Posterior::mean)
                .fold(f64::NEG_INFINITY, f64::max);
            self.probe.push(
                ArmEventKind::Sample,
                t,
                arm,
                p.pulls,
                p.mean(),
                p.std_dev(),
                Some(r),
                Some(oracle),
            );
            self.probe.push(
                ArmEventKind::BoundUpdate,
                t,
                arm,
                p.pulls,
                p.mean(),
                p.std_dev(),
                None,
                None,
            );
        }
    }

    fn best(&self) -> ArmId {
        let (best, _) = self
            .arms
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.mean()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("means are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }
}

impl LearnerProbe for ThompsonBeta {
    fn set_probe(&mut self, enabled: bool) {
        let attach = enabled && !self.probe.enabled();
        self.probe.set_enabled(enabled);
        if attach {
            let t = self.total;
            for (i, p) in self.arms.iter().enumerate() {
                self.probe.push(
                    ArmEventKind::Activate,
                    t,
                    ArmId(i),
                    p.pulls,
                    p.mean(),
                    p.std_dev(),
                    None,
                    None,
                );
            }
        }
    }

    fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent> {
        self.probe.drain()
    }

    fn probe_dropped(&self) -> u64 {
        self.probe.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn converges_to_best_arm() {
        let means = [0.2, 0.8, 0.5];
        let mut env = ChaCha8Rng::seed_from_u64(0);
        let mut p = ThompsonBeta::new(3, 42);
        for _ in 0..3000 {
            let a = p.select();
            let r = if env.gen::<f64>() < means[a.index()] {
                1.0
            } else {
                0.0
            };
            p.update(a, r);
        }
        assert_eq!(p.best(), ArmId(1));
        assert!(p.pulls(ArmId(1)) > 2000, "pulls {:?}", p.pulls(ArmId(1)));
        assert!((p.posterior_mean(ArmId(1)) - 0.8).abs() < 0.1);
    }

    #[test]
    fn gamma_sampler_means() {
        // E[Gamma(shape, 1)] = shape.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &shape in &[0.5f64, 1.0, 3.0, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < shape * 0.05 + 0.05,
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn posterior_updates() {
        let mut p = ThompsonBeta::new(1, 0);
        p.update(ArmId(0), 1.0);
        p.update(ArmId(0), 1.0);
        p.update(ArmId(0), 0.0);
        // Beta(3, 2) mean = 0.6.
        assert!((p.posterior_mean(ArmId(0)) - 0.6).abs() < 1e-12);
        assert_eq!(p.total_pulls(), 3);
    }

    #[test]
    fn fractional_rewards_accepted() {
        let mut p = ThompsonBeta::new(2, 0);
        for _ in 0..100 {
            let a = p.select();
            p.update(a, if a.index() == 0 { 0.9 } else { 0.1 });
        }
        assert_eq!(p.best(), ArmId(0));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        let _ = ThompsonBeta::new(0, 0);
    }
}
