//! UCB1 (Auer et al.) — an ablation baseline for the threshold learner.

use crate::policy::{ArmId, BanditPolicy};
use crate::probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
use crate::stats::{ArmStats, ConfidenceSchedule};
use serde::{Deserialize, Serialize};

/// The UCB1 policy: play the arm with the highest upper confidence bound;
/// unpulled arms first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ucb1 {
    stats: Vec<ArmStats>,
    total: u64,
    #[serde(skip, default)]
    probe: ProbeRecorder,
}

impl Ucb1 {
    /// Creates a UCB1 policy over `arms` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0`.
    pub fn new(arms: usize) -> Self {
        assert!(arms >= 1, "need at least one arm");
        Self {
            stats: vec![ArmStats::new(); arms],
            total: 0,
            probe: ProbeRecorder::new(),
        }
    }

    /// The statistics of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn stats(&self, arm: ArmId) -> &ArmStats {
        &self.stats[arm.index()]
    }

    /// A telemetry view of every arm under the anytime schedule UCB1
    /// selects with. UCB1 never eliminates, so every arm is active.
    pub fn arm_views(&self) -> Vec<crate::policy::ArmView> {
        self.stats
            .iter()
            .enumerate()
            .map(|(i, s)| crate::policy::ArmView {
                arm: ArmId(i),
                pulls: s.pulls(),
                mean: s.mean(),
                ucb: s.ucb(ConfidenceSchedule::Anytime, self.total),
                lcb: s.lcb(ConfidenceSchedule::Anytime, self.total),
                active: true,
            })
            .collect()
    }
}

impl BanditPolicy for Ucb1 {
    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn select(&mut self) -> ArmId {
        // Unpulled arms have infinite UCB under the anytime schedule, so a
        // single max scan covers both the initialization and steady state.
        let t = self.total;
        let (best, _) = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.ucb(ConfidenceSchedule::Anytime, t)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("UCBs are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn update(&mut self, arm: ArmId, reward: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&reward),
            "rewards must be normalized to [0, 1], got {reward}"
        );
        self.total += 1;
        self.stats[arm.index()].record(reward.clamp(0.0, 1.0));
        if self.probe.enabled() {
            let t = self.total;
            let s = self.stats[arm.index()];
            let radius = s.radius(ConfidenceSchedule::Anytime, t);
            let oracle = self
                .stats
                .iter()
                .map(ArmStats::mean)
                .fold(f64::NEG_INFINITY, f64::max);
            self.probe.push(
                ArmEventKind::Sample,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                Some(reward.clamp(0.0, 1.0)),
                Some(oracle),
            );
            self.probe.push(
                ArmEventKind::BoundUpdate,
                t,
                arm,
                s.pulls(),
                s.mean(),
                radius,
                None,
                None,
            );
        }
    }

    fn best(&self) -> ArmId {
        let (best, _) = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.mean()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("means are comparable"))
            .expect("at least one arm");
        ArmId(best)
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }
}

impl LearnerProbe for Ucb1 {
    fn set_probe(&mut self, enabled: bool) {
        let attach = enabled && !self.probe.enabled();
        self.probe.set_enabled(enabled);
        if attach {
            let t = self.total;
            for (i, s) in self.stats.iter().enumerate() {
                self.probe.push(
                    ArmEventKind::Activate,
                    t,
                    ArmId(i),
                    s.pulls(),
                    s.mean(),
                    s.radius(ConfidenceSchedule::Anytime, t),
                    None,
                    None,
                );
            }
        }
    }

    fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    fn drain_probe(&mut self) -> Vec<ArmLifecycleEvent> {
        self.probe.drain()
    }

    fn probe_dropped(&self) -> u64 {
        self.probe.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_every_arm_once() {
        let mut p = Ucb1::new(3);
        let mut seen = [false; 3];
        for _ in 0..3 {
            let a = p.select();
            seen[a.index()] = true;
            p.update(a, 0.5);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn converges_to_best_arm() {
        let means = [0.2, 0.8, 0.4];
        let mut p = Ucb1::new(3);
        for _ in 0..2000 {
            let a = p.select();
            p.update(a, means[a.index()]);
        }
        assert_eq!(p.best(), ArmId(1));
        // The best arm should dominate the pull counts.
        assert!(p.stats(ArmId(1)).pulls() > 1500);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        let _ = Ucb1::new(0);
    }
}
