//! Regret accounting for the Theorem-3 experiment.
//!
//! Regret at horizon `T` is `T · μ* − Σ_t reward_t` where `μ*` is the best
//! arm's true mean. The tracker stores the running cumulative reward and a
//! full trajectory so the experiment harness can print regret curves.

use serde::{Deserialize, Serialize};

/// Tracks realized rewards against an oracle mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretTracker {
    oracle_mean: f64,
    cumulative_reward: f64,
    steps: u64,
    trajectory: Vec<f64>,
}

impl RegretTracker {
    /// Creates a tracker against the best arm's true per-step mean `μ*`.
    ///
    /// # Panics
    ///
    /// Panics if `oracle_mean` is not finite.
    pub fn new(oracle_mean: f64) -> Self {
        assert!(oracle_mean.is_finite(), "oracle mean must be finite");
        Self {
            oracle_mean,
            cumulative_reward: 0.0,
            steps: 0,
            trajectory: Vec::new(),
        }
    }

    /// Records one step's realized reward and returns the regret so far.
    pub fn record(&mut self, reward: f64) -> f64 {
        self.steps += 1;
        self.cumulative_reward += reward;
        let regret = self.regret();
        self.trajectory.push(regret);
        regret
    }

    /// Cumulative regret `T · μ* − Σ rewards` (can be negative if the
    /// learner got lucky against the oracle's *mean*).
    pub fn regret(&self) -> f64 {
        self.steps as f64 * self.oracle_mean - self.cumulative_reward
    }

    /// Cumulative realized reward.
    pub fn cumulative_reward(&self) -> f64 {
        self.cumulative_reward
    }

    /// Number of recorded steps.
    pub const fn steps(&self) -> u64 {
        self.steps
    }

    /// The per-step regret trajectory (cumulative regret after each step).
    pub fn trajectory(&self) -> &[f64] {
        &self.trajectory
    }

    /// The oracle's per-step mean.
    pub const fn oracle_mean(&self) -> f64 {
        self.oracle_mean
    }
}

/// Online regret accounting against a *moving* per-step oracle.
///
/// [`RegretTracker`] assumes the oracle's per-step mean is known up
/// front (the Theorem-3 experiment knows the arm distribution). A live
/// deployment does not: the best available per-step bound is whatever
/// hindsight information exists *at that step* — the best active arm's
/// empirical mean online, or the per-slot LP bound from
/// `mec-core::hindsight` offline. This accountant takes the oracle value
/// alongside each reward, so both planes share one regret definition:
/// `regret_T = Σ_t oracle_t − Σ_t reward_t`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegretAccountant {
    cumulative_reward: f64,
    oracle_total: f64,
    steps: u64,
}

impl RegretAccountant {
    /// A fresh accountant with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one step's realized reward against that step's oracle
    /// bound, returning the cumulative regret. Non-finite oracle values
    /// (e.g. the bound of a still-unpulled arm) contribute the realized
    /// reward instead — an unknowable oracle step accrues zero regret
    /// rather than poisoning the total.
    pub fn record(&mut self, reward: f64, oracle: f64) -> f64 {
        self.steps += 1;
        self.cumulative_reward += reward;
        self.oracle_total += if oracle.is_finite() { oracle } else { reward };
        self.regret()
    }

    /// Cumulative regret `Σ oracle − Σ rewards` (clamped at zero: a
    /// lucky run against empirical oracles is "no regret", not credit).
    pub fn regret(&self) -> f64 {
        (self.oracle_total - self.cumulative_reward).max(0.0)
    }

    /// Cumulative realized reward.
    pub const fn cumulative_reward(&self) -> f64 {
        self.cumulative_reward
    }

    /// Sum of the per-step oracle bounds.
    pub const fn oracle_total(&self) -> f64 {
        self.oracle_total
    }

    /// Number of recorded steps.
    pub const fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_tracks_moving_oracle() {
        let mut a = RegretAccountant::new();
        assert_eq!(a.record(0.5, 1.0), 0.5);
        assert_eq!(a.record(1.0, 1.0), 0.5);
        // A better-than-oracle step shrinks but never goes negative.
        assert_eq!(a.record(1.0, 0.2), 0.0);
        assert_eq!(a.steps(), 3);
        assert!((a.cumulative_reward() - 2.5).abs() < 1e-12);
        assert!((a.oracle_total() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn accountant_skips_non_finite_oracle_steps() {
        let mut a = RegretAccountant::new();
        a.record(0.3, f64::INFINITY);
        assert_eq!(a.regret(), 0.0);
        a.record(0.3, 0.8);
        assert!((a.regret() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accountant_matches_tracker_for_fixed_oracle() {
        // With a constant oracle the two definitions coincide (while
        // regret stays non-negative).
        let mut t = RegretTracker::new(0.9);
        let mut a = RegretAccountant::new();
        for r in [0.1, 0.5, 0.9, 0.3] {
            t.record(r);
            a.record(r, 0.9);
        }
        assert!((t.regret() - a.regret()).abs() < 1e-12);
    }

    #[test]
    fn regret_accumulates() {
        let mut t = RegretTracker::new(1.0);
        assert_eq!(t.record(0.5), 0.5);
        assert_eq!(t.record(1.0), 0.5);
        assert_eq!(t.record(0.0), 1.5);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.cumulative_reward(), 1.5);
        assert_eq!(t.trajectory(), &[0.5, 0.5, 1.5]);
    }

    #[test]
    fn lucky_learner_negative_regret() {
        let mut t = RegretTracker::new(0.2);
        t.record(1.0);
        assert!(t.regret() < 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_oracle_rejected() {
        let _ = RegretTracker::new(f64::INFINITY);
    }
}
