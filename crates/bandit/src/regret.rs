//! Regret accounting for the Theorem-3 experiment.
//!
//! Regret at horizon `T` is `T · μ* − Σ_t reward_t` where `μ*` is the best
//! arm's true mean. The tracker stores the running cumulative reward and a
//! full trajectory so the experiment harness can print regret curves.

use serde::{Deserialize, Serialize};

/// Tracks realized rewards against an oracle mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretTracker {
    oracle_mean: f64,
    cumulative_reward: f64,
    steps: u64,
    trajectory: Vec<f64>,
}

impl RegretTracker {
    /// Creates a tracker against the best arm's true per-step mean `μ*`.
    ///
    /// # Panics
    ///
    /// Panics if `oracle_mean` is not finite.
    pub fn new(oracle_mean: f64) -> Self {
        assert!(oracle_mean.is_finite(), "oracle mean must be finite");
        Self {
            oracle_mean,
            cumulative_reward: 0.0,
            steps: 0,
            trajectory: Vec::new(),
        }
    }

    /// Records one step's realized reward and returns the regret so far.
    pub fn record(&mut self, reward: f64) -> f64 {
        self.steps += 1;
        self.cumulative_reward += reward;
        let regret = self.regret();
        self.trajectory.push(regret);
        regret
    }

    /// Cumulative regret `T · μ* − Σ rewards` (can be negative if the
    /// learner got lucky against the oracle's *mean*).
    pub fn regret(&self) -> f64 {
        self.steps as f64 * self.oracle_mean - self.cumulative_reward
    }

    /// Cumulative realized reward.
    pub fn cumulative_reward(&self) -> f64 {
        self.cumulative_reward
    }

    /// Number of recorded steps.
    pub const fn steps(&self) -> u64 {
        self.steps
    }

    /// The per-step regret trajectory (cumulative regret after each step).
    pub fn trajectory(&self) -> &[f64] {
        &self.trajectory
    }

    /// The oracle's per-step mean.
    pub const fn oracle_mean(&self) -> f64 {
        self.oracle_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_accumulates() {
        let mut t = RegretTracker::new(1.0);
        assert_eq!(t.record(0.5), 0.5);
        assert_eq!(t.record(1.0), 0.5);
        assert_eq!(t.record(0.0), 1.5);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.cumulative_reward(), 1.5);
        assert_eq!(t.trajectory(), &[0.5, 0.5, 1.5]);
    }

    #[test]
    fn lucky_learner_negative_regret() {
        let mut t = RegretTracker::new(0.2);
        t.record(1.0);
        assert!(t.regret() < 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_oracle_rejected() {
        let _ = RegretTracker::new(f64::INFINITY);
    }
}
