//! Lipschitz arm domains: uniform discretization of a continuous interval
//! (§V-A of the paper).
//!
//! `DynamicRR`'s threshold `C^th` ranges over a continuous interval
//! `Z = [lo, hi]` whose expected-reward function is assumed `η`-Lipschitz
//! (Eq. 21). Discretizing `Z` into `κ` points of spacing
//! `ε = (hi − lo) / (κ − 1)` costs at most `η · ε` of per-step reward
//! (Eq. 25), giving Theorem 3's total regret
//! `O(sqrt(κ T log T) + T · η · ε)`.

use crate::policy::ArmId;
use serde::{Deserialize, Serialize};

/// A uniformly discretized continuous arm interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LipschitzDomain {
    lo: f64,
    hi: f64,
    kappa: usize,
}

impl LipschitzDomain {
    /// Discretizes `[lo, hi]` into `kappa` arms.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, either bound is not finite, or `kappa == 0`
    /// (`kappa == 1` is allowed and collapses to the midpoint).
    pub fn new(lo: f64, hi: f64, kappa: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "interval must satisfy lo <= hi");
        assert!(kappa >= 1, "need at least one arm");
        Self { lo, hi, kappa }
    }

    /// Lower end of `Z`.
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper end of `Z`.
    pub const fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of arms `κ`.
    pub const fn kappa(&self) -> usize {
        self.kappa
    }

    /// Spacing `ε = (hi − lo)/(κ − 1)`; zero when `κ == 1` or `lo == hi`.
    pub fn epsilon(&self) -> f64 {
        if self.kappa <= 1 {
            0.0
        } else {
            (self.hi - self.lo) / (self.kappa - 1) as f64
        }
    }

    /// The continuous value of one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm.index() >= kappa`.
    pub fn value(&self, arm: ArmId) -> f64 {
        assert!(arm.index() < self.kappa, "arm {arm} out of range");
        if self.kappa == 1 {
            (self.lo + self.hi) / 2.0
        } else {
            self.lo + self.epsilon() * arm.index() as f64
        }
    }

    /// All arm values in index order.
    pub fn values(&self) -> Vec<f64> {
        (0..self.kappa).map(|i| self.value(ArmId(i))).collect()
    }

    /// The arm whose value is nearest to `x` (clamped into the interval).
    pub fn nearest(&self, x: f64) -> ArmId {
        if self.kappa == 1 {
            return ArmId(0);
        }
        let eps = self.epsilon();
        if eps == 0.0 {
            return ArmId(0);
        }
        let idx = ((x - self.lo) / eps)
            .round()
            .clamp(0.0, (self.kappa - 1) as f64);
        ArmId(idx as usize)
    }

    /// Worst-case per-step reward lost by playing the discretized best arm
    /// instead of the continuous best: `DE(Z') ≤ η · ε` (Eq. 25).
    pub fn discretization_error(&self, eta: f64) -> f64 {
        eta * self.epsilon()
    }

    /// Theorem 3's regret bound `c · (sqrt(κ T log T) + T · η · ε)` with
    /// unit constant — used by the regret experiment to check the *shape*
    /// of the measured curve.
    pub fn regret_bound(&self, eta: f64, horizon: u64) -> f64 {
        let t = horizon as f64;
        (self.kappa as f64 * t * t.max(2.0).ln()).sqrt() + t * self.discretization_error(eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid() {
        let d = LipschitzDomain::new(200.0, 1000.0, 5);
        assert_eq!(d.epsilon(), 200.0);
        assert_eq!(d.values(), vec![200.0, 400.0, 600.0, 800.0, 1000.0]);
        assert_eq!(d.value(ArmId(0)), 200.0);
        assert_eq!(d.value(ArmId(4)), 1000.0);
    }

    #[test]
    fn nearest_rounds_and_clamps() {
        let d = LipschitzDomain::new(0.0, 10.0, 11);
        assert_eq!(d.nearest(3.4), ArmId(3));
        assert_eq!(d.nearest(3.6), ArmId(4));
        assert_eq!(d.nearest(-5.0), ArmId(0));
        assert_eq!(d.nearest(50.0), ArmId(10));
    }

    #[test]
    fn single_arm_midpoint() {
        let d = LipschitzDomain::new(2.0, 4.0, 1);
        assert_eq!(d.epsilon(), 0.0);
        assert_eq!(d.value(ArmId(0)), 3.0);
        assert_eq!(d.nearest(100.0), ArmId(0));
    }

    #[test]
    fn degenerate_interval() {
        let d = LipschitzDomain::new(5.0, 5.0, 4);
        assert_eq!(d.epsilon(), 0.0);
        for i in 0..4 {
            assert_eq!(d.value(ArmId(i)), 5.0);
        }
    }

    #[test]
    fn discretization_error_scales() {
        let coarse = LipschitzDomain::new(0.0, 100.0, 3);
        let fine = LipschitzDomain::new(0.0, 100.0, 101);
        assert!(coarse.discretization_error(1.0) > fine.discretization_error(1.0));
        assert_eq!(fine.discretization_error(2.0), 2.0);
    }

    #[test]
    fn regret_bound_tradeoff() {
        // More arms: lower discretization term, higher bandit term.
        let eta = 0.5;
        let t = 10_000;
        let few = LipschitzDomain::new(0.0, 1000.0, 3);
        let many = LipschitzDomain::new(0.0, 1000.0, 300);
        let bound_few = few.regret_bound(eta, t);
        let bound_many = many.regret_bound(eta, t);
        // With huge ε, the discretization term dominates for `few`.
        assert!(bound_few > (3.0 * t as f64 * (t as f64).ln()).sqrt());
        // And the bandit term dominates for `many`.
        assert!(bound_many > (300.0 * t as f64 * (t as f64).ln()).sqrt());
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_interval_rejected() {
        let _ = LipschitzDomain::new(2.0, 1.0, 3);
    }
}
