//! # mec-bandit
//!
//! Multi-armed-bandit substrate for the ICDCS'21 reproduction. `DynamicRR`
//! (Algorithm 3 of the paper) tunes its per-slot compute threshold `C^th`
//! with a **Lipschitz bandit**: the continuous threshold interval is
//! discretized into `κ` arms ([`LipschitzDomain`]) and a **successive
//! elimination** policy ([`SuccessiveElimination`]) keeps the empirically
//! plausible arms alive via UCB/LCB comparisons. UCB1 and ε-greedy are
//! provided as ablation baselines, plus regret accounting used by the
//! Theorem-3 experiment.
//!
//! Rewards fed to every policy must be normalized to `[0, 1]`; the
//! confidence radii assume that range.
//!
//! ## Example
//!
//! ```
//! use mec_bandit::{BanditPolicy, SuccessiveElimination, ConfidenceSchedule};
//!
//! let mut policy = SuccessiveElimination::new(5, ConfidenceSchedule::Horizon(1000));
//! for _ in 0..100 {
//!     let arm = policy.select();
//!     let reward = if arm.index() == 3 { 0.9 } else { 0.1 };
//!     policy.update(arm, reward);
//! }
//! assert_eq!(policy.best().index(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discounted;
pub mod epsilon_greedy;
pub mod lipschitz;
pub mod policy;
pub mod probe;
pub mod regret;
pub mod stats;
pub mod successive_elimination;
pub mod thompson;
pub mod ucb;

pub use discounted::DiscountedUcb;
pub use epsilon_greedy::EpsilonGreedy;
pub use lipschitz::LipschitzDomain;
pub use policy::{ArmId, ArmView, BanditPolicy};
pub use probe::{ArmEventKind, ArmLifecycleEvent, LearnerProbe, ProbeRecorder};
pub use regret::{RegretAccountant, RegretTracker};
pub use stats::{ArmStats, ConfidenceSchedule};
pub use successive_elimination::SuccessiveElimination;
pub use thompson::ThompsonBeta;
pub use ucb::Ucb1;
