//! Solver results and errors.

use crate::problem::VarId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Terminal state of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was exhausted before convergence.
    IterationLimit,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit reached",
        };
        f.write_str(s)
    }
}

/// Errors returned by the LP/ILP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// The simplex iteration limit was reached (numerical trouble or a
    /// pathological instance).
    IterationLimit,
    /// Branch-and-bound exhausted its node budget before proving optimality.
    NodeLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::NodeLimit => write!(f, "branch-and-bound node limit reached"),
        }
    }
}

impl std::error::Error for LpError {}

/// A solved LP/ILP: optimal objective value, variable assignment, and (for
/// pure LPs) the dual values of the explicit constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    duals: Vec<f64>,
}

impl Solution {
    #[cfg(test)]
    pub(crate) fn new(objective: f64, values: Vec<f64>) -> Self {
        Self {
            objective,
            values,
            duals: Vec::new(),
        }
    }

    /// Drops the dual values (used by branch-and-bound, where node duals
    /// do not describe the integer optimum).
    pub(crate) fn strip_duals(mut self) -> Self {
        self.duals.clear();
        self
    }

    pub(crate) fn with_duals(objective: f64, values: Vec<f64>, duals: Vec<f64>) -> Self {
        Self {
            objective,
            values,
            duals,
        }
    }

    /// Optimal objective value (in the problem's own sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` did not come from the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values in id order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual values (shadow prices) of the explicit constraints, in the
    /// order they were added.
    ///
    /// Sign convention: for a maximization with `Σ a x ≤ b`, the dual is
    /// non-negative and measures the objective gain per unit of extra
    /// right-hand side. Empty for branch-and-bound solutions (node duals
    /// are not meaningful for the integer optimum).
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective {:.6} over {} vars",
            self.objective,
            self.values.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(4.2, vec![1.0, 0.0, 3.0]);
        assert_eq!(s.objective(), 4.2);
        assert_eq!(s.value(VarId(2)), 3.0);
        assert_eq!(s.values(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", Status::Optimal), "optimal");
        assert_eq!(format!("{}", LpError::Infeasible), "problem is infeasible");
        let s = Solution::new(1.0, vec![0.0]);
        assert!(format!("{s}").contains("objective"));
    }
}
