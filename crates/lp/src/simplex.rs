//! Two-phase dense primal simplex.
//!
//! Internally everything is a *minimization* over `x ≥ 0` in standard form:
//! `≤` rows get slacks, `≥` rows get a surplus and an artificial, `=` rows
//! get an artificial. Phase 1 minimizes the artificial sum to find a basic
//! feasible point; phase 2 minimizes the (possibly negated) objective.
//! Pricing is Dantzig (most negative reduced cost) with a switch to Bland's
//! rule after a configurable number of iterations to guarantee termination
//! under degeneracy.

use crate::problem::{Cmp, Problem, Sense};
use crate::solution::{LpError, Solution};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the simplex.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexConfig {
    /// Hard cap on pivots per phase.
    pub max_iterations: usize,
    /// Pivot/zero tolerance.
    pub eps: f64,
    /// After this many pivots in a phase, switch from Dantzig to Bland's
    /// anti-cycling rule.
    pub bland_after: usize,
    /// Drop provably-zero columns before building the tableau (sound for
    /// any problem; a large win on the slot-indexed LP, where a third of
    /// the `y` variables have zero reward).
    pub presolve: bool,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50_000,
            eps: 1e-9,
            bland_after: 10_000,
            presolve: true,
        }
    }
}

/// Dense tableau: `m` rows over `n_total` columns plus the rhs, a cost row,
/// and the current basis.
struct Tableau {
    m: usize,
    n_total: usize,
    /// First artificial column index; columns `>= art_start` never enter.
    art_start: usize,
    a: Vec<f64>, // m x n_total, row-major
    b: Vec<f64>,
    cost: Vec<f64>, // reduced costs, length n_total
    z: f64,         // current objective value (of the phase's cost)
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n_total + c]
    }

    /// Installs a phase cost vector `c` and reduces it against the current
    /// basis so basic columns have zero reduced cost.
    fn install_cost(&mut self, c: &[f64]) {
        self.cost.clear();
        self.cost.extend_from_slice(c);
        self.cost.resize(self.n_total, 0.0);
        self.z = 0.0;
        for r in 0..self.m {
            let cb = self.cost[self.basis[r]];
            if cb != 0.0 {
                let row = &self.a[r * self.n_total..(r + 1) * self.n_total];
                for (j, cj) in self.cost.iter_mut().enumerate() {
                    *cj -= cb * row[j];
                }
                self.z -= cb * self.b[r];
            }
        }
    }

    /// One pivot on (row, col).
    fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n_total;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > 0.0, "zero pivot");
        // Normalize the pivot row.
        {
            let r = &mut self.a[row * n..(row + 1) * n];
            let inv = 1.0 / pivot_val;
            for v in r.iter_mut() {
                *v *= inv;
            }
            self.b[row] *= inv;
        }
        // Eliminate the pivot column elsewhere.
        for k in 0..self.m {
            if k == row {
                continue;
            }
            let factor = self.at(k, col);
            if factor != 0.0 {
                let (head, tail) = self.a.split_at_mut(k.max(row) * n);
                let (src, dst) = if row < k {
                    (&head[row * n..row * n + n], &mut tail[..n])
                } else {
                    (&tail[..n], &mut head[k * n..k * n + n])
                };
                for (d, s) in dst.iter_mut().zip(src) {
                    *d -= factor * s;
                }
                self.b[k] -= factor * self.b[row];
            }
        }
        // Cost row.
        let factor = self.cost[col];
        if factor != 0.0 {
            let src = &self.a[row * n..(row + 1) * n];
            for (c, s) in self.cost.iter_mut().zip(src) {
                *c -= factor * s;
            }
            self.z -= factor * self.b[row];
        }
        self.basis[row] = col;
    }

    /// Runs pivots until optimal / unbounded / iteration cap.
    fn optimize(&mut self, config: &SimplexConfig) -> Result<(), LpError> {
        for iter in 0..config.max_iterations {
            let bland = iter >= config.bland_after;
            // Entering column: artificials never re-enter. Dantzig takes
            // the most negative reduced cost; costs within `eps` of it tie
            // and the lowest index wins, so reruns — and the revised
            // solver, which recomputes reduced costs from scratch — pivot
            // identically.
            let entering: Option<usize> = if bland {
                // Bland: first improving index.
                (0..self.art_start).find(|&j| self.cost[j] < -config.eps)
            } else {
                let mut best = 0.0f64;
                for j in 0..self.art_start {
                    if self.cost[j] < best {
                        best = self.cost[j];
                    }
                }
                if best < -config.eps {
                    (0..self.art_start).find(|&j| self.cost[j] <= best + config.eps)
                } else {
                    None
                }
            };
            let Some(col) = entering else {
                return Ok(()); // optimal
            };
            // Ratio test; ties broken by smallest basis index (lexical
            // safeguard that complements Bland's rule).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a_rc = self.at(r, col);
                if a_rc > config.eps {
                    let ratio = self.b[r] / a_rc;
                    let better = ratio < best_ratio - config.eps
                        || (ratio < best_ratio + config.eps
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            note_pivot();
        }
        Err(LpError::IterationLimit)
    }
}

thread_local! {
    /// Cumulative pivots performed on this thread, across both phases
    /// and branch-and-bound node relaxations. A pivot is O(m·n) dense
    /// row work, so the single cell increment is free by comparison and
    /// stays always-on.
    static PIVOTS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

pub(crate) fn note_pivot() {
    PIVOTS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Total simplex pivots performed by the calling thread so far (a
/// monotonically increasing count; callers diff it around a solve to
/// attribute iterations to that solve).
pub fn pivots_performed() -> u64 {
    PIVOTS.with(std::cell::Cell::get)
}

thread_local! {
    /// Cumulative basis refactorizations on this thread (revised simplex
    /// only — the dense tableau never refactorizes). Same diff-around-a-
    /// solve contract as [`pivots_performed`].
    static REFACTORS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

pub(crate) fn note_refactor() {
    REFACTORS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Total basis refactorizations performed by the calling thread so far.
pub fn refactors_performed() -> u64 {
    REFACTORS.with(std::cell::Cell::get)
}

/// A variable can be fixed to 0 without losing optimality when it cannot
/// help the objective (sense-adjusted coefficient pulls the wrong way) and
/// cannot help feasibility: in every `≤` row (after rhs normalization) its
/// coefficient only consumes slack, and it does not appear in any `≥`/`=`
/// row. Returns the keep-mask.
fn presolve_mask(problem: &Problem) -> Vec<bool> {
    let n = problem.var_count();
    let helps_objective = |j: usize| match problem.sense() {
        Sense::Maximize => problem.objective_vec()[j] > 0.0,
        Sense::Minimize => problem.objective_vec()[j] < 0.0,
    };
    let mut keep: Vec<bool> = (0..n).map(helps_objective).collect();
    for row in problem.rows_vec() {
        // Normalized cmp/coefficient signs (rhs < 0 flips both).
        let flip = row.rhs < 0.0;
        let cmp = match (row.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Le, true) | (Cmp::Ge, false) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        for &(v, c) in &row.coeffs {
            let c = if flip { -c } else { c };
            let blocks_drop = match cmp {
                Cmp::Le => c < 0.0,            // could relax the row: must keep
                Cmp::Ge | Cmp::Eq => c != 0.0, // could be needed for feasibility
            };
            if blocks_drop {
                keep[v] = true;
            }
        }
    }
    keep
}

/// Solves `problem`, translating to/from the internal minimization form.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`] (in the problem's own
/// sense), or [`LpError::IterationLimit`].
pub fn solve(problem: &Problem, config: &SimplexConfig) -> Result<Solution, LpError> {
    // Presolve: solve the column-reduced problem and scatter zeros back.
    if config.presolve {
        let keep = presolve_mask(problem);
        if keep.iter().any(|&k| !k) {
            let mut reduced = Problem::new(problem.sense());
            let mut map = vec![None; problem.var_count()];
            for (j, &k) in keep.iter().enumerate() {
                if k {
                    let v = reduced.add_var(problem.objective_vec()[j]);
                    if let Some(u) = problem.upper_bounds_vec()[j] {
                        reduced.set_upper_bound(v, u);
                    }
                    map[j] = Some(v);
                }
            }
            for row in problem.rows_vec() {
                let coeffs: Vec<_> = row
                    .coeffs
                    .iter()
                    .filter_map(|&(v, c)| map[v].map(|nv| (nv, c)))
                    .collect();
                // Dropped variables are fixed at 0, so the row carries over
                // with the surviving coefficients and the same rhs.
                reduced.add_constraint(coeffs, row.cmp, row.rhs);
            }
            let inner = SimplexConfig {
                presolve: false,
                ..*config
            };
            let sol = solve(&reduced, &inner)?;
            let mut values = vec![0.0; problem.var_count()];
            for (j, m) in map.iter().enumerate() {
                if let Some(v) = m {
                    values[j] = sol.value(*v);
                }
            }
            let duals = sol.duals().to_vec();
            return Ok(Solution::with_duals(sol.objective(), values, duals));
        }
    }

    let n = problem.var_count();

    // Collect rows: explicit constraints plus upper-bound rows.
    struct NormRow {
        coeffs: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<NormRow> = problem
        .rows_vec()
        .iter()
        .map(|r| NormRow {
            coeffs: r.coeffs.clone(),
            cmp: r.cmp,
            rhs: r.rhs,
        })
        .collect();
    for (i, ub) in problem.upper_bounds_vec().iter().enumerate() {
        if let Some(u) = ub {
            rows.push(NormRow {
                coeffs: vec![(i, 1.0)],
                cmp: Cmp::Le,
                rhs: *u,
            });
        }
    }
    // Normalize to rhs >= 0, remembering which rows flipped (their dual
    // values flip back at extraction).
    let mut negated = vec![false; rows.len()];
    for (r, row) in rows.iter_mut().enumerate() {
        if row.rhs < 0.0 {
            negated[r] = true;
            row.rhs = -row.rhs;
            for c in &mut row.coeffs {
                c.1 = -c.1;
            }
            row.cmp = match row.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    let n_slack = rows.iter().filter(|r| r.cmp == Cmp::Le).count();
    let n_surplus = rows.iter().filter(|r| r.cmp == Cmp::Ge).count();
    let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let art_start = n + n_slack + n_surplus;
    let n_total = art_start + n_art;

    let mut t = Tableau {
        m,
        n_total,
        art_start,
        a: vec![0.0; m * n_total],
        b: vec![0.0; m],
        cost: Vec::new(),
        z: 0.0,
        basis: vec![0; m],
    };

    let mut next_slack = n;
    let mut next_surplus = n + n_slack;
    let mut next_art = art_start;
    // Per row: the auxiliary column whose phase-2 reduced cost encodes the
    // row's dual value, and the sign relating it to `y_i` (internal min
    // convention).
    let mut dual_col: Vec<(usize, f64)> = Vec::with_capacity(m);
    for (r, row) in rows.iter().enumerate() {
        for &(v, c) in &row.coeffs {
            t.a[r * n_total + v] += c;
        }
        t.b[r] = row.rhs;
        match row.cmp {
            Cmp::Le => {
                t.a[r * n_total + next_slack] = 1.0;
                t.basis[r] = next_slack;
                // d_slack = 0 - y·e_i = -y_i.
                dual_col.push((next_slack, -1.0));
                next_slack += 1;
            }
            Cmp::Ge => {
                t.a[r * n_total + next_surplus] = -1.0;
                t.a[r * n_total + next_art] = 1.0;
                t.basis[r] = next_art;
                // d_surplus = 0 - y·(-e_i) = +y_i.
                dual_col.push((next_surplus, 1.0));
                next_surplus += 1;
                next_art += 1;
            }
            Cmp::Eq => {
                t.a[r * n_total + next_art] = 1.0;
                t.basis[r] = next_art;
                // d_art = 0 - y·e_i = -y_i (artificials cost 0 in phase 2).
                dual_col.push((next_art, -1.0));
                next_art += 1;
            }
        }
    }

    // Phase 1: minimize the artificial sum.
    if n_art > 0 {
        let mut c1 = vec![0.0; n_total];
        for c in c1.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        t.install_cost(&c1);
        t.optimize(config)?;
        // install_cost tracked -z; phase-1 objective is c1·x = -t.z? No:
        // we maintained z as the *negated* accumulation; recompute the
        // artificial mass directly from the basis for clarity.
        let art_mass: f64 = (0..t.m)
            .filter(|&r| t.basis[r] >= art_start)
            .map(|r| t.b[r])
            .sum();
        if art_mass > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining (degenerate) artificials out of the basis where a
        // non-zero non-artificial pivot exists; all-zero rows are redundant
        // and stay harmlessly basic at value 0.
        for r in 0..t.m {
            if t.basis[r] >= art_start {
                if let Some(col) = (0..art_start).find(|&j| t.at(r, j).abs() > config.eps) {
                    t.pivot(r, col);
                    note_pivot();
                }
            }
        }
    }

    // Phase 2: minimize the (sense-adjusted) objective.
    let sign = match problem.sense() {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    let mut c2 = vec![0.0; n_total];
    for (j, &c) in problem.objective_vec().iter().enumerate() {
        c2[j] = sign * c;
    }
    t.install_cost(&c2);
    // Unbounded in the internal minimization is unbounded in the user's
    // sense as well, so errors pass through unchanged.
    t.optimize(config)?;

    let mut x = vec![0.0; n];
    for r in 0..t.m {
        let v = t.basis[r];
        if v < n {
            // Numerical dust below zero is clamped.
            x[v] = t.b[r].max(0.0);
        }
    }
    let objective = problem.objective_at(&x);

    // Dual values: the phase-2 reduced cost of each row's auxiliary column
    // encodes y_i in the internal minimization; translate back through the
    // rhs-normalization flip and the sense flip, and keep only the
    // explicit constraint rows (upper-bound rows were appended last).
    let explicit = problem.constraint_count();
    let mut duals = Vec::with_capacity(explicit);
    for (r, &(col, to_y)) in dual_col.iter().enumerate().take(explicit) {
        let y_internal = t.cost[col] * to_y;
        let unflip = if negated[r] { -1.0 } else { 1.0 };
        duals.push(sign * y_internal * unflip);
    }
    Ok(Solution::with_duals(objective, x, duals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn presolve_drops_useless_columns_without_changing_the_optimum() {
        // max 3x + 0y - z  s.t. x + y + z <= 4: y and z can never help.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(0.0);
        let z = p.add_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Le, 4.0);
        let keep = super::presolve_mask(&p);
        assert_eq!(keep, vec![true, false, false]);
        let with = p.solve_with(&SimplexConfig::default()).unwrap();
        let without = p
            .solve_with(&SimplexConfig {
                presolve: false,
                ..Default::default()
            })
            .unwrap();
        assert_close(with.objective(), 12.0);
        assert_close(with.objective(), without.objective());
        assert_eq!(with.value(y), 0.0);
        assert_eq!(with.value(z), 0.0);
        assert_eq!(with.duals().len(), 1);
        assert_close(with.duals()[0], without.duals()[0]);
    }

    #[test]
    fn presolve_keeps_columns_needed_for_feasibility() {
        // min y s.t. x + y >= 3, x <= 1: y has cost but is needed; x is
        // free to use (cost 0) but appears in a >= row, so it must stay.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        let keep = super::presolve_mask(&p);
        assert_eq!(keep, vec![true, true]);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 2.0);
    }

    #[test]
    fn presolve_respects_negative_rhs_flips() {
        // x - y <= -2 normalizes to y - x >= 2: x (cost 0) participates in
        // a (normalized) >= row and must be kept.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(0.0);
        let y = p.add_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, -2.0);
        let keep = super::presolve_mask(&p);
        assert_eq!(keep, vec![true, true]);
        let s = p.solve().unwrap();
        // Optimum: y = 2, x = 0 → objective -2.
        assert_close(s.objective(), -2.0);
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), z=36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → (4, 0)? cost 8 vs (1,3):
        // 2+9=11; optimum x=4,y=0 → 8.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0);
        let y = p.add_var(3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x - y = 1 → (2, 1), z = 3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 3.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, -1.0), (y, 1.0)], Cmp::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2 with max x + 0y, x <= 5 → x + ... need y >= x + 2;
        // y unbounded? y has no cost; max x s.t. y >= x + 2, x <= 5 → x = 5.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, -2.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 5.0);
        assert!(s.value(y) >= 7.0 - 1e-6);
    }

    #[test]
    fn upper_bounds_enforced() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.set_upper_bound(x, 0.5);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 0.5);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 1.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new(Sense::Maximize);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 twice: redundant artificial row must not break phase 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective(), 4.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn solution_is_feasible_for_random_like_instance() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| p.add_var(1.0 + i as f64 * 0.3)).collect();
        for k in 0..4 {
            let coeffs = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i + k) % 3) as f64 + 0.5))
                .collect();
            p.add_constraint(coeffs, Cmp::Le, 10.0 + k as f64);
        }
        let s = p.solve().unwrap();
        assert!(p.is_feasible(s.values(), 1e-6));
    }

    #[test]
    fn pivot_counter_advances_across_a_solve() {
        let before = pivots_performed();
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
        p.solve().unwrap();
        let delta = pivots_performed() - before;
        assert!(delta > 0, "a non-trivial solve must pivot at least once");
        assert!(delta < 1_000, "tiny LP cannot need {delta} pivots");
    }
}
