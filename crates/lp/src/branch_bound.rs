//! Branch-and-bound over the simplex for problems with **binary** variables.
//!
//! This is the paper's "exact solution" engine: ILP-RM instances are 0/1
//! assignment programs, solved here by LP relaxation + depth-first
//! branching on the most fractional binary variable, with incumbent pruning.

use crate::problem::{Cmp, Problem, Sense, VarId};
use crate::simplex::SimplexConfig;
use crate::solution::{LpError, Solution};
use serde::{Deserialize, Serialize};

/// Tuning knobs for branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBoundConfig {
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Integrality tolerance: `x` counts as integral when within this of an
    /// integer.
    pub int_tol: f64,
    /// Simplex settings used at every node.
    pub simplex: SimplexConfig,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            int_tol: 1e-6,
            simplex: SimplexConfig::default(),
        }
    }
}

/// Solves `problem` with the listed variables restricted to `{0, 1}`.
///
/// Non-listed variables stay continuous. The `problem` itself is not
/// mutated; branching adds equality rows on copies.
///
/// # Errors
///
/// [`LpError::Infeasible`] if no feasible integral point exists,
/// [`LpError::Unbounded`] if the relaxation is unbounded,
/// [`LpError::NodeLimit`] if the node budget is exhausted before the tree
/// is closed.
pub fn solve_binary(
    problem: &Problem,
    binaries: &[VarId],
    config: &BranchBoundConfig,
) -> Result<Solution, LpError> {
    // Every binary gets an upper bound of 1 in the root relaxation.
    let mut root = problem.clone();
    for &v in binaries {
        root.set_upper_bound(v, 1.0);
    }

    let maximizing = root.sense() == Sense::Maximize;
    let mut incumbent: Option<Solution> = None;
    let mut nodes_used = 0usize;

    // DFS stack of (problem-with-fixings, fixed-so-far description).
    let mut stack: Vec<Problem> = vec![root];

    while let Some(node) = stack.pop() {
        if nodes_used >= config.max_nodes {
            return incumbent.ok_or(LpError::NodeLimit);
        }
        nodes_used += 1;

        let relax = match node.solve_with(&config.simplex) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };

        // Bound: prune if the relaxation cannot beat the incumbent.
        if let Some(best) = &incumbent {
            let no_better = if maximizing {
                relax.objective() <= best.objective() + 1e-9
            } else {
                relax.objective() >= best.objective() - 1e-9
            };
            if no_better {
                continue;
            }
        }

        // Most fractional binary.
        let fractional = binaries
            .iter()
            .map(|&v| (v, relax.value(v)))
            .filter(|&(_, x)| (x - x.round()).abs() > config.int_tol)
            .max_by(|a, b| {
                let fa = (a.1 - a.1.round()).abs();
                let fb = (b.1 - b.1.round()).abs();
                fa.partial_cmp(&fb).expect("fractions are finite")
            });

        match fractional {
            None => {
                // Integral: candidate incumbent (round off numerical dust).
                let better = incumbent.as_ref().is_none_or(|best| {
                    if maximizing {
                        relax.objective() > best.objective() + 1e-9
                    } else {
                        relax.objective() < best.objective() - 1e-9
                    }
                });
                if better {
                    incumbent = Some(relax.strip_duals());
                }
            }
            Some((v, x)) => {
                // Branch: explore the rounding-preferred side last so it is
                // popped first (DFS visits it sooner, improving pruning).
                let mut fix0 = node.clone();
                fix0.add_constraint(vec![(v, 1.0)], Cmp::Eq, 0.0);
                let mut fix1 = node;
                fix1.add_constraint(vec![(v, 1.0)], Cmp::Eq, 1.0);
                if x >= 0.5 {
                    stack.push(fix0);
                    stack.push(fix1);
                } else {
                    stack.push(fix1);
                    stack.push(fix0);
                }
            }
        }
    }

    incumbent.ok_or(LpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// 0/1 knapsack: max Σ v_i x_i s.t. Σ w_i x_i <= cap.
    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (Problem, Vec<VarId>) {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<VarId> = values.iter().map(|&v| p.add_var(v)).collect();
        p.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(),
            Cmp::Le,
            cap,
        );
        (p, vars)
    }

    /// Brute-force knapsack optimum for cross-checking.
    fn brute_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut v, mut w) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= cap + 1e-12 {
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn small_knapsack_exact() {
        let values = [10.0, 13.0, 7.0, 8.0];
        let weights = [3.0, 4.0, 2.0, 3.0];
        let (p, vars) = knapsack(&values, &weights, 7.0);
        let s = solve_binary(&p, &vars, &BranchBoundConfig::default()).unwrap();
        assert_close(s.objective(), brute_knapsack(&values, &weights, 7.0));
        for &v in &vars {
            let x = s.value(v);
            assert!(x.abs() < 1e-6 || (x - 1.0).abs() < 1e-6, "non-binary {x}");
        }
    }

    #[test]
    fn knapsack_family_matches_brute_force() {
        // Deterministic pseudo-random family (no RNG dependency needed).
        for seed in 0..20u64 {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0 + 0.5
            };
            let n = 8;
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let weights: Vec<f64> = (0..n).map(|_| next()).collect();
            let cap = weights.iter().sum::<f64>() / 2.0;
            let (p, vars) = knapsack(&values, &weights, cap);
            let s = solve_binary(&p, &vars, &BranchBoundConfig::default()).unwrap();
            assert_close(s.objective(), brute_knapsack(&values, &weights, cap));
        }
    }

    #[test]
    fn assignment_with_side_constraints() {
        // Two requests, two stations; each request at most one station,
        // station capacities exclude double assignment on station 0.
        let mut p = Problem::new(Sense::Maximize);
        let x00 = p.add_var(5.0);
        let x01 = p.add_var(3.0);
        let x10 = p.add_var(4.0);
        let x11 = p.add_var(1.0);
        p.add_constraint(vec![(x00, 1.0), (x01, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x10, 1.0), (x11, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x00, 1.0), (x10, 1.0)], Cmp::Le, 1.0); // station 0 fits one
        let vars = vec![x00, x01, x10, x11];
        let s = solve_binary(&p, &vars, &BranchBoundConfig::default()).unwrap();
        // Best: x00=1 (5) + x11=1 (1) = 6, or x10=1 (4) + x01=1 (3) = 7.
        assert_close(s.objective(), 7.0);
        assert_close(s.value(x10), 1.0);
        assert_close(s.value(x01), 1.0);
    }

    #[test]
    fn infeasible_integer_program() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        // 0.4 <= x <= 0.6 has no binary point.
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.4);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.6);
        let err = solve_binary(&p, &[x], &BranchBoundConfig::default()).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn continuous_vars_stay_continuous() {
        // max x + y, x binary, y <= 0.5 continuous, x + y <= 1.2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.set_upper_bound(y, 0.5);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.2);
        let s = solve_binary(&p, &[x], &BranchBoundConfig::default()).unwrap();
        assert_close(s.objective(), 1.2);
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 0.2);
    }

    #[test]
    fn minimization_ilp() {
        // min x0 + 2 x1 s.t. x0 + x1 >= 1 → pick x0.
        let mut p = Problem::new(Sense::Minimize);
        let x0 = p.add_var(1.0);
        let x1 = p.add_var(2.0);
        p.add_constraint(vec![(x0, 1.0), (x1, 1.0)], Cmp::Ge, 1.0);
        let s = solve_binary(&p, &[x0, x1], &BranchBoundConfig::default()).unwrap();
        assert_close(s.objective(), 1.0);
        assert_close(s.value(x0), 1.0);
    }

    #[test]
    fn node_limit_respected() {
        let values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 1.15, 0.85];
        let weights = [1.0; 8];
        let (p, vars) = knapsack(&values, &weights, 4.0);
        let cfg = BranchBoundConfig {
            max_nodes: 1,
            ..Default::default()
        };
        // One node cannot close the tree; with no incumbent it reports the
        // limit.
        let r = solve_binary(&p, &vars, &cfg);
        assert!(matches!(r, Err(LpError::NodeLimit)) || r.is_ok());
    }
}
