//! Two-phase **sparse revised simplex** with a product-form basis inverse
//! and warm-start support.
//!
//! Where [`crate::simplex`] rebuilds and eliminates a dense `m × n` tableau
//! on every pivot, this solver keeps the constraint matrix in CSC form
//! ([`crate::sparse::CscMatrix`]) and represents the basis inverse as a
//! refactorized dense seed `B₀⁻¹` composed with an *eta file* of rank-one
//! pivot updates. Per iteration it runs one BTRAN (`O(m² + k·m)`), prices
//! every nonbasic column against the sparse matrix (`O(nnz)`), and one
//! FTRAN of the entering column — instead of the tableau's `O(m · n)` row
//! elimination. On the slot-indexed LP (`m ≈ hundreds`, `n ≈ tens of
//! thousands`, a handful of nonzeros per column) that is a
//! couple-orders-of-magnitude cheaper pivot.
//!
//! The standard-form construction, phase structure, pricing rule, and
//! tie-breaks deliberately mirror the dense solver so the two pivot
//! identically and stay byte-comparable oracles for each other:
//! `≤` rows get slacks, `≥` rows a surplus plus an artificial, `=` rows an
//! artificial; rhs is normalized non-negative; Dantzig pricing picks the
//! most negative reduced cost with the **lowest column index** on ties
//! within `eps`, degrading to Bland's rule after `bland_after` pivots; the
//! ratio test breaks ties toward the smallest basis index.
//!
//! Warm starts: [`solve_with_basis`] accepts a [`BasisSnapshot`] from a
//! previous, structurally-similar problem. The snapshot is re-resolved
//! against the new column layout, refactorized, and validated (unique
//! columns, nonsingular, primal feasible, no loaded artificials); any
//! failure falls back to a cold start, so a stale basis costs one
//! factorization, never correctness.

use crate::problem::{Cmp, Problem, Sense};
use crate::simplex::{note_pivot, note_refactor};
use crate::solution::{LpError, Solution};
use crate::sparse::{CscBuilder, CscMatrix};
use serde::{Deserialize, Serialize};

/// Which simplex implementation a caller wants.
///
/// `Dense` is the original tableau solver — kept as the correctness
/// oracle. `Revised` (the default) is this module's sparse solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverKind {
    /// Dense two-phase tableau simplex ([`crate::simplex`]).
    Dense,
    /// Sparse revised simplex with eta-file updates (this module).
    #[default]
    Revised,
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Ok(Self::Dense),
            "revised" => Ok(Self::Revised),
            other => Err(format!("unknown solver kind {other:?} (dense|revised)")),
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Dense => "dense",
            Self::Revised => "revised",
        })
    }
}

/// Tuning knobs for the revised simplex.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevisedConfig {
    /// Hard cap on pivots per phase.
    pub max_iterations: usize,
    /// Pivot/zero tolerance.
    pub eps: f64,
    /// After this many pivots in a phase, switch from Dantzig to Bland's
    /// anti-cycling rule.
    pub bland_after: usize,
    /// Refactorize `B₀⁻¹` (and drop the eta file) after this many etas.
    /// Bounds both per-FTRAN work and accumulated drift.
    pub refactor_every: usize,
    /// Primal feasibility tolerance for accepting a warm basis.
    pub feas_tol: f64,
}

impl Default for RevisedConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50_000,
            eps: 1e-9,
            bland_after: 10_000,
            refactor_every: 64,
            feas_tol: 1e-7,
        }
    }
}

/// A basis member, named structurally so it survives re-indexing between
/// two problems that share row/variable *identities* but not positions.
///
/// Row indices refer to the solver's internal row order: explicit
/// constraints in insertion order, then upper-bound rows in variable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BasisCol {
    /// Decision variable by dense index.
    Structural(usize),
    /// The slack of a `≤` row.
    Slack(usize),
    /// The surplus of a `≥` row.
    Surplus(usize),
    /// The artificial of a `≥`/`=` row.
    Artificial(usize),
}

/// The optimal basis of a solved problem — one [`BasisCol`] per internal
/// row, in row order. Feed it back via [`solve_with_basis`] to warm-start
/// a neighboring problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasisSnapshot {
    /// `cols[r]` is the basic column of row `r`.
    pub cols: Vec<BasisCol>,
}

/// How a [`solve_with_basis`] call actually started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// No snapshot was offered; cold start.
    Cold,
    /// The snapshot validated and phase 1 was skipped.
    Warm,
    /// A snapshot was offered but failed validation; cold start.
    FellBack,
}

/// Standard form shared by both phases: normalized rows and the full CSC
/// matrix over structural + slack + surplus + artificial columns.
struct StdForm {
    n: usize,
    m: usize,
    art_start: usize,
    n_total: usize,
    csc: CscMatrix,
    rhs: Vec<f64>,
    negated: Vec<bool>,
    init_basis: Vec<usize>,
    slack_of_row: Vec<Option<usize>>,
    surplus_of_row: Vec<Option<usize>>,
    art_of_row: Vec<Option<usize>>,
}

impl StdForm {
    fn build(problem: &Problem) -> Self {
        let n = problem.var_count();

        struct NormRow {
            coeffs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<NormRow> = problem
            .rows_vec()
            .iter()
            .map(|r| NormRow {
                coeffs: r.coeffs.clone(),
                cmp: r.cmp,
                rhs: r.rhs,
            })
            .collect();
        for (i, ub) in problem.upper_bounds_vec().iter().enumerate() {
            if let Some(u) = ub {
                rows.push(NormRow {
                    coeffs: vec![(i, 1.0)],
                    cmp: Cmp::Le,
                    rhs: *u,
                });
            }
        }
        let mut negated = vec![false; rows.len()];
        for (r, row) in rows.iter_mut().enumerate() {
            if row.rhs < 0.0 {
                negated[r] = true;
                row.rhs = -row.rhs;
                for c in &mut row.coeffs {
                    c.1 = -c.1;
                }
                row.cmp = match row.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows.len();
        let n_slack = rows.iter().filter(|r| r.cmp == Cmp::Le).count();
        let n_surplus = rows.iter().filter(|r| r.cmp == Cmp::Ge).count();
        let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let art_start = n + n_slack + n_surplus;
        let n_total = art_start + n_art;

        // Transpose the row-major coefficients into per-column entry lists.
        let mut col_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (r, row) in rows.iter().enumerate() {
            for &(v, c) in &row.coeffs {
                col_entries[v].push((r, c));
            }
        }
        let nnz_hint = rows.iter().map(|r| r.coeffs.len()).sum::<usize>() + (n_total - n);
        let mut csc = CscBuilder::new(m, nnz_hint);
        for entries in &col_entries {
            csc.push_column(entries);
        }

        let mut rhs = vec![0.0; m];
        let mut init_basis = vec![0; m];
        let mut slack_of_row = vec![None; m];
        let mut surplus_of_row = vec![None; m];
        let mut art_of_row = vec![None; m];
        // Unit columns come after the structural block, grouped slack /
        // surplus / artificial exactly like the dense solver.
        let mut next_slack = n;
        let mut next_surplus = n + n_slack;
        let mut next_art = art_start;
        for (r, row) in rows.iter().enumerate() {
            rhs[r] = row.rhs;
            match row.cmp {
                Cmp::Le => {
                    slack_of_row[r] = Some(next_slack);
                    init_basis[r] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    surplus_of_row[r] = Some(next_surplus);
                    art_of_row[r] = Some(next_art);
                    init_basis[r] = next_art;
                    next_surplus += 1;
                    next_art += 1;
                }
                Cmp::Eq => {
                    art_of_row[r] = Some(next_art);
                    init_basis[r] = next_art;
                    next_art += 1;
                }
            }
        }
        // Second sweep appends the unit columns in index order so the CSC
        // column numbering matches the dense tableau's layout.
        for (r, s) in slack_of_row.iter().enumerate() {
            if s.is_some() {
                csc.push_unit(r, 1.0);
            }
        }
        for (r, s) in surplus_of_row.iter().enumerate() {
            if s.is_some() {
                csc.push_unit(r, -1.0);
            }
        }
        for (r, a) in art_of_row.iter().enumerate() {
            if a.is_some() {
                csc.push_unit(r, 1.0);
            }
        }

        Self {
            n,
            m,
            art_start,
            n_total,
            csc: csc.finish(),
            rhs,
            negated,
            init_basis,
            slack_of_row,
            surplus_of_row,
            art_of_row,
        }
    }

    /// Maps a structural [`BasisCol`] to this problem's column index.
    fn resolve(&self, col: BasisCol) -> Option<usize> {
        match col {
            BasisCol::Structural(j) => (j < self.n).then_some(j),
            BasisCol::Slack(r) => self.slack_of_row.get(r).copied().flatten(),
            BasisCol::Surplus(r) => self.surplus_of_row.get(r).copied().flatten(),
            BasisCol::Artificial(r) => self.art_of_row.get(r).copied().flatten(),
        }
    }

    /// Inverse of [`StdForm::resolve`] for snapshot extraction.
    fn unresolve(&self, col: usize) -> BasisCol {
        if col < self.n {
            return BasisCol::Structural(col);
        }
        for r in 0..self.m {
            if self.slack_of_row[r] == Some(col) {
                return BasisCol::Slack(r);
            }
            if self.surplus_of_row[r] == Some(col) {
                return BasisCol::Surplus(r);
            }
            if self.art_of_row[r] == Some(col) {
                return BasisCol::Artificial(r);
            }
        }
        unreachable!("column {col} outside every block");
    }
}

/// One product-form update: the basis inverse gains a left factor `E`
/// equal to the identity with column `row` replaced by `col`.
struct Eta {
    row: usize,
    col: Vec<f64>,
}

/// Revised simplex working state.
struct Rsx {
    std: StdForm,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Dense seed inverse `B₀⁻¹`, row-major `m × m`.
    binv0: Vec<f64>,
    etas: Vec<Eta>,
    /// Current basic values `x_B = B⁻¹ b`, updated incrementally.
    xb: Vec<f64>,
}

/// Inverts a dense row-major `m × m` matrix by Gauss-Jordan with partial
/// pivoting. `Err(col)` reports the first column with no usable pivot —
/// i.e. the (numerically) dependent basis position — so callers can
/// repair it.
fn invert(mut a: Vec<f64>, m: usize, eps: f64) -> Result<Vec<f64>, usize> {
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&p, &q| {
                a[p * m + col]
                    .abs()
                    .partial_cmp(&a[q * m + col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty pivot range");
        if a[pivot_row * m + col].abs() <= eps {
            return Err(col);
        }
        if pivot_row != col {
            for j in 0..m {
                a.swap(col * m + j, pivot_row * m + j);
                inv.swap(col * m + j, pivot_row * m + j);
            }
        }
        let p = a[col * m + col];
        let pinv = 1.0 / p;
        for j in 0..m {
            a[col * m + j] *= pinv;
            inv[col * m + j] *= pinv;
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = a[r * m + col];
            if f != 0.0 {
                for j in 0..m {
                    a[r * m + j] -= f * a[col * m + j];
                    inv[r * m + j] -= f * inv[col * m + j];
                }
            }
        }
    }
    Ok(inv)
}

impl Rsx {
    /// Cold state: the all-slack/artificial basis is `B = I`.
    fn cold(std: StdForm) -> Self {
        let m = std.m;
        let basis = std.init_basis.clone();
        let mut in_basis = vec![false; std.n_total];
        for &c in &basis {
            in_basis[c] = true;
        }
        let mut binv0 = vec![0.0; m * m];
        for i in 0..m {
            binv0[i * m + i] = 1.0;
        }
        let xb = std.rhs.clone();
        Self {
            std,
            basis,
            in_basis,
            binv0,
            etas: Vec::new(),
            xb,
        }
    }

    /// Tries to install `cols` as a *rank-valid* starting basis of `std`;
    /// `Err` returns the standard form so the caller can start cold.
    ///
    /// A snapshot carried across a column delta is a *hint*, not a valid
    /// basis: surviving columns can have become linearly dependent (two
    /// columns of one request at the same station differ by a prefix-row
    /// unit, so a departed column's slack fallback completes a dependence
    /// in practice), and the implied vertex can have drifted primal
    /// infeasible.
    ///
    /// The cheap common case comes first: place each snapshot member
    /// directly at the row it was paired with (an exact re-solve then
    /// reproduces the basis verbatim), fill unresolved rows with their own
    /// unit column, and factorize once — the factorization itself is the
    /// rank check. A singular placement drops into the rank-revealing
    /// [`Self::crash_install`] repair. Either way the returned basis may
    /// be primal *infeasible* (negative basic values); the caller repairs
    /// that with dual pivots ([`Self::dual_repair`]) or falls back cold.
    // Err moves the StdForm back out so a fallback cold start reuses it
    // instead of rebuilding — a move, never a copy.
    #[allow(clippy::result_large_err)]
    fn try_warm(std: StdForm, cols: &[BasisCol], config: &RevisedConfig) -> Result<Self, StdForm> {
        let m = std.m;
        if cols.len() != m || m == 0 {
            return Err(std);
        }
        // Resolve snapshot members against the new layout, keeping the
        // row each was paired with; duplicates collapse to one.
        let mut candidates: Vec<(usize, usize)> = Vec::with_capacity(m);
        let mut claimed = vec![false; std.n_total];
        for (r, &bc) in cols.iter().enumerate() {
            if let Some(c) = std.resolve(bc) {
                if !claimed[c] {
                    claimed[c] = true;
                    candidates.push((c, r));
                }
            }
        }

        // Fast path: direct row-keyed placement, one factorization.
        let mut basis = vec![usize::MAX; m];
        for &(c, r) in &candidates {
            basis[r] = c;
        }
        for (r, slot) in basis.iter_mut().enumerate() {
            if *slot == usize::MAX {
                let Some(unit) = Self::unit_fill(&std, r, &claimed) else {
                    return Err(std);
                };
                claimed[unit] = true;
                *slot = unit;
            }
        }
        let mut b_mat = vec![0.0; m * m];
        for (r, &c) in basis.iter().enumerate() {
            for (i, v) in std.csc.column(c) {
                b_mat[i * m + r] = v;
            }
        }
        if let Ok(binv0) = invert(b_mat, m, config.eps) {
            let mut xb = vec![0.0; m];
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..m {
                    acc += binv0[i * m + j] * std.rhs[j];
                }
                xb[i] = acc;
            }
            let mut in_basis = vec![false; std.n_total];
            for &c in &basis {
                in_basis[c] = true;
            }
            return Ok(Self {
                std,
                basis,
                in_basis,
                binv0,
                etas: Vec::new(),
                xb,
            });
        }
        Self::crash_install(std, &candidates, config)
    }

    /// Rank-revealing crash repair for a snapshot the direct placement
    /// could not install (dependent survivors).
    ///
    /// Greedily accepts candidate columns while they stay independent,
    /// fills every unpivoted row with its own unit column, and
    /// factorizes. A stray unit collision or a near-dependence the
    /// crash's eps missed bans the offender and reruns; the ban set only
    /// grows, so the loop cannot cycle. The returned basis is rank-valid
    /// but — like the fast path — may be primal infeasible; feasibility
    /// is the caller's dual-repair problem, not this installer's.
    #[allow(clippy::result_large_err)] // same Err-returns-ownership contract as try_warm
    fn crash_install(
        std: StdForm,
        candidates: &[(usize, usize)],
        config: &RevisedConfig,
    ) -> Result<Self, StdForm> {
        let m = std.m;
        let validated = (|| {
            let mut excluded = vec![false; std.n_total];
            'round: for _round in 0..16 {
                // Greedy elimination: transformed copies of accepted
                // columns, each owning one pivot row; dependent candidates
                // are dropped.
                let mut transformed: Vec<Vec<f64>> = Vec::with_capacity(m);
                let mut pivot_row_of: Vec<usize> = Vec::with_capacity(m);
                let mut accepted: Vec<usize> = Vec::with_capacity(m);
                let mut row_pivoted = vec![false; m];
                for &(c, snapshot_row) in candidates {
                    if excluded[c] {
                        continue;
                    }
                    let mut v = vec![0.0; m];
                    std.csc.scatter_column(c, &mut v);
                    for (t, &pr) in transformed.iter().zip(&pivot_row_of) {
                        let f = v[pr] / t[pr];
                        if f != 0.0 {
                            for i in 0..m {
                                v[i] -= f * t[i];
                            }
                        }
                    }
                    // Prefer the row the snapshot paired this column with;
                    // otherwise the strongest unpivoted row.
                    let preferred = (!row_pivoted[snapshot_row]
                        && v[snapshot_row].abs() > config.eps)
                        .then_some(snapshot_row);
                    let best = preferred.or_else(|| {
                        (0..m)
                            .filter(|&i| !row_pivoted[i] && v[i].abs() > config.eps)
                            .max_by(|&a, &b| {
                                v[a].abs()
                                    .partial_cmp(&v[b].abs())
                                    .expect("finite eliminations")
                            })
                    });
                    if let Some(pr) = best {
                        row_pivoted[pr] = true;
                        pivot_row_of.push(pr);
                        transformed.push(v);
                        accepted.push(c);
                    }
                    // else: dependent on earlier candidates — drop.
                }

                // Basis ordered by pivot row; unpivoted rows take their own
                // unit column (the cold choice for that row). A fill unit
                // already basic as a stray candidate gets banned instead,
                // freeing it for its home row next round.
                let mut basis = vec![usize::MAX; m];
                for (&c, &pr) in accepted.iter().zip(&pivot_row_of) {
                    basis[pr] = c;
                }
                let mut in_basis = vec![false; std.n_total];
                for (r, slot) in basis.iter_mut().enumerate() {
                    if *slot == usize::MAX {
                        let unit = std.slack_of_row[r].or(std.art_of_row[r])?;
                        if in_basis[unit] {
                            excluded[unit] = true;
                            continue 'round;
                        }
                        *slot = unit;
                    }
                    if in_basis[*slot] {
                        excluded[*slot] = true;
                        continue 'round;
                    }
                    in_basis[*slot] = true;
                }

                let mut b_mat = vec![0.0; m * m];
                for (r, &c) in basis.iter().enumerate() {
                    for (i, v) in std.csc.column(c) {
                        b_mat[i * m + r] = v;
                    }
                }
                let binv0 = match invert(b_mat, m, config.eps) {
                    Ok(b) => b,
                    Err(pos) => {
                        // Near-dependence the crash's eps missed: ban the
                        // offender and retry, unless it is already banned
                        // (then the factorization is truly stuck).
                        if excluded[basis[pos]] {
                            return None;
                        }
                        excluded[basis[pos]] = true;
                        continue 'round;
                    }
                };
                let mut xb = vec![0.0; m];
                for i in 0..m {
                    let mut acc = 0.0;
                    for j in 0..m {
                        acc += binv0[i * m + j] * std.rhs[j];
                    }
                    xb[i] = acc;
                }
                return Some((basis, in_basis, binv0, xb));
            }
            None
        })();
        match validated {
            Some((basis, in_basis, binv0, xb)) => Ok(Self {
                std,
                basis,
                in_basis,
                binv0,
                etas: Vec::new(),
                xb,
            }),
            None => Err(std),
        }
    }

    /// The unit column (slack, else artificial) owning `row`, skipping any
    /// already marked used.
    fn unit_fill(std: &StdForm, row: usize, used: &[bool]) -> Option<usize> {
        [std.slack_of_row[row], std.art_of_row[row]]
            .into_iter()
            .flatten()
            .find(|&u| !used[u])
    }

    /// FTRAN: `B⁻¹ a_col` for a matrix column.
    fn ftran_col(&self, col: usize) -> Vec<f64> {
        let m = self.std.m;
        let mut x = vec![0.0; m];
        for (r, v) in self.std.csc.column(col) {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi += self.binv0[i * m + r] * v;
            }
        }
        for eta in &self.etas {
            let t = x[eta.row];
            if t != 0.0 {
                for (xi, &ei) in x.iter_mut().zip(&eta.col) {
                    *xi += ei * t;
                }
                // eta.col[row] holds 1/pivot, and the loop above added
                // t·(1/pivot) on top of t itself; correct the pivot row.
                x[eta.row] -= t;
            }
        }
        x
    }

    /// BTRAN: `yᵀ = y₀ᵀ B⁻¹` for a dense row vector.
    fn btran_vec(&self, mut y: Vec<f64>) -> Vec<f64> {
        let m = self.std.m;
        for eta in self.etas.iter().rev() {
            let mut acc = 0.0;
            for (&yi, &ei) in y.iter().zip(&eta.col) {
                acc += yi * ei;
            }
            y[eta.row] = acc;
        }
        let mut z = vec![0.0; m];
        for (i, &yi) in y.iter().enumerate() {
            if yi != 0.0 {
                let row = &self.binv0[i * m..(i + 1) * m];
                for (zj, bij) in z.iter_mut().zip(row) {
                    *zj += yi * bij;
                }
            }
        }
        z
    }

    /// The simplex multipliers `yᵀ = c_Bᵀ B⁻¹` for a phase cost vector.
    fn multipliers(&self, cost: &[f64]) -> Vec<f64> {
        let y0: Vec<f64> = self.basis.iter().map(|&c| cost[c]).collect();
        self.btran_vec(y0)
    }

    /// Rebuilds `B₀⁻¹` from the current basis and clears the eta file.
    fn refactor(&mut self, config: &RevisedConfig) -> Result<(), LpError> {
        note_refactor();
        let m = self.std.m;
        let mut b_mat = vec![0.0; m * m];
        for (r, &c) in self.basis.iter().enumerate() {
            for (i, v) in self.std.csc.column(c) {
                b_mat[i * m + r] = v;
            }
        }
        // A basis reached by valid pivots is nonsingular in exact
        // arithmetic; a singular factorization here means the eta file
        // drifted beyond repair.
        let binv0 = invert(b_mat, m, config.eps).map_err(|_| LpError::IterationLimit)?;
        self.binv0 = binv0;
        self.etas.clear();
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..m {
                acc += self.binv0[i * m + j] * self.std.rhs[j];
            }
            self.xb[i] = acc;
        }
        Ok(())
    }

    /// One pivot: `col` enters at `row`; `d = B⁻¹ a_col` from the caller.
    fn pivot(
        &mut self,
        row: usize,
        col: usize,
        d: &[f64],
        config: &RevisedConfig,
    ) -> Result<(), LpError> {
        let m = self.std.m;
        let dr = d[row];
        debug_assert!(dr.abs() > 0.0, "zero pivot");
        let t = self.xb[row] / dr;
        for (i, (xi, &di)) in self.xb.iter_mut().zip(d).enumerate() {
            if i != row {
                *xi -= di * t;
            }
        }
        self.xb[row] = t;
        let mut col_vec = vec![0.0; m];
        let inv = 1.0 / dr;
        for (ci, &di) in col_vec.iter_mut().zip(d) {
            *ci = -di * inv;
        }
        col_vec[row] = inv;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        self.etas.push(Eta { row, col: col_vec });
        if self.etas.len() >= config.refactor_every {
            self.refactor(config)?;
        }
        Ok(())
    }

    /// Runs pivots on a phase cost until optimal / unbounded / cap.
    fn optimize(&mut self, cost: &[f64], config: &RevisedConfig) -> Result<(), LpError> {
        let art_start = self.std.art_start;
        let mut red = vec![0.0; art_start];
        for iter in 0..config.max_iterations {
            let bland = iter >= config.bland_after;
            let y = self.multipliers(cost);
            // Entering column: artificials never re-enter. Dantzig picks
            // the most negative reduced cost, lowest index on ties within
            // eps — the same deterministic rule as the dense tableau.
            let mut entering: Option<usize> = None;
            if bland {
                for (j, &cj) in cost.iter().enumerate().take(art_start) {
                    if self.in_basis[j] {
                        continue;
                    }
                    if cj - self.std.csc.dot_column(&y, j) < -config.eps {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                self.std.csc.price_into(&y, cost, &self.in_basis, &mut red);
                let mut best = 0.0f64;
                for &dj in &red {
                    if dj < best {
                        best = dj;
                    }
                }
                if best < -config.eps {
                    entering =
                        (0..art_start).find(|&j| !self.in_basis[j] && red[j] <= best + config.eps);
                }
            }
            let Some(col) = entering else {
                return Ok(()); // optimal
            };
            let d = self.ftran_col(col);
            // Ratio test; ties toward the smallest basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (r, &dr) in d.iter().enumerate() {
                if dr > config.eps {
                    let ratio = self.xb[r] / dr;
                    let better = ratio < best_ratio - config.eps
                        || (ratio < best_ratio + config.eps
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col, &d, config)?;
            note_pivot();
        }
        Err(LpError::IterationLimit)
    }

    /// Basic artificial mass (the phase-1 objective at the current point).
    fn artificial_mass(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .filter(|&(&c, _)| c >= self.std.art_start)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Dual-simplex repair of primal infeasibility from a rank-valid warm
    /// basis: while some basic value is negative, that row leaves and the
    /// nonbasic column minimizing the dual ratio `max(d̄_j, 0) / −α_j`
    /// (lowest index on ties) enters.
    ///
    /// A warm basis carried across a small problem delta stays (near)
    /// dual feasible — it was optimal a moment ago — so a handful of dual
    /// pivots walks it back into the feasible region far cheaper than a
    /// cold phase 1. Because the start need not be exactly dual feasible
    /// (arriving columns can price negative), reduced costs are clamped
    /// at zero in the ratio and termination is not guaranteed; the pivot
    /// budget bounds the attempt and `false` tells the caller to start
    /// cold instead. Artificials never enter; they may leave.
    fn dual_repair(&mut self, cost: &[f64], config: &RevisedConfig) -> bool {
        let m = self.std.m;
        let art_start = self.std.art_start;
        let zeros = vec![0.0; art_start];
        let mut red = vec![0.0; art_start];
        let mut neg_alpha = vec![0.0; art_start];
        let budget = (2 * m).max(64);
        for _ in 0..budget {
            // Leaving row: the most negative basic value.
            let mut pos = None;
            let mut most = -config.feas_tol;
            for (r, &v) in self.xb.iter().enumerate() {
                if v < most {
                    most = v;
                    pos = Some(r);
                }
            }
            let Some(pos) = pos else {
                return true; // primal feasible
            };
            let y = self.multipliers(cost);
            self.std.csc.price_into(&y, cost, &self.in_basis, &mut red);
            // Row `pos` of the tableau via one BTRAN; pricing the zero
            // objective against it yields −α_j per nonbasic column.
            let mut e = vec![0.0; m];
            e[pos] = 1.0;
            let beta = self.btran_vec(e);
            self.std
                .csc
                .price_into(&beta, &zeros, &self.in_basis, &mut neg_alpha);
            let mut best: Option<(usize, f64)> = None;
            for (j, (&na, &dj)) in neg_alpha.iter().zip(&red).enumerate().take(art_start) {
                if self.in_basis[j] || na <= config.eps {
                    continue;
                }
                let ratio = dj.max(0.0) / na;
                if best.is_none_or(|(_, b)| ratio < b - config.eps) {
                    best = Some((j, ratio));
                }
            }
            let Some((col, _)) = best else {
                return false; // no dual step exists — give up, start cold
            };
            let d = self.ftran_col(col);
            if d[pos] >= -config.eps || self.pivot(pos, col, &d, config).is_err() {
                return false;
            }
            note_pivot();
        }
        false
    }

    /// Pivots degenerate basic artificials out where a usable column
    /// exists; all-zero rows are redundant and stay harmlessly basic.
    fn drive_out_artificials(&mut self, config: &RevisedConfig) -> Result<(), LpError> {
        for r in 0..self.std.m {
            if self.basis[r] < self.std.art_start {
                continue;
            }
            // Row r of B⁻¹, then ρ_j = β · a_j is the tableau entry the
            // dense solver scans; basic columns give exactly 0.
            let mut e = vec![0.0; self.std.m];
            e[r] = 1.0;
            let beta = self.btran_vec(e);
            let col = (0..self.std.art_start)
                .find(|&j| self.std.csc.dot_column(&beta, j).abs() > config.eps);
            if let Some(col) = col {
                let d = self.ftran_col(col);
                self.pivot(r, col, &d, config)?;
                note_pivot();
            }
        }
        Ok(())
    }
}

/// Solves `problem` cold with the revised simplex.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`] (in the problem's own
/// sense), or [`LpError::IterationLimit`] (also on numerical breakdown).
pub fn solve(problem: &Problem, config: &RevisedConfig) -> Result<Solution, LpError> {
    solve_with_basis(problem, config, None).map(|(sol, _, _)| sol)
}

/// Solves `problem`, optionally warm-starting from a prior basis, and
/// returns the solution together with the optimal basis snapshot and how
/// the solve actually started.
///
/// # Errors
///
/// Same as [`solve`]. A rejected warm basis is not an error — the solver
/// silently falls back to a cold start and reports
/// [`WarmOutcome::FellBack`].
pub fn solve_with_basis(
    problem: &Problem,
    config: &RevisedConfig,
    warm: Option<&BasisSnapshot>,
) -> Result<(Solution, BasisSnapshot, WarmOutcome), LpError> {
    let std_form = StdForm::build(problem);
    let n = std_form.n;
    let n_total = std_form.n_total;
    let n_art = n_total - std_form.art_start;

    // Phase-2 cost up front — a warm basis is repaired against it.
    let sign = match problem.sense() {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    let mut c2 = vec![0.0; n_total];
    for (j, &c) in problem.objective_vec().iter().enumerate() {
        c2[j] = sign * c;
    }

    // A warm install is rank-valid but possibly primal infeasible; dual
    // pivots walk it back into the feasible region. If that stalls, or
    // an artificial still carries weight (the old point violates a
    // `≥`/`=` row of the new problem), start cold instead.
    let (mut rsx, outcome) = match warm {
        Some(snap) => match Rsx::try_warm(std_form, &snap.cols, config) {
            Ok(mut warm_rsx) => {
                if warm_rsx.dual_repair(&c2, config)
                    && warm_rsx.artificial_mass() <= config.feas_tol
                {
                    (warm_rsx, WarmOutcome::Warm)
                } else {
                    (Rsx::cold(StdForm::build(problem)), WarmOutcome::FellBack)
                }
            }
            Err(std_form) => (Rsx::cold(std_form), WarmOutcome::FellBack),
        },
        None => (Rsx::cold(std_form), WarmOutcome::Cold),
    };

    // Phase 1 (cold starts with artificials only): minimize the artificial
    // sum to reach a basic feasible point. A validated warm basis is
    // already feasible with weightless artificials, so it skips straight
    // to phase 2.
    if outcome != WarmOutcome::Warm && n_art > 0 {
        let mut c1 = vec![0.0; rsx.std.n_total];
        for c in c1.iter_mut().skip(rsx.std.art_start) {
            *c = 1.0;
        }
        rsx.optimize(&c1, config)?;
        if rsx.artificial_mass() > config.feas_tol {
            return Err(LpError::Infeasible);
        }
        rsx.drive_out_artificials(config)?;
    }

    // Phase 2: minimize the sense-adjusted objective.
    rsx.optimize(&c2, config)?;

    let mut x = vec![0.0; n];
    for (r, &c) in rsx.basis.iter().enumerate() {
        if c < n {
            x[c] = rsx.xb[r].max(0.0);
        }
    }
    let objective = problem.objective_at(&x);

    // Duals: the final multipliers are the internal row prices; translate
    // through the rhs-normalization flip and the sense flip, keeping only
    // explicit constraint rows (upper-bound rows were appended last).
    let y = rsx.multipliers(&c2);
    let explicit = problem.constraint_count();
    let mut duals = Vec::with_capacity(explicit);
    for (r, &yi) in y.iter().enumerate().take(explicit) {
        let unflip = if rsx.std.negated[r] { -1.0 } else { 1.0 };
        duals.push(sign * yi * unflip);
    }

    let snapshot = BasisSnapshot {
        cols: rsx.basis.iter().map(|&c| rsx.std.unresolve(c)).collect(),
    };
    Ok((Solution::with_duals(objective, x, duals), snapshot, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    fn cfg() -> RevisedConfig {
        RevisedConfig::default()
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), z=36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0);
        let y = p.add_var(3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 3.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&p, &cfg()).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, -1.0), (y, 1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&p, &cfg()).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, -2.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 5.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 5.0);
        assert!(s.value(y) >= 7.0 - 1e-6);
    }

    #[test]
    fn upper_bounds_enforced() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.set_upper_bound(x, 0.5);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 0.5);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 1.0);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 4.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new(Sense::Maximize);
        let s = solve(&p, &cfg()).unwrap();
        assert_close(s.objective(), 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn duals_match_dense() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let dense = p.solve().unwrap();
        let revised = solve(&p, &cfg()).unwrap();
        assert_eq!(dense.duals().len(), revised.duals().len());
        for (d, r) in dense.duals().iter().zip(revised.duals()) {
            assert_close(*d, *r);
        }
    }

    #[test]
    fn frequent_refactorization_is_exact() {
        // refactor_every = 1 discards the eta file after every pivot; the
        // answer must not move.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| p.add_var(1.0 + 0.25 * i as f64)).collect();
        for k in 0..6 {
            let coeffs = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i + k) % 4) as f64 + 0.5))
                .collect();
            p.add_constraint(coeffs, Cmp::Le, 9.0 + k as f64);
        }
        let baseline = solve(&p, &cfg()).unwrap();
        let eager = solve(
            &p,
            &RevisedConfig {
                refactor_every: 1,
                ..cfg()
            },
        )
        .unwrap();
        assert_close(baseline.objective(), eager.objective());
        assert!(p.is_feasible(eager.values(), 1e-6));
    }

    #[test]
    fn warm_restart_from_own_basis_skips_to_optimal() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let (cold, snap, how) = solve_with_basis(&p, &cfg(), None).unwrap();
        assert_eq!(how, WarmOutcome::Cold);
        let before = crate::pivots_performed();
        let (warm, snap2, how2) = solve_with_basis(&p, &cfg(), Some(&snap)).unwrap();
        assert_eq!(how2, WarmOutcome::Warm);
        assert_eq!(
            crate::pivots_performed(),
            before,
            "warm re-solve of the same problem must pivot zero times"
        );
        assert_close(cold.objective(), warm.objective());
        assert_eq!(snap, snap2);
    }

    #[test]
    fn warm_restart_tracks_perturbed_rhs() {
        // Same structure, slightly different capacities: the old basis
        // stays feasible and the warm solve lands on the right optimum.
        let build = |cap: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var(3.0);
            let y = p.add_var(5.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
            p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
            p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, cap);
            p
        };
        let (_, snap, _) = solve_with_basis(&build(18.0), &cfg(), None).unwrap();
        let p2 = build(19.0);
        let (warm, _, how) = solve_with_basis(&p2, &cfg(), Some(&snap)).unwrap();
        assert_eq!(how, WarmOutcome::Warm);
        let cold = solve(&p2, &cfg()).unwrap();
        assert_close(warm.objective(), cold.objective());
        assert!(p2.is_feasible(warm.values(), 1e-6));
    }

    #[test]
    fn stale_warm_basis_falls_back_cold() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
        // Nonsense snapshot: wrong row count and duplicate columns.
        let bad = BasisSnapshot {
            cols: vec![BasisCol::Structural(7), BasisCol::Structural(7)],
        };
        let (sol, _, how) = solve_with_basis(&p, &cfg(), Some(&bad)).unwrap();
        assert_eq!(how, WarmOutcome::FellBack);
        assert_close(sol.objective(), 2.0);
    }

    #[test]
    fn infeasible_warm_basis_falls_back_cold() {
        // A basis whose B⁻¹b goes negative for the new rhs is rejected.
        let build = |rhs: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var(1.0);
            let y = p.add_var(2.0);
            p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, rhs);
            p.add_constraint(vec![(y, 1.0)], Cmp::Le, 3.0);
            p
        };
        let (_, snap, _) = solve_with_basis(&build(5.0), &cfg(), None).unwrap();
        // Shrink the shared row so the old vertex (y=3, slack=2) flips the
        // slack negative.
        let p2 = build(1.0);
        let (sol, _, how) = solve_with_basis(&p2, &cfg(), Some(&snap)).unwrap();
        assert!(matches!(how, WarmOutcome::FellBack | WarmOutcome::Warm));
        let cold = solve(&p2, &cfg()).unwrap();
        assert_close(sol.objective(), cold.objective());
        assert!(p2.is_feasible(sol.values(), 1e-6));
    }

    #[test]
    fn agrees_with_dense_on_a_grid_of_instances() {
        for seed in 0..20u64 {
            let mut p = Problem::new(Sense::Maximize);
            let nv = 3 + (seed % 5) as usize;
            let nc = 2 + (seed % 4) as usize;
            let vars: Vec<_> = (0..nv)
                .map(|i| p.add_var(((seed * 7 + i as u64 * 3) % 11) as f64 * 0.5))
                .collect();
            for k in 0..nc {
                let coeffs: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, ((seed as usize + i * k) % 4) as f64 + 0.5))
                    .collect();
                p.add_constraint(coeffs, Cmp::Le, 5.0 + (seed % 7) as f64);
            }
            let dense = p.solve().unwrap();
            let revised = solve(&p, &cfg()).unwrap();
            assert_close(dense.objective(), revised.objective());
            assert!(p.is_feasible(revised.values(), 1e-6));
        }
    }

    #[test]
    fn solver_kind_parses_and_displays() {
        assert_eq!("dense".parse::<SolverKind>().unwrap(), SolverKind::Dense);
        assert_eq!(
            "Revised".parse::<SolverKind>().unwrap(),
            SolverKind::Revised
        );
        assert!("simplex".parse::<SolverKind>().is_err());
        assert_eq!(SolverKind::default(), SolverKind::Revised);
        assert_eq!(SolverKind::Dense.to_string(), "dense");
    }
}
