//! Typed LP problem builder.

use crate::simplex::{self, SimplexConfig};
use crate::solution::{LpError, Solution};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One linear constraint row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear program over non-negative variables with optional finite upper
/// bounds.
///
/// All variables satisfy `x ≥ 0`; an upper bound set via
/// [`Problem::set_upper_bound`] is enforced as an internal `x ≤ u` row
/// during solving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    sense: Sense,
    objective: Vec<f64>,
    upper_bounds: Vec<Option<f64>>,
    rows: Vec<Row>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            objective: Vec::new(),
            upper_bounds: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a variable `x ≥ 0` with the given objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `obj_coeff` is not finite.
    pub fn add_var(&mut self, obj_coeff: f64) -> VarId {
        assert!(
            obj_coeff.is_finite(),
            "objective coefficient must be finite"
        );
        let id = VarId(self.objective.len());
        self.objective.push(obj_coeff);
        self.upper_bounds.push(None);
        id
    }

    /// Sets a finite upper bound `x ≤ upper` on a variable.
    ///
    /// # Panics
    ///
    /// Panics if `upper` is negative or not finite, or `var` is unknown.
    pub fn set_upper_bound(&mut self, var: VarId, upper: f64) {
        assert!(
            upper.is_finite() && upper >= 0.0,
            "upper bound must be finite and non-negative"
        );
        assert!(var.0 < self.objective.len(), "unknown variable {var}");
        self.upper_bounds[var.0] = Some(upper);
    }

    /// Adds a constraint `Σ coeffs · x  cmp  rhs`.
    ///
    /// Duplicate variable entries are summed.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient or the rhs is not finite, or a variable is
    /// unknown.
    pub fn add_constraint(&mut self, coeffs: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for (v, c) in coeffs {
            assert!(c.is_finite(), "constraint coefficient must be finite");
            assert!(v.0 < self.objective.len(), "unknown variable {v}");
            if let Some(slot) = dense.iter_mut().find(|(idx, _)| *idx == v.0) {
                slot.1 += c;
            } else {
                dense.push((v.0, c));
            }
        }
        self.rows.push(Row {
            coeffs: dense,
            cmp,
            rhs,
        });
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.objective.len()
    }

    /// Number of explicit constraints (upper bounds not included).
    pub fn constraint_count(&self) -> usize {
        self.rows.len()
    }

    /// The optimization sense.
    pub const fn sense(&self) -> Sense {
        self.sense
    }

    /// The objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is unknown.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective[var.0]
    }

    pub(crate) fn objective_vec(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn upper_bounds_vec(&self) -> &[Option<f64>] {
        &self.upper_bounds
    }

    pub(crate) fn rows_vec(&self) -> &[Row] {
        &self.rows
    }

    /// Solves the problem with default simplex settings.
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] when the problem is infeasible, unbounded, or the
    /// iteration limit is hit.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, &SimplexConfig::default())
    }

    /// Solves with explicit simplex settings.
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] when the problem is infeasible, unbounded, or the
    /// iteration limit is hit.
    pub fn solve_with(&self, config: &SimplexConfig) -> Result<Solution, LpError> {
        simplex::solve(self, config)
    }

    /// Evaluates the objective at a candidate point (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != var_count()`.
    pub fn objective_at(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.var_count(), "dimension mismatch");
        self.objective.iter().zip(point).map(|(c, x)| c * x).sum()
    }

    /// Checks whether a point satisfies every constraint and bound within
    /// `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != var_count()`.
    pub fn is_feasible(&self, point: &[f64], tol: f64) -> bool {
        assert_eq!(point.len(), self.var_count(), "dimension mismatch");
        if point.iter().any(|&x| x < -tol) {
            return false;
        }
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(u) = ub {
                if point[i] > u + tol {
                    return false;
                }
            }
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * point[v]).sum();
            match row.cmp {
                Cmp::Le => lhs <= row.rhs + tol,
                Cmp::Ge => lhs >= row.rhs - tol,
                Cmp::Eq => (lhs - row.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        let y = p.add_var(2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0), (x, 2.0)], Cmp::Le, 5.0);
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.constraint_count(), 1);
        // duplicate x entries merged: 1 + 2 = 3
        assert_eq!(p.rows_vec()[0].coeffs, vec![(0, 3.0), (1, 1.0)]);
        assert_eq!(p.objective_coeff(y), 2.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(1.0);
        p.set_upper_bound(x, 2.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        assert!(p.is_feasible(&[1.5], 1e-9));
        assert!(!p.is_feasible(&[0.5], 1e-9)); // violates >= 1
        assert!(!p.is_feasible(&[2.5], 1e-9)); // violates ub
        assert!(!p.is_feasible(&[-0.1], 1e-9)); // violates x >= 0
    }

    #[test]
    fn objective_at_point() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(3.0);
        let _y = p.add_var(-1.0);
        assert_eq!(p.objective_at(&[2.0, 4.0]), 2.0);
        assert_eq!(p.objective_coeff(x), 3.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_var_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var(1.0);
        p.add_constraint(vec![(VarId(5), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coeff_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let _ = p.add_var(f64::NAN);
    }
}
