//! Compressed sparse column (CSC) storage for the revised simplex.
//!
//! The slot-indexed LP is extremely sparse: a `y_{jil}` column carries one
//! entry for its request's start-once row (Eq. 9) plus at most `L` entries
//! for the prefix rows of its station (Eq. 10/23) — five-ish nonzeros out
//! of hundreds of rows. The dense tableau pays `O(m · n)` per pivot to
//! ignore that structure; [`crate::revised`] walks columns through this
//! matrix instead, so pricing costs `O(nnz)` and an FTRAN costs
//! `O(m · nnz(col))` against the refactorized inverse.

/// An `m × n` sparse matrix in compressed-sparse-column form.
///
/// Row indices within a column are stored in strictly increasing order;
/// duplicate entries are coalesced at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    m: usize,
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Incremental column-by-column builder for a [`CscMatrix`].
#[derive(Debug, Clone)]
pub struct CscBuilder {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    scratch: Vec<(usize, f64)>,
}

impl CscBuilder {
    /// Starts a builder for a matrix with `m` rows and roughly `nnz_hint`
    /// nonzeros.
    pub fn new(m: usize, nnz_hint: usize) -> Self {
        Self {
            m,
            col_ptr: vec![0],
            row_idx: Vec::with_capacity(nnz_hint),
            values: Vec::with_capacity(nnz_hint),
            scratch: Vec::new(),
        }
    }

    /// Appends one column given its `(row, value)` entries in any order;
    /// duplicates are summed, exact zeros dropped.
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of range.
    pub fn push_column(&mut self, entries: &[(usize, f64)]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(entries);
        self.scratch.sort_unstable_by_key(|&(r, _)| r);
        let mut last: Option<usize> = None;
        for &(r, v) in &self.scratch {
            assert!(r < self.m, "row {r} out of range ({} rows)", self.m);
            if last == Some(r) {
                *self.values.last_mut().expect("entry just pushed") += v;
            } else if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
                last = Some(r);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Appends a unit column `e_row` (slack / artificial) scaled by `sign`.
    pub fn push_unit(&mut self, row: usize, sign: f64) {
        assert!(row < self.m, "row {row} out of range ({} rows)", self.m);
        self.row_idx.push(row);
        self.values.push(sign);
        self.col_ptr.push(self.row_idx.len());
    }

    /// Finishes the matrix.
    pub fn finish(self) -> CscMatrix {
        CscMatrix {
            m: self.m,
            n: self.col_ptr.len() - 1,
            col_ptr: self.col_ptr,
            row_idx: self.row_idx,
            values: self.values,
        }
    }
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` entries of column `j`, rows ascending.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of nonzeros in column `j`.
    pub fn column_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Sparse dot product `yᵀ · a_j`.
    pub fn dot_column(&self, y: &[f64], j: usize) -> f64 {
        debug_assert_eq!(y.len(), self.m);
        self.column(j).map(|(r, v)| y[r] * v).sum()
    }

    /// Scatters column `j` into a dense vector (`out` must be zeroed by
    /// the caller where it matters).
    pub fn scatter_column(&self, j: usize, out: &mut [f64]) {
        for (r, v) in self.column(j) {
            out[r] += v;
        }
    }

    /// Fused pricing sweep: `red[j] = cost[j] - yᵀ·a_j` for every column
    /// `j < red.len()`, writing `0.0` where `skip[j]` (basic columns).
    ///
    /// One pass over the raw CSC arrays — equivalent to `red.len()` calls
    /// to [`Self::dot_column`] but without per-column iterator setup,
    /// which dominates when columns hold only a handful of nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `red` is longer than the column count or `cost`/`skip`
    /// are shorter than `red`.
    pub fn price_into(&self, y: &[f64], cost: &[f64], skip: &[bool], red: &mut [f64]) {
        assert!(red.len() <= self.n, "red longer than column count");
        for (j, out) in red.iter_mut().enumerate() {
            if skip[j] {
                *out = 0.0;
                continue;
            }
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let mut acc = cost[j];
            for k in lo..hi {
                acc -= y[self.row_idx[k]] * self.values[k];
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut b = CscBuilder::new(3, 5);
        b.push_column(&[(0, 1.0), (2, 4.0)]);
        b.push_column(&[(1, 3.0)]);
        b.push_column(&[(2, 5.0), (0, 2.0)]);
        b.finish()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.column_nnz(0), 2);
        assert_eq!(m.column_nnz(1), 1);
    }

    #[test]
    fn columns_sorted_and_coalesced() {
        let mut b = CscBuilder::new(2, 4);
        b.push_column(&[(1, 2.0), (0, 1.0), (1, 3.0)]);
        let m = b.finish();
        let col: Vec<_> = m.column(0).collect();
        assert_eq!(col, vec![(0, 1.0), (1, 5.0)]);
    }

    #[test]
    fn zero_entries_dropped() {
        let mut b = CscBuilder::new(2, 2);
        b.push_column(&[(0, 0.0), (1, 7.0)]);
        let m = b.finish();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.column(0).collect::<Vec<_>>(), vec![(1, 7.0)]);
    }

    #[test]
    fn unit_columns() {
        let mut b = CscBuilder::new(3, 2);
        b.push_unit(1, 1.0);
        b.push_unit(2, -1.0);
        let m = b.finish();
        assert_eq!(m.column(0).collect::<Vec<_>>(), vec![(1, 1.0)]);
        assert_eq!(m.column(1).collect::<Vec<_>>(), vec![(2, -1.0)]);
    }

    #[test]
    fn dot_and_scatter() {
        let m = sample();
        assert_eq!(m.dot_column(&[1.0, 1.0, 1.0], 0), 5.0);
        assert_eq!(m.dot_column(&[0.0, 2.0, 0.0], 1), 6.0);
        let mut out = vec![0.0; 3];
        m.scatter_column(2, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_bounds_checked() {
        let mut b = CscBuilder::new(2, 1);
        b.push_column(&[(5, 1.0)]);
    }
}
