//! # mec-lp
//!
//! Linear-programming substrate for the ICDCS'21 reproduction. The paper's
//! `Appro`/`Heu` algorithms solve a slot-indexed LP relaxation and its exact
//! baseline solves an ILP; no off-the-shelf solver is available offline, so
//! this crate implements:
//!
//! * a typed [`Problem`] builder (maximize/minimize, `≤ / ≥ / =` rows,
//!   optional upper bounds),
//! * a **two-phase dense primal simplex** ([`simplex`]) with Dantzig pricing
//!   and a Bland anti-cycling fallback,
//! * a **sparse revised simplex** ([`revised`]) over CSC columns
//!   ([`sparse`]) with an eta-file basis inverse, periodic
//!   refactorization, and warm starts from a [`BasisSnapshot`] — the fast
//!   path for the slot-indexed LP; the dense tableau stays the oracle,
//! * a **branch-and-bound** solver ([`branch_bound`]) for problems with
//!   binary variables.
//!
//! ## Example
//!
//! ```
//! use mec_lp::{Problem, Sense, Cmp};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var(3.0);
//! let y = p.add_var(2.0);
//! p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective() - 10.0).abs() < 1e-6);
//! assert!((sol.value(x) - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod sparse;

pub use branch_bound::{solve_binary, BranchBoundConfig};
pub use problem::{Cmp, Problem, Sense, VarId};
pub use revised::{BasisCol, BasisSnapshot, RevisedConfig, SolverKind, WarmOutcome};
pub use simplex::{pivots_performed, refactors_performed};
pub use solution::{LpError, Solution, Status};
