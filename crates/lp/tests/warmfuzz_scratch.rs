use mec_lp::{revised, Cmp, Problem, RevisedConfig, Sense};

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) as f64) / ((1u64 << 31) as f64)
}

fn build(seed: u64, rhs_scale: &[f64]) -> Problem {
    let mut s = seed;
    let nv = 4 + (seed % 3) as usize;
    let nc = 3 + (seed % 3) as usize;
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (0..nv)
        .map(|_| p.add_var(0.5 + lcg(&mut s) * 3.0))
        .collect();
    for k in 0..nc {
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, lcg(&mut s) * 2.0)).collect();
        let cmp = match (seed as usize + k) % 3 {
            0 => Cmp::Ge,
            1 => Cmp::Eq,
            _ => Cmp::Le,
        };
        let base = 1.0 + lcg(&mut s) * 4.0;
        p.add_constraint(coeffs, cmp, base * rhs_scale.get(k).copied().unwrap_or(1.0));
    }
    p
}

#[test]
fn warm_with_artificials_stays_feasible() {
    let cfg = RevisedConfig::default();
    let mut bad = 0;
    for seed in 0..2000u64 {
        let ones = vec![1.0; 8];
        let p1 = build(seed, &ones);
        let Ok((_, snap, _)) = revised::solve_with_basis(&p1, &cfg, None) else {
            continue;
        };
        let mut s = seed ^ 0xDEAD;
        let scale: Vec<f64> = (0..8).map(|_| 0.5 + lcg(&mut s)).collect();
        let p2 = build(seed, &scale);
        let cold = revised::solve(&p2, &cfg);
        let warm = revised::solve_with_basis(&p2, &cfg, Some(&snap));
        match (cold, warm) {
            (Ok(c), Ok((w, _, how))) => {
                let feas = p2.is_feasible(w.values(), 1e-5);
                let agree = (c.objective() - w.objective()).abs() < 1e-5;
                if !feas || !agree {
                    bad += 1;
                    eprintln!(
                        "seed {seed} how {how:?}: feas={feas} cold={} warm={}",
                        c.objective(),
                        w.objective()
                    );
                }
            }
            (Ok(c), Err(e)) => {
                bad += 1;
                eprintln!("seed {seed}: cold ok ({}) warm err {e:?}", c.objective());
            }
            (Err(ce), Ok((w, _, how))) => {
                bad += 1;
                eprintln!(
                    "seed {seed} how {how:?}: cold err {ce:?} warm ok {}",
                    w.objective()
                );
            }
            _ => {}
        }
    }
    assert_eq!(bad, 0, "{bad} divergent seeds");
}
