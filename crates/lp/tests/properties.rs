//! Property-based tests for the LP substrate.
//!
//! The centerpiece is **strong duality**: for random bounded-feasible
//! primal programs, the solver must produce primal and dual optima with
//! equal objectives — a property that catches almost any pivoting or
//! bookkeeping bug.

use mec_lp::{revised, solve_binary, BranchBoundConfig, Cmp, Problem, RevisedConfig, Sense, VarId};
use proptest::prelude::*;

/// Builds `max c·x  s.t.  A x ≤ b, x ≥ 0` (feasible at x = 0).
fn primal(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> (Problem, Vec<VarId>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<VarId> = c.iter().map(|&cj| p.add_var(cj)).collect();
    for (row, &rhs) in a.iter().zip(b) {
        p.add_constraint(
            vars.iter().zip(row).map(|(&v, &coef)| (v, coef)).collect(),
            Cmp::Le,
            rhs,
        );
    }
    (p, vars)
}

/// Builds the dual `min b·y  s.t.  Aᵀ y ≥ c, y ≥ 0`.
fn dual(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let ys: Vec<VarId> = b.iter().map(|&bi| p.add_var(bi)).collect();
    for (j, &cj) in c.iter().enumerate() {
        p.add_constraint(
            ys.iter().enumerate().map(|(i, &y)| (y, a[i][j])).collect(),
            Cmp::Ge,
            cj,
        );
    }
    p
}

fn matrix(m: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.05f64..3.0, n), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strong duality: primal and dual optimal objectives coincide.
    #[test]
    fn strong_duality(
        a in matrix(4, 5),
        b in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-2.0f64..5.0, 5),
    ) {
        let (p, _) = primal(&a, &b, &c);
        let d = dual(&a, &b, &c);
        let ps = p.solve().expect("primal feasible at origin, bounded (A > 0)");
        let ds = d.solve().expect("dual feasible because primal bounded");
        prop_assert!((ps.objective() - ds.objective()).abs() < 1e-5,
            "duality gap: {} vs {}", ps.objective(), ds.objective());
        prop_assert!(p.is_feasible(ps.values(), 1e-6));
        prop_assert!(d.is_feasible(ds.values(), 1e-6));
    }

    /// The solver's extracted duals are themselves a dual-feasible vector
    /// whose value matches the primal optimum (complementary slackness in
    /// aggregate), and they price the rows correctly: y ≥ 0, Aᵀy ≥ c,
    /// bᵀy = cᵀx*.
    #[test]
    fn extracted_duals_certify_optimality(
        a in matrix(4, 5),
        b in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-2.0f64..5.0, 5),
    ) {
        let (p, _) = primal(&a, &b, &c);
        let ps = p.solve().expect("feasible and bounded");
        let y = ps.duals();
        prop_assert_eq!(y.len(), 4);
        // Dual feasibility for a max/<= program: y >= 0 and A'y >= c.
        for (i, &yi) in y.iter().enumerate() {
            prop_assert!(yi >= -1e-7, "dual {i} negative: {yi}");
        }
        for j in 0..5 {
            let col: f64 = (0..4).map(|i| a[i][j] * y[i]).sum();
            prop_assert!(col >= c[j] - 1e-6,
                "dual infeasible at column {j}: {col} < {}", c[j]);
        }
        // Strong duality through the certificate.
        let by: f64 = b.iter().zip(y).map(|(bi, yi)| bi * yi).sum();
        prop_assert!((by - ps.objective()).abs() < 1e-5,
            "certificate value {} vs primal {}", by, ps.objective());
        // Complementary slackness: slack rows have zero dual.
        for i in 0..4 {
            let ax: f64 = a[i].iter().zip(ps.values()).map(|(aij, xj)| aij * xj).sum();
            let slack = b[i] - ax;
            prop_assert!(slack * y[i] < 1e-5,
                "row {i}: slack {slack} with dual {}", y[i]);
        }
    }

    /// The LP optimum never falls below the value of any feasible point we
    /// can construct by scaling a random direction into the polytope.
    #[test]
    fn dominates_feasible_points(
        a in matrix(3, 4),
        b in prop::collection::vec(0.5f64..10.0, 3),
        c in prop::collection::vec(0.0f64..5.0, 4),
        dir in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let (p, _) = primal(&a, &b, &c);
        let s = p.solve().expect("feasible and bounded");
        // Scale `dir` until every row holds: t = min_i b_i / (A_i · dir).
        let mut t = f64::INFINITY;
        for (row, &rhs) in a.iter().zip(&b) {
            let dot: f64 = row.iter().zip(&dir).map(|(x, y)| x * y).sum();
            if dot > 1e-12 {
                t = t.min(rhs / dot);
            }
        }
        if t.is_finite() {
            let point: Vec<f64> = dir.iter().map(|&d| d * t).collect();
            prop_assert!(p.is_feasible(&point, 1e-9));
            let val: f64 = c.iter().zip(&point).map(|(x, y)| x * y).sum();
            prop_assert!(s.objective() >= val - 1e-6,
                "optimum {} below feasible value {}", s.objective(), val);
        }
    }

    /// Presolve never changes the optimum: random mixed-sign objectives over
    /// `≤` constraints solve identically with and without column dropping.
    #[test]
    fn presolve_equivalence(
        a in matrix(4, 6),
        b in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-3.0f64..5.0, 6),
    ) {
        use mec_lp::simplex::SimplexConfig;
        let (p, _) = primal(&a, &b, &c);
        let with = p.solve_with(&SimplexConfig::default()).expect("solves");
        let without = p
            .solve_with(&SimplexConfig { presolve: false, ..Default::default() })
            .expect("solves");
        prop_assert!((with.objective() - without.objective()).abs() < 1e-6,
            "presolve changed the optimum: {} vs {}", with.objective(), without.objective());
        prop_assert!(p.is_feasible(with.values(), 1e-6));
        for (dw, dn) in with.duals().iter().zip(without.duals()) {
            prop_assert!((dw - dn).abs() < 1e-6, "presolve changed a dual");
        }
    }

    /// The sparse revised simplex agrees with the dense tableau on random
    /// programs: same objective (within 1e-6) and a feasible point.
    #[test]
    fn revised_matches_dense(
        a in matrix(4, 6),
        b in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-2.0f64..5.0, 6),
    ) {
        let (p, _) = primal(&a, &b, &c);
        let dense = p.solve().expect("feasible at origin, bounded");
        let rev = revised::solve(&p, &RevisedConfig::default()).expect("revised solves");
        prop_assert!((dense.objective() - rev.objective()).abs() < 1e-6,
            "dense {} vs revised {}", dense.objective(), rev.objective());
        prop_assert!(p.is_feasible(rev.values(), 1e-6));
    }

    /// Warm-starting from a neighbouring problem's optimal basis never
    /// changes the answer: after a random rhs perturbation, the warm solve
    /// matches a cold solve of the same program and stays feasible.
    #[test]
    fn warm_restart_matches_cold(
        a in matrix(4, 6),
        b in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-2.0f64..5.0, 6),
        scale in prop::collection::vec(0.6f64..1.4, 4),
    ) {
        let cfg = RevisedConfig::default();
        let (p, _) = primal(&a, &b, &c);
        let (_, snap, _) = revised::solve_with_basis(&p, &cfg, None).expect("cold solve");
        let b2: Vec<f64> = b.iter().zip(&scale).map(|(x, s)| x * s).collect();
        let (p2, _) = primal(&a, &b2, &c);
        let (warm, _, _) =
            revised::solve_with_basis(&p2, &cfg, Some(&snap)).expect("warm solve");
        let cold = revised::solve(&p2, &cfg).expect("cold solve of perturbed program");
        prop_assert!((warm.objective() - cold.objective()).abs() < 1e-6,
            "warm {} vs cold {}", warm.objective(), cold.objective());
        prop_assert!(p2.is_feasible(warm.values(), 1e-6));
    }

    /// Branch-and-bound on random knapsacks matches exhaustive search, and
    /// is never better than the LP relaxation.
    #[test]
    fn branch_bound_vs_brute_force(
        values in prop::collection::vec(0.5f64..10.0, 6),
        weights in prop::collection::vec(0.5f64..5.0, 6),
        frac in 0.2f64..0.8,
    ) {
        let cap = weights.iter().sum::<f64>() * frac;
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<VarId> = values.iter().map(|&v| p.add_var(v)).collect();
        p.add_constraint(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            Cmp::Le,
            cap,
        );
        let ilp = solve_binary(&p, &vars, &BranchBoundConfig::default()).expect("feasible");

        // Brute force.
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut v, mut w) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= cap + 1e-12 {
                best = best.max(v);
            }
        }
        prop_assert!((ilp.objective() - best).abs() < 1e-6,
            "bb {} vs brute {}", ilp.objective(), best);

        // LP relaxation upper-bounds the ILP.
        let mut relax = p.clone();
        for &v in &vars {
            relax.set_upper_bound(v, 1.0);
        }
        let lp = relax.solve().expect("relaxation feasible");
        prop_assert!(lp.objective() >= ilp.objective() - 1e-6);
    }
}
