//! The backhaul graph `G = (BS, E)`: undirected, with per-edge transmission
//! delays for one `ρ_unit` of data.

use crate::station::{BaseStation, StationId};
use crate::units::{Compute, Latency};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an undirected backhaul link.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The underlying dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected backhaul link with the delay `d^trans_e` of shipping one
/// `ρ_unit` of video data across it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    id: EdgeId,
    endpoints: (StationId, StationId),
    unit_trans_delay: Latency,
}

impl Edge {
    /// The link's identifier.
    pub const fn id(&self) -> EdgeId {
        self.id
    }

    /// Both endpoints (unordered).
    pub const fn endpoints(&self) -> (StationId, StationId) {
        self.endpoints
    }

    /// Transmission delay of one `ρ_unit` across this link.
    pub const fn unit_trans_delay(&self) -> Latency {
        self.unit_trans_delay
    }

    /// The endpoint opposite to `from`, if `from` is an endpoint.
    pub fn other(&self, from: StationId) -> Option<StationId> {
        if self.endpoints.0 == from {
            Some(self.endpoints.1)
        } else if self.endpoints.1 == from {
            Some(self.endpoints.0)
        } else {
            None
        }
    }
}

/// Errors constructing or mutating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a station id outside `0..station_count`.
    UnknownStation(StationId),
    /// A self-loop was requested; the backhaul has no use for them.
    SelfLoop(StationId),
    /// A negative delay was supplied.
    NegativeDelay,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownStation(id) => write!(f, "unknown station {id}"),
            TopologyError::SelfLoop(id) => write!(f, "self-loop at {id} is not allowed"),
            TopologyError::NegativeDelay => write!(f, "edge delay must be non-negative"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The MEC network `G = (BS, E)`.
///
/// Stations are densely indexed; edges are undirected. The structure is
/// immutable after construction apart from [`Topology::add_edge`], which the
/// generator uses while building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    stations: Vec<BaseStation>,
    edges: Vec<Edge>,
    /// adjacency[v] = (neighbor, edge) pairs.
    adjacency: Vec<Vec<(StationId, EdgeId)>>,
}

impl Topology {
    /// Creates a topology over the given stations with no edges yet.
    ///
    /// Station ids must equal their position; this is re-asserted here so a
    /// shuffled station list fails fast instead of mis-routing every lookup.
    ///
    /// # Panics
    ///
    /// Panics if any station's id differs from its index.
    pub fn new(stations: Vec<BaseStation>) -> Self {
        for (idx, bs) in stations.iter().enumerate() {
            assert_eq!(
                bs.id().index(),
                idx,
                "station ids must be dense and in order"
            );
        }
        let n = stations.len();
        Self {
            stations,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds an undirected edge.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if an endpoint is unknown, `u == v`, or the
    /// delay is negative. Parallel edges are permitted (the generator never
    /// creates them, but Dijkstra handles them correctly).
    pub fn add_edge(
        &mut self,
        u: StationId,
        v: StationId,
        unit_trans_delay: Latency,
    ) -> Result<EdgeId, TopologyError> {
        if u.index() >= self.stations.len() {
            return Err(TopologyError::UnknownStation(u));
        }
        if v.index() >= self.stations.len() {
            return Err(TopologyError::UnknownStation(v));
        }
        if u == v {
            return Err(TopologyError::SelfLoop(u));
        }
        if unit_trans_delay.as_ms() < 0.0 {
            return Err(TopologyError::NegativeDelay);
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            id,
            endpoints: (u, v),
            unit_trans_delay,
        });
        self.adjacency[u.index()].push((v, id));
        self.adjacency[v.index()].push((u, id));
        Ok(id)
    }

    /// Number of base stations `|BS|`.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Number of backhaul links `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The station with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn station(&self, id: StationId) -> &BaseStation {
        &self.stations[id.index()]
    }

    /// All stations in id order.
    pub fn stations(&self) -> &[BaseStation] {
        &self.stations
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` as `(neighbor, edge)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: StationId) -> &[(StationId, EdgeId)] {
        &self.adjacency[v.index()]
    }

    /// Iterator over all station ids.
    pub fn station_ids(&self) -> impl ExactSizeIterator<Item = StationId> + '_ {
        (0..self.stations.len()).map(StationId)
    }

    /// Total compute capacity across all stations.
    pub fn total_capacity(&self) -> Compute {
        self.stations.iter().map(|s| s.capacity()).sum()
    }

    /// Renders the backhaul as a Graphviz DOT document (stations labelled
    /// with their capacity, links with their per-`ρ_unit` delay) — handy
    /// for eyeballing generated topologies.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph mec {\n  node [shape=circle];\n");
        for s in &self.stations {
            let _ = writeln!(
                out,
                "  bs{} [label=\"bs{}\\n{:.0} MHz\"];",
                s.id().index(),
                s.id().index(),
                s.capacity().as_mhz()
            );
        }
        for e in &self.edges {
            let (u, v) = e.endpoints();
            let _ = writeln!(
                out,
                "  bs{} -- bs{} [label=\"{:.1} ms\"];",
                u.index(),
                v.index(),
                e.unit_trans_delay().as_ms()
            );
        }
        out.push_str("}\n");
        out
    }

    /// Whether the graph is connected (true for the generator's outputs;
    /// the experiments assume every station is reachable).
    pub fn is_connected(&self) -> bool {
        if self.stations.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.stations.len()];
        let mut stack = vec![StationId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.stations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stations() -> Vec<BaseStation> {
        (0..3)
            .map(|i| BaseStation::new(i.into(), Compute::mhz(3000.0), Latency::ms(1.0)))
            .collect()
    }

    #[test]
    fn build_line_graph() {
        let mut topo = Topology::new(three_stations());
        let e0 = topo.add_edge(0.into(), 1.into(), Latency::ms(2.0)).unwrap();
        let e1 = topo.add_edge(1.into(), 2.into(), Latency::ms(3.0)).unwrap();
        assert_eq!(topo.edge_count(), 2);
        assert_eq!(topo.neighbors(1.into()).len(), 2);
        assert_eq!(topo.edge(e0).other(0.into()), Some(StationId(1)));
        assert_eq!(topo.edge(e1).other(0.into()), None);
        assert!(topo.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let topo = Topology::new(three_stations());
        assert!(!topo.is_connected());
    }

    #[test]
    fn empty_topology_is_connected() {
        let topo = Topology::new(Vec::new());
        assert!(topo.is_connected());
        assert_eq!(topo.station_count(), 0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut topo = Topology::new(three_stations());
        assert_eq!(
            topo.add_edge(1.into(), 1.into(), Latency::ms(1.0)),
            Err(TopologyError::SelfLoop(StationId(1)))
        );
    }

    #[test]
    fn rejects_unknown_station() {
        let mut topo = Topology::new(three_stations());
        assert_eq!(
            topo.add_edge(0.into(), 9.into(), Latency::ms(1.0)),
            Err(TopologyError::UnknownStation(StationId(9)))
        );
    }

    #[test]
    fn rejects_negative_delay() {
        let mut topo = Topology::new(three_stations());
        assert_eq!(
            topo.add_edge(0.into(), 1.into(), Latency::ms(-0.1)),
            Err(TopologyError::NegativeDelay)
        );
    }

    #[test]
    fn dot_export_contains_everything() {
        let mut topo = Topology::new(three_stations());
        topo.add_edge(0.into(), 1.into(), Latency::ms(2.5)).unwrap();
        let dot = topo.to_dot();
        assert!(dot.starts_with("graph mec {"));
        assert!(dot.contains("bs0 [label=\"bs0\\n3000 MHz\"];"));
        assert!(dot.contains("bs0 -- bs1 [label=\"2.5 ms\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn total_capacity_sums() {
        let topo = Topology::new(three_stations());
        assert_eq!(topo.total_capacity().as_mhz(), 9000.0);
    }

    #[test]
    #[should_panic(expected = "dense and in order")]
    fn shuffled_ids_rejected() {
        let mut stations = three_stations();
        stations.swap(0, 2);
        let _ = Topology::new(stations);
    }
}
