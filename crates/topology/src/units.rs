//! Physical-quantity newtypes shared across the workspace.
//!
//! The paper mixes three unit families that are easy to confuse: compute
//! capacity (MHz), video data rates (MB/s), and latencies (milliseconds).
//! Each gets a `f64` newtype so the type system keeps them apart
//! (C-NEWTYPE), with arithmetic restricted to the operations that are
//! physically meaningful.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $as_fn:ident, $new_fn:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in its canonical unit.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN (a NaN quantity would poison every
            /// downstream comparison silently).
            pub fn $new_fn(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Returns the raw value in the canonical unit.
            pub const fn $as_fn(self) -> f64 {
                self.0
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps a quantity to be non-negative.
            #[must_use]
            pub fn clamp_non_negative(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// Whether this quantity is strictly positive.
            pub fn is_positive(self) -> bool {
                self.0 > 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }
    };
}

quantity!(
    /// Computing capacity or consumption in MHz (the paper's resource unit:
    /// station capacities are 3000-3600 MHz, a resource slot is 1000 MHz).
    Compute,
    "MHz",
    as_mhz,
    mhz
);

quantity!(
    /// Video stream data rate in megabytes per second (the paper draws
    /// request rates from [30, 50] MB/s).
    DataRate,
    "MB/s",
    as_mbps,
    mbps
);

quantity!(
    /// Latency in milliseconds (the paper's response bound is 200 ms).
    Latency,
    "ms",
    as_ms,
    ms
);

impl DataRate {
    /// Compute demand of sustaining this rate given `c_unit` MHz per MB/s
    /// (the paper's `C_unit`, default 20 MHz per MB/s).
    #[must_use]
    pub fn demand(self, c_unit: Compute) -> Compute {
        Compute::mhz(self.0 * c_unit.as_mhz())
    }
}

impl Compute {
    /// The data rate this much compute can sustain given `c_unit` MHz per
    /// MB/s; the inverse of [`DataRate::demand`].
    #[must_use]
    pub fn sustainable_rate(self, c_unit: Compute) -> DataRate {
        DataRate::mbps(self.0 / c_unit.as_mhz())
    }
}

/// Total order for `f64`-backed quantities that are known not to be NaN.
///
/// The constructors reject NaN, so comparing via `partial_cmp` and unwrapping
/// is safe; this helper keeps that reasoning in one place.
pub fn total_cmp<T: PartialOrd>(a: &T, b: &T) -> std::cmp::Ordering {
    a.partial_cmp(b)
        .expect("quantities are never NaN by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Compute::mhz(1000.0);
        let b = Compute::mhz(500.0);
        assert_eq!((a + b).as_mhz(), 1500.0);
        assert_eq!((a - b).as_mhz(), 500.0);
        assert_eq!((a * 2.0).as_mhz(), 2000.0);
        assert_eq!((a / 2.0).as_mhz(), 500.0);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn rate_to_demand_and_back() {
        let c_unit = Compute::mhz(20.0);
        let rate = DataRate::mbps(40.0);
        let demand = rate.demand(c_unit);
        assert_eq!(demand.as_mhz(), 800.0);
        assert_eq!(demand.sustainable_rate(c_unit).as_mbps(), 40.0);
    }

    #[test]
    fn min_max_clamp() {
        let a = Latency::ms(10.0);
        let b = Latency::ms(-3.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.clamp_non_negative(), Latency::ZERO);
        assert!(a.is_positive());
        assert!(!b.is_positive());
    }

    #[test]
    fn sum_of_latencies() {
        let total: Latency = [1.0, 2.0, 3.5].iter().map(|&v| Latency::ms(v)).sum();
        assert!((total.as_ms() - 6.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Compute::mhz(f64::NAN);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Compute::mhz(1.0)), "1.000 MHz");
        assert_eq!(format!("{}", DataRate::mbps(2.0)), "2.000 MB/s");
        assert_eq!(format!("{}", Latency::ms(3.0)), "3.000 ms");
    }

    #[test]
    fn total_cmp_orders() {
        use std::cmp::Ordering;
        assert_eq!(
            total_cmp(&Compute::mhz(1.0), &Compute::mhz(2.0)),
            Ordering::Less
        );
    }
}
