//! Resource-slot partitioning of a station's compute capacity (§IV-A).
//!
//! The paper partitions each `C(bs_i)` into `L = ⌊C(bs_i)/C_l⌋` slots of
//! `C_l` MHz each (default `C_l` = 1000 MHz); the slot-indexed LP assigns
//! each request a *starting* slot, from which its realized demand may spill
//! into later slots.

use crate::units::Compute;
use serde::{Deserialize, Serialize};
use std::fmt;

/// 1-based index of a resource slot within a station.
///
/// The paper's analysis uses `l ∈ {1, …, L}` with prefix capacity `l · C_l`;
/// keeping the index 1-based keeps every formula verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotIndex(usize);

impl SlotIndex {
    /// Creates a slot index.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`; slots are 1-based.
    pub fn new(l: usize) -> Self {
        assert!(l >= 1, "slot indices are 1-based");
        Self(l)
    }

    /// The 1-based value `l`.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Prefix capacity `l · C_l` available up to and including this slot.
    #[must_use]
    pub fn prefix_capacity(self, slot_size: Compute) -> Compute {
        slot_size * self.0 as f64
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

/// The slot layout of one station: slot size `C_l` and count `L`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotLayout {
    slot_size: Compute,
    count: usize,
}

impl SlotLayout {
    /// Partitions `capacity` into slots of `slot_size`:
    /// `L = ⌊capacity / slot_size⌋`.
    ///
    /// A station smaller than one slot gets `L = 0` and can never be a
    /// starting slot (matching Eq. 8, where such stations earn no reward).
    ///
    /// # Panics
    ///
    /// Panics if `slot_size` is not strictly positive.
    pub fn partition(capacity: Compute, slot_size: Compute) -> Self {
        assert!(
            slot_size.is_positive(),
            "slot size must be strictly positive"
        );
        let count = (capacity.as_mhz() / slot_size.as_mhz()).floor() as usize;
        Self { slot_size, count }
    }

    /// Slot size `C_l`.
    pub const fn slot_size(self) -> Compute {
        self.slot_size
    }

    /// Number of slots `L`.
    pub const fn count(self) -> usize {
        self.count
    }

    /// Iterator over all slot indices `1..=L`.
    pub fn indices(self) -> impl ExactSizeIterator<Item = SlotIndex> {
        (1..self.count + 1).map(SlotIndex)
    }

    /// Prefix capacity `l · C_l` of slot `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the layout's slot count.
    pub fn prefix_capacity(self, l: SlotIndex) -> Compute {
        assert!(
            l.get() <= self.count,
            "slot {l} out of range (L = {})",
            self.count
        );
        l.prefix_capacity(self.slot_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_partition() {
        // 3000-3600 MHz capacity, 1000 MHz slots ⇒ L = 3.
        let layout = SlotLayout::partition(Compute::mhz(3400.0), Compute::mhz(1000.0));
        assert_eq!(layout.count(), 3);
        assert_eq!(layout.slot_size().as_mhz(), 1000.0);
        let slots: Vec<_> = layout.indices().collect();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].get(), 1);
        assert_eq!(layout.prefix_capacity(slots[2]).as_mhz(), 3000.0);
    }

    #[test]
    fn tiny_station_has_no_slots() {
        let layout = SlotLayout::partition(Compute::mhz(900.0), Compute::mhz(1000.0));
        assert_eq!(layout.count(), 0);
        assert_eq!(layout.indices().len(), 0);
    }

    #[test]
    fn exact_multiple() {
        let layout = SlotLayout::partition(Compute::mhz(3000.0), Compute::mhz(1000.0));
        assert_eq!(layout.count(), 3);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_slot_index_rejected() {
        let _ = SlotIndex::new(0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_slot_size_rejected() {
        let _ = SlotLayout::partition(Compute::mhz(3000.0), Compute::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_capacity_checks_range() {
        let layout = SlotLayout::partition(Compute::mhz(2000.0), Compute::mhz(1000.0));
        let _ = layout.prefix_capacity(SlotIndex::new(3));
    }
}
