//! Random and deterministic topology generation.
//!
//! The paper builds its 20-station backhaul with GT-ITM [13]. GT-ITM's flat
//! random mode is the **Waxman model**: nodes scattered uniformly in the unit
//! square, an edge between `u, v` with probability
//! `β · exp(-dist(u, v) / (α · L))` where `L` is the diameter of the region.
//! [`TopologyBuilder`] implements that model (made connected by stitching
//! components along nearest pairs) plus deterministic shapes for tests.

use crate::graph::Topology;
use crate::station::{BaseStation, StationId};
use crate::units::{Compute, Latency};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shape of the generated backhaul.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shape {
    /// Waxman random graph (GT-ITM flat mode) — the paper's setting.
    #[default]
    Waxman,
    /// A simple ring; deterministic, useful in tests.
    Ring,
    /// A star centered on station 0; deterministic.
    Star,
    /// A line `0 - 1 - … - (n-1)`; deterministic.
    Line,
}

/// Builder for random MEC topologies with the paper's §VI-A defaults.
///
/// # Example
///
/// ```
/// use mec_topology::generator::{Shape, TopologyBuilder};
///
/// let topo = TopologyBuilder::new(20)
///     .seed(42)
///     .shape(Shape::Waxman)
///     .capacity_range(3000.0, 3600.0)
///     .build();
/// assert!(topo.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    stations: usize,
    seed: u64,
    shape: Shape,
    capacity_range: (f64, f64),
    proc_delay_range: (f64, f64),
    trans_delay_range: (f64, f64),
    waxman_alpha: f64,
    waxman_beta: f64,
}

impl TopologyBuilder {
    /// Starts a builder for `stations` base stations with the paper's
    /// default parameter ranges: capacities U[3000, 3600] MHz, per-`ρ_unit`
    /// processing delays U[0.5, 2.0] ms, link delays U[0.5, 3.0] ms.
    pub fn new(stations: usize) -> Self {
        Self {
            stations,
            seed: 0,
            shape: Shape::Waxman,
            capacity_range: (3000.0, 3600.0),
            proc_delay_range: (0.5, 2.0),
            trans_delay_range: (0.5, 3.0),
            waxman_alpha: 0.4,
            waxman_beta: 0.4,
        }
    }

    /// Seeds the deterministic PRNG (same seed ⇒ same topology).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the backhaul shape.
    #[must_use]
    pub fn shape(mut self, shape: Shape) -> Self {
        self.shape = shape;
        self
    }

    /// Station compute capacities are drawn uniformly from `[lo, hi]` MHz.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo < 0`.
    #[must_use]
    pub fn capacity_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(
            0.0 <= lo && lo <= hi,
            "capacity range must be 0 <= lo <= hi"
        );
        self.capacity_range = (lo, hi);
        self
    }

    /// Per-`ρ_unit` processing delays drawn uniformly from `[lo, hi]` ms.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo < 0`.
    #[must_use]
    pub fn proc_delay_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo <= hi, "delay range must be 0 <= lo <= hi");
        self.proc_delay_range = (lo, hi);
        self
    }

    /// Per-`ρ_unit` link transmission delays drawn uniformly from `[lo, hi]`
    /// ms (scaled by Euclidean length under [`Shape::Waxman`]).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo < 0`.
    #[must_use]
    pub fn trans_delay_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo <= hi, "delay range must be 0 <= lo <= hi");
        self.trans_delay_range = (lo, hi);
        self
    }

    /// Waxman parameters: `alpha` controls edge length decay, `beta` overall
    /// density. Both must lie in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is outside `(0, 1]`.
    #[must_use]
    pub fn waxman(mut self, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        self.waxman_alpha = alpha;
        self.waxman_beta = beta;
        self
    }

    fn sample(rng: &mut ChaCha8Rng, (lo, hi): (f64, f64)) -> f64 {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    /// Generates the topology.
    pub fn build(&self) -> Topology {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let stations = (0..self.stations)
            .map(|i| {
                BaseStation::new(
                    StationId(i),
                    Compute::mhz(Self::sample(&mut rng, self.capacity_range)),
                    Latency::ms(Self::sample(&mut rng, self.proc_delay_range)),
                )
            })
            .collect();
        let mut topo = Topology::new(stations);
        match self.shape {
            Shape::Ring => {
                for i in 1..self.stations {
                    let d = Self::sample(&mut rng, self.trans_delay_range);
                    topo.add_edge((i - 1).into(), i.into(), Latency::ms(d))
                        .expect("ring edges are valid");
                }
                if self.stations >= 3 {
                    let d = Self::sample(&mut rng, self.trans_delay_range);
                    topo.add_edge((self.stations - 1).into(), 0.into(), Latency::ms(d))
                        .expect("ring closing edge is valid");
                }
            }
            Shape::Star => {
                for i in 1..self.stations {
                    let d = Self::sample(&mut rng, self.trans_delay_range);
                    topo.add_edge(0.into(), i.into(), Latency::ms(d))
                        .expect("star edges are valid");
                }
            }
            Shape::Line => {
                for i in 1..self.stations {
                    let d = Self::sample(&mut rng, self.trans_delay_range);
                    topo.add_edge((i - 1).into(), i.into(), Latency::ms(d))
                        .expect("line edges are valid");
                }
            }
            Shape::Waxman => self.build_waxman(&mut rng, &mut topo),
        }
        topo
    }

    fn build_waxman(&self, rng: &mut ChaCha8Rng, topo: &mut Topology) {
        let n = self.stations;
        if n <= 1 {
            return;
        }
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let dist = |a: usize, b: usize| -> f64 {
            let dx = points[a].0 - points[b].0;
            let dy = points[a].1 - points[b].1;
            (dx * dx + dy * dy).sqrt()
        };
        let diameter = 2f64.sqrt(); // of the unit square
        let (dlo, dhi) = self.trans_delay_range;
        // Delay grows with geometric length: map [0, diameter] onto the
        // configured delay range so long links are slow links.
        let delay_of = |d: f64| Latency::ms(dlo + (dhi - dlo) * (d / diameter));
        for u in 0..n {
            for v in (u + 1)..n {
                let p = self.waxman_beta * (-dist(u, v) / (self.waxman_alpha * diameter)).exp();
                if rng.gen::<f64>() < p {
                    topo.add_edge(u.into(), v.into(), delay_of(dist(u, v)))
                        .expect("waxman edges are valid");
                }
            }
        }
        // Stitch components together via geometrically-nearest cross pairs so
        // the backhaul is connected (GT-ITM post-processes similarly).
        loop {
            let comp = components(topo);
            let ncomp = 1 + comp.iter().copied().max().unwrap_or(0);
            if ncomp <= 1 {
                break;
            }
            // Find the nearest pair straddling component 0's boundary.
            let mut best: Option<(usize, usize, f64)> = None;
            for u in 0..n {
                for v in 0..n {
                    if comp[u] == 0 && comp[v] != 0 {
                        let d = dist(u, v);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((u, v, d));
                        }
                    }
                }
            }
            let (u, v, d) = best.expect("multiple components imply a crossing pair");
            topo.add_edge(u.into(), v.into(), delay_of(d))
                .expect("stitch edges are valid");
        }
    }
}

/// Labels every station with a component id (0-based, component of station 0
/// is 0).
fn components(topo: &Topology) -> Vec<usize> {
    let n = topo.station_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![StationId(start)];
        comp[start] = next;
        while let Some(v) = stack.pop() {
            for &(u, _) in topo.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_deterministic() {
        for seed in 0..10 {
            let a = TopologyBuilder::new(20).seed(seed).build();
            let b = TopologyBuilder::new(20).seed(seed).build();
            assert!(a.is_connected(), "seed {seed} produced disconnected graph");
            assert_eq!(a, b, "same seed must reproduce the same topology");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyBuilder::new(20).seed(1).build();
        let b = TopologyBuilder::new(20).seed(2).build();
        assert_ne!(a, b);
    }

    #[test]
    fn capacities_within_range() {
        let topo = TopologyBuilder::new(50)
            .seed(3)
            .capacity_range(3000.0, 3600.0)
            .build();
        for bs in topo.stations() {
            let c = bs.capacity().as_mhz();
            assert!((3000.0..=3600.0).contains(&c));
        }
    }

    #[test]
    fn ring_star_line_shapes() {
        let ring = TopologyBuilder::new(6).shape(Shape::Ring).build();
        assert_eq!(ring.edge_count(), 6);
        assert!(ring.is_connected());

        let star = TopologyBuilder::new(6).shape(Shape::Star).build();
        assert_eq!(star.edge_count(), 5);
        assert_eq!(star.neighbors(0.into()).len(), 5);

        let line = TopologyBuilder::new(6).shape(Shape::Line).build();
        assert_eq!(line.edge_count(), 5);
        assert_eq!(line.neighbors(0.into()).len(), 1);
    }

    #[test]
    fn single_station_topology() {
        let topo = TopologyBuilder::new(1).build();
        assert_eq!(topo.station_count(), 1);
        assert_eq!(topo.edge_count(), 0);
        assert!(topo.is_connected());
    }

    #[test]
    fn two_station_waxman_connected() {
        let topo = TopologyBuilder::new(2).seed(9).build();
        assert!(topo.is_connected());
        assert!(topo.edge_count() >= 1);
    }

    #[test]
    fn fixed_ranges_collapse() {
        let topo = TopologyBuilder::new(4)
            .capacity_range(3200.0, 3200.0)
            .proc_delay_range(1.0, 1.0)
            .build();
        for bs in topo.stations() {
            assert_eq!(bs.capacity().as_mhz(), 3200.0);
            assert_eq!(bs.unit_proc_delay().as_ms(), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn invalid_waxman_alpha() {
        let _ = TopologyBuilder::new(4).waxman(0.0, 0.5);
    }
}
