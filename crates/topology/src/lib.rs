//! # mec-topology
//!
//! MEC network substrate for the ICDCS'21 reproduction: the backhaul graph
//! `G = (BS, E)` of 5G base stations, per-link transmission delays, shortest
//! paths, and base-station compute resources partitioned into resource slots.
//!
//! The paper generates topologies with GT-ITM [13]; GT-ITM's flat random
//! model is the Waxman model, which [`generator::TopologyBuilder`] implements
//! (plus deterministic ring/star/line shapes for tests).
//!
//! ## Example
//!
//! ```
//! use mec_topology::generator::TopologyBuilder;
//!
//! let topo = TopologyBuilder::new(20).seed(7).build();
//! assert_eq!(topo.station_count(), 20);
//! let paths = topo.shortest_paths();
//! // Delays are symmetric and satisfy the triangle inequality.
//! let d = paths.delay(0.into(), 5.into()).unwrap();
//! assert!(d.as_ms() >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dijkstra;
pub mod generator;
pub mod graph;
pub mod slots;
pub mod station;
pub mod stats;
pub mod units;

pub use dijkstra::PathTable;
pub use generator::TopologyBuilder;
pub use graph::{EdgeId, Topology, TopologyError};
pub use slots::{SlotIndex, SlotLayout};
pub use station::{BaseStation, StationId};
pub use stats::TopologyStats;
pub use units::{Compute, DataRate, Latency};
