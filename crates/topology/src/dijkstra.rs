//! All-pairs shortest paths by repeated Dijkstra, in terms of per-`ρ_unit`
//! transmission delay.
//!
//! The paper routes each request's stream along `p_{ji}`, the minimum-delay
//! backhaul path between the user's home station and the serving station
//! (Eq. 2). [`PathTable`] precomputes those paths once per topology.

use crate::graph::{EdgeId, Topology};
use crate::station::StationId;
use crate::units::Latency;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entry in the Dijkstra frontier; ordered so the `BinaryHeap` (a max-heap)
/// pops the smallest tentative delay first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    delay_ms: f64,
    node: StationId,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest delay wins. Delays are never NaN by construction.
        other
            .delay_ms
            .partial_cmp(&self.delay_ms)
            .expect("delays are never NaN")
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path tree from one source: per-node delay and predecessor edge.
#[derive(Debug, Clone)]
struct Tree {
    delay: Vec<Option<f64>>,
    via: Vec<Option<EdgeId>>,
}

fn dijkstra(topo: &Topology, source: StationId) -> Tree {
    let n = topo.station_count();
    let mut delay: Vec<Option<f64>> = vec![None; n];
    let mut via: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    delay[source.index()] = Some(0.0);
    heap.push(Frontier {
        delay_ms: 0.0,
        node: source,
    });
    while let Some(Frontier { delay_ms, node }) = heap.pop() {
        if delay[node.index()].is_some_and(|best| delay_ms > best) {
            continue; // stale entry
        }
        for &(next, edge) in topo.neighbors(node) {
            let cand = delay_ms + topo.edge(edge).unit_trans_delay().as_ms();
            let better = delay[next.index()].is_none_or(|best| cand < best);
            if better {
                delay[next.index()] = Some(cand);
                via[next.index()] = Some(edge);
                heap.push(Frontier {
                    delay_ms: cand,
                    node: next,
                });
            }
        }
    }
    Tree { delay, via }
}

/// All-pairs shortest paths over a [`Topology`], in per-`ρ_unit`
/// transmission delay.
///
/// Build once with [`PathTable::build`] (O(|BS| · |E| log |BS|)), then query
/// delays and full edge paths in O(1) / O(path length).
#[derive(Debug, Clone)]
pub struct PathTable {
    trees: Vec<Tree>,
}

impl PathTable {
    /// Runs Dijkstra from every station.
    pub fn build(topo: &Topology) -> Self {
        let trees = topo.station_ids().map(|s| dijkstra(topo, s)).collect();
        Self { trees }
    }

    /// One-way shortest-path delay `from → to` for one `ρ_unit`, or `None`
    /// if `to` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn delay(&self, from: StationId, to: StationId) -> Option<Latency> {
        self.trees[from.index()].delay[to.index()].map(Latency::ms)
    }

    /// The edges of a shortest path `from → to` (empty when `from == to`),
    /// or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn path(&self, from: StationId, to: StationId, topo: &Topology) -> Option<Vec<EdgeId>> {
        let tree = &self.trees[from.index()];
        tree.delay[to.index()]?;
        let mut path = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let edge = tree.via[cursor.index()]?;
            path.push(edge);
            cursor = topo
                .edge(edge)
                .other(cursor)
                .expect("predecessor edge must touch the cursor node");
        }
        path.reverse();
        Some(path)
    }

    /// Number of sources (= station count of the topology it was built from).
    pub fn source_count(&self) -> usize {
        self.trees.len()
    }

    /// The reachable candidate nearest to `from` by one-way delay, with the
    /// smallest station id breaking delay ties (deterministic regardless of
    /// candidate order). `None` when no candidate is reachable.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn nearest(
        &self,
        from: StationId,
        candidates: impl IntoIterator<Item = StationId>,
    ) -> Option<StationId> {
        candidates
            .into_iter()
            .filter_map(|c| self.delay(from, c).map(|d| (d.as_ms(), c.index())))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, idx)| StationId(idx))
    }
}

impl Topology {
    /// Convenience: builds the all-pairs [`PathTable`] for this topology.
    pub fn shortest_paths(&self) -> PathTable {
        PathTable::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::BaseStation;
    use crate::units::Compute;

    fn topo_line(delays: &[f64]) -> Topology {
        let stations = (0..=delays.len())
            .map(|i| BaseStation::new(i.into(), Compute::mhz(3000.0), Latency::ms(1.0)))
            .collect();
        let mut topo = Topology::new(stations);
        for (i, &d) in delays.iter().enumerate() {
            topo.add_edge(i.into(), (i + 1).into(), Latency::ms(d))
                .unwrap();
        }
        topo
    }

    #[test]
    fn line_delays_accumulate() {
        let topo = topo_line(&[1.0, 2.0, 3.0]);
        let paths = topo.shortest_paths();
        assert_eq!(paths.delay(0.into(), 3.into()).unwrap().as_ms(), 6.0);
        assert_eq!(paths.delay(3.into(), 0.into()).unwrap().as_ms(), 6.0);
        assert_eq!(paths.delay(1.into(), 1.into()).unwrap().as_ms(), 0.0);
    }

    #[test]
    fn path_reconstruction() {
        let topo = topo_line(&[1.0, 2.0]);
        let paths = topo.shortest_paths();
        let p = paths.path(0.into(), 2.into(), &topo).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], EdgeId(0));
        assert_eq!(p[1], EdgeId(1));
        assert!(paths.path(1.into(), 1.into(), &topo).unwrap().is_empty());
    }

    #[test]
    fn shortcut_preferred() {
        // Triangle: 0-1 (10), 1-2 (10), 0-2 (5). 0→1 best via direct 10,
        // but 0→2 direct 5 beats 0-1-2 (20).
        let stations = (0..3)
            .map(|i| BaseStation::new(i.into(), Compute::mhz(3000.0), Latency::ms(1.0)))
            .collect();
        let mut topo = Topology::new(stations);
        topo.add_edge(0.into(), 1.into(), Latency::ms(10.0))
            .unwrap();
        topo.add_edge(1.into(), 2.into(), Latency::ms(10.0))
            .unwrap();
        topo.add_edge(0.into(), 2.into(), Latency::ms(5.0)).unwrap();
        let paths = topo.shortest_paths();
        assert_eq!(paths.delay(0.into(), 2.into()).unwrap().as_ms(), 5.0);
        // And 1→2 can go direct (10) rather than via 0 (15).
        assert_eq!(paths.delay(1.into(), 2.into()).unwrap().as_ms(), 10.0);
    }

    #[test]
    fn nearest_breaks_delay_ties_by_smallest_id() {
        // Line with equal hops: stations 0 and 2 are both 1.0 ms from 1.
        let topo = topo_line(&[1.0, 1.0, 5.0]);
        let paths = topo.shortest_paths();
        let ids = |v: &[usize]| v.iter().map(|&i| StationId(i)).collect::<Vec<_>>();
        assert_eq!(
            paths.nearest(StationId(1), ids(&[2, 0])),
            Some(StationId(0)),
            "equal delays resolve to the smaller id, not candidate order"
        );
        assert_eq!(
            paths.nearest(StationId(0), ids(&[2, 3])),
            Some(StationId(2))
        );
        assert_eq!(paths.nearest(StationId(0), ids(&[])), None);
    }

    #[test]
    fn unreachable_is_none() {
        let stations = (0..2)
            .map(|i| BaseStation::new(i.into(), Compute::mhz(3000.0), Latency::ms(1.0)))
            .collect();
        let topo = Topology::new(stations);
        let paths = topo.shortest_paths();
        assert_eq!(paths.delay(0.into(), 1.into()), None);
        assert_eq!(paths.path(0.into(), 1.into(), &topo), None);
    }

    #[test]
    fn zero_delay_edges_ok() {
        let topo = topo_line(&[0.0, 0.0]);
        let paths = topo.shortest_paths();
        assert_eq!(paths.delay(0.into(), 2.into()).unwrap().as_ms(), 0.0);
    }
}
