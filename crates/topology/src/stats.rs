//! Descriptive statistics of a backhaul topology — used by reports and
//! sanity checks on generated networks.

use crate::graph::Topology;
use crate::units::Latency;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of one topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of stations.
    pub stations: usize,
    /// Number of links.
    pub edges: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean node degree.
    pub avg_degree: f64,
    /// Longest shortest-path delay between any pair (the delay diameter);
    /// `None` when the graph is disconnected or has < 2 stations.
    pub diameter: Option<Latency>,
    /// Mean shortest-path delay over distinct pairs; `None` as above.
    pub avg_path_delay: Option<Latency>,
}

impl TopologyStats {
    /// Computes statistics (runs all-pairs shortest paths internally:
    /// O(|BS| · |E| log |BS|)).
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.station_count();
        let degrees: Vec<usize> = topo
            .station_ids()
            .map(|s| topo.neighbors(s).len())
            .collect();
        let (mut diameter, mut sum, mut pairs) = (0.0f64, 0.0f64, 0u64);
        let mut connected = n >= 2;
        if n >= 2 {
            let paths = topo.shortest_paths();
            'outer: for a in topo.station_ids() {
                for b in topo.station_ids() {
                    if a.index() < b.index() {
                        match paths.delay(a, b) {
                            Some(d) => {
                                diameter = diameter.max(d.as_ms());
                                sum += d.as_ms();
                                pairs += 1;
                            }
                            None => {
                                connected = false;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        Self {
            stations: n,
            edges: topo.edge_count(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            avg_degree: if n == 0 {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / n as f64
            },
            diameter: connected.then(|| Latency::ms(diameter)),
            avg_path_delay: (connected && pairs > 0).then(|| Latency::ms(sum / pairs as f64)),
        }
    }
}

impl fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stations, {} edges, degree {}..{} (avg {:.1})",
            self.stations, self.edges, self.min_degree, self.max_degree, self.avg_degree
        )?;
        if let (Some(d), Some(avg)) = (self.diameter, self.avg_path_delay) {
            write!(f, ", diameter {d}, avg path {avg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Shape, TopologyBuilder};

    #[test]
    fn line_stats() {
        let topo = TopologyBuilder::new(4)
            .shape(Shape::Line)
            .trans_delay_range(1.0, 1.0)
            .build();
        let s = TopologyStats::compute(&topo);
        assert_eq!(s.stations, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
        assert_eq!(s.diameter.unwrap().as_ms(), 3.0);
        // Pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 → avg 10/6.
        assert!((s.avg_path_delay.unwrap().as_ms() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn waxman_stats_connected() {
        let topo = TopologyBuilder::new(20).seed(5).build();
        let s = TopologyStats::compute(&topo);
        assert!(s.diameter.is_some());
        assert!(s.avg_path_delay.unwrap().as_ms() <= s.diameter.unwrap().as_ms());
        assert!(s.min_degree >= 1, "generator stitches components");
    }

    #[test]
    fn degenerate_graphs() {
        let empty = TopologyStats::compute(&TopologyBuilder::new(0).build());
        assert_eq!(empty.stations, 0);
        assert_eq!(empty.diameter, None);
        let single = TopologyStats::compute(&TopologyBuilder::new(1).build());
        assert_eq!(single.diameter, None);
        assert_eq!(single.avg_degree, 0.0);
    }

    #[test]
    fn display_includes_counts() {
        let topo = TopologyBuilder::new(3).shape(Shape::Ring).build();
        let s = format!("{}", TopologyStats::compute(&topo));
        assert!(s.contains("3 stations"));
        assert!(s.contains("diameter"));
    }
}
