//! Base stations: identity, compute capacity, and per-unit processing delay.

use crate::units::{Compute, Latency};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a base station within a [`crate::Topology`].
///
/// Stations are densely indexed `0..station_count`, so the id doubles as a
/// vector index throughout the workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StationId(pub usize);

impl StationId {
    /// The underlying dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for StationId {
    fn from(value: usize) -> Self {
        StationId(value)
    }
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bs{}", self.0)
    }
}

/// A 5G base station `bs_i` of the MEC network.
///
/// Each station owns a compute capacity `C(bs_i)` (paper default drawn from
/// [3000, 3600] MHz) and a processing speed expressed as the latency of
/// processing one `ρ_unit` of video data (the paper's `d^pro` varies per
/// station; we model it as a per-station base delay that task complexity
/// multiplies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseStation {
    id: StationId,
    capacity: Compute,
    unit_proc_delay: Latency,
}

impl BaseStation {
    /// Creates a station.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `unit_proc_delay` is negative: a station with
    /// negative capacity has no physical meaning and would silently corrupt
    /// the LP right-hand sides downstream.
    pub fn new(id: StationId, capacity: Compute, unit_proc_delay: Latency) -> Self {
        assert!(
            capacity.as_mhz() >= 0.0,
            "station capacity must be non-negative"
        );
        assert!(
            unit_proc_delay.as_ms() >= 0.0,
            "unit processing delay must be non-negative"
        );
        Self {
            id,
            capacity,
            unit_proc_delay,
        }
    }

    /// The station's identifier.
    pub const fn id(&self) -> StationId {
        self.id
    }

    /// Compute capacity `C(bs_i)`.
    pub const fn capacity(&self) -> Compute {
        self.capacity
    }

    /// Latency of processing one `ρ_unit` of data at this station
    /// (a task `M_{j,k}`'s delay is this base delay scaled by the task's
    /// complexity factor).
    pub const fn unit_proc_delay(&self) -> Latency {
        self.unit_proc_delay
    }
}

impl fmt::Display for BaseStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (capacity {}, unit proc {})",
            self.id, self.capacity, self.unit_proc_delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let bs = BaseStation::new(3.into(), Compute::mhz(3200.0), Latency::ms(1.5));
        assert_eq!(bs.id(), StationId(3));
        assert_eq!(bs.capacity().as_mhz(), 3200.0);
        assert_eq!(bs.unit_proc_delay().as_ms(), 1.5);
        assert_eq!(bs.id().index(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let _ = BaseStation::new(0.into(), Compute::mhz(-1.0), Latency::ms(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_rejected() {
        let _ = BaseStation::new(0.into(), Compute::mhz(1.0), Latency::ms(-1.0));
    }

    #[test]
    fn display_formats() {
        let bs = BaseStation::new(1.into(), Compute::mhz(3000.0), Latency::ms(2.0));
        let s = format!("{bs}");
        assert!(s.contains("bs1"));
        assert!(s.contains("3000.000 MHz"));
    }
}
