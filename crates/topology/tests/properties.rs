//! Property-based tests for the topology substrate.

use mec_topology::generator::{Shape, TopologyBuilder};
use proptest::prelude::*;

proptest! {
    /// Waxman topologies are always connected for any seed and size.
    #[test]
    fn waxman_always_connected(seed in 0u64..5000, n in 1usize..40) {
        let topo = TopologyBuilder::new(n).seed(seed).build();
        prop_assert!(topo.is_connected());
        prop_assert_eq!(topo.station_count(), n);
    }

    /// Shortest-path delays are symmetric (the graph is undirected).
    #[test]
    fn shortest_paths_symmetric(seed in 0u64..500) {
        let topo = TopologyBuilder::new(12).seed(seed).build();
        let paths = topo.shortest_paths();
        for a in topo.station_ids() {
            for b in topo.station_ids() {
                let ab = paths.delay(a, b).expect("connected").as_ms();
                let ba = paths.delay(b, a).expect("connected").as_ms();
                prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {} vs {}", ab, ba);
            }
        }
    }

    /// Shortest-path delays satisfy the triangle inequality.
    #[test]
    fn triangle_inequality(seed in 0u64..300) {
        let topo = TopologyBuilder::new(10).seed(seed).build();
        let paths = topo.shortest_paths();
        for a in topo.station_ids() {
            for b in topo.station_ids() {
                for c in topo.station_ids() {
                    let ab = paths.delay(a, b).unwrap().as_ms();
                    let bc = paths.delay(b, c).unwrap().as_ms();
                    let ac = paths.delay(a, c).unwrap().as_ms();
                    prop_assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    /// A reconstructed path's edge delays sum to the reported distance, and
    /// the path actually connects the endpoints.
    #[test]
    fn path_delay_consistent(seed in 0u64..500, n in 2usize..15) {
        let topo = TopologyBuilder::new(n).seed(seed).build();
        let paths = topo.shortest_paths();
        for a in topo.station_ids() {
            for b in topo.station_ids() {
                let edges = paths.path(a, b, &topo).expect("connected");
                let total: f64 = edges
                    .iter()
                    .map(|&e| topo.edge(e).unit_trans_delay().as_ms())
                    .sum();
                let reported = paths.delay(a, b).unwrap().as_ms();
                prop_assert!((total - reported).abs() < 1e-9);
                // Walk the path to confirm it is a chain from a to b.
                let mut cursor = a;
                for &e in &edges {
                    cursor = topo.edge(e).other(cursor).expect("chain is contiguous");
                }
                prop_assert_eq!(cursor, b);
            }
        }
    }

    /// Deterministic shapes have the expected edge counts.
    #[test]
    fn shape_edge_counts(n in 3usize..30) {
        let ring = TopologyBuilder::new(n).shape(Shape::Ring).build();
        prop_assert_eq!(ring.edge_count(), n);
        let star = TopologyBuilder::new(n).shape(Shape::Star).build();
        prop_assert_eq!(star.edge_count(), n - 1);
        let line = TopologyBuilder::new(n).shape(Shape::Line).build();
        prop_assert_eq!(line.edge_count(), n - 1);
        prop_assert!(ring.is_connected() && star.is_connected() && line.is_connected());
    }
}
