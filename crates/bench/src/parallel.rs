//! Seed-parallel sweep execution on scoped threads.
//!
//! Every figure averages independent seeded runs; those runs share nothing,
//! so they fan out across cores with `std::thread::scope`. The fan-out is
//! bounded by `available_parallelism` (one worker per core, each owning a
//! contiguous chunk of the seed range), and results return in seed order,
//! keeping the tables deterministic.

/// Runs `f(seed)` for `seed ∈ 0..runs` in parallel and returns the results
/// in seed order.
///
/// At most `available_parallelism` worker threads run at once; each owns a
/// contiguous chunk of the seed range and writes into its own slice of the
/// output, so no seed's result ever moves between workers and the returned
/// order is deterministic.
///
/// Falls back to a serial loop when the host exposes a single core (scoped
/// threads would only add contention — and would pollute the wall-clock
/// runtime measurements of Fig 3(c)).
///
/// # Panics
///
/// Propagates any panic from `f`.
pub fn parallel_seeds<T, F>(runs: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if runs <= 1 || cores <= 1 {
        return (0..runs).map(f).collect();
    }
    let workers = cores.min(runs as usize);
    let chunk = (runs as usize).div_ceil(workers);
    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut results;
        let mut start = 0u64;
        let mut handles = Vec::with_capacity(workers);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (slice, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = start;
            start += take as u64;
            handles.push(scope.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(base + i as u64));
                }
            }));
        }
        for h in handles {
            h.join().expect("seed worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every seed filled"))
        .collect()
}

/// Runs `f` over `items` in parallel and returns the results in item
/// order — the work-list twin of [`parallel_seeds`].
///
/// Used to fan independent per-slot LP solves (or any other shared-nothing
/// batch) across cores: at most `available_parallelism` scoped workers run
/// at once, each owning a contiguous chunk of the items, so the output
/// order is deterministic and nothing is sent between workers mid-flight.
/// On a single-core host the batch runs serially in place.
///
/// # Panics
///
/// Propagates any panic from `f`.
pub fn parallel_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if items.len() <= 1 || cores <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = cores.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut results;
        let mut remaining: &[I] = items;
        let mut handles = Vec::with_capacity(workers);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (out_slice, out_tail) = rest.split_at_mut(take);
            let (in_slice, in_tail) = remaining.split_at(take);
            rest = out_tail;
            remaining = in_tail;
            handles.push(scope.spawn(move || {
                for (slot, item) in out_slice.iter_mut().zip(in_slice) {
                    *slot = Some(f(item));
                }
            }));
        }
        for h in handles {
            h.join().expect("map worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item filled"))
        .collect()
}

/// Element-wise mean of per-seed metric vectors (each inner vector is one
/// seed's row of per-algorithm values).
///
/// # Panics
///
/// Panics if the rows have inconsistent widths or `rows` is empty.
pub fn mean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "need at least one row");
    let width = rows[0].len();
    let mut out = vec![0.0; width];
    for row in rows {
        assert_eq!(row.len(), width, "ragged rows");
        for (o, v) in out.iter_mut().zip(row) {
            *o += v / rows.len() as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = parallel_seeds(8, |seed| seed * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_run_stays_inline() {
        assert_eq!(parallel_seeds(1, |s| s + 1), vec![1]);
        assert!(parallel_seeds(0, |s| s).is_empty());
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..9).collect();
        let out = parallel_map(&items, |&i| i * 3);
        assert_eq!(out, vec![0, 3, 6, 9, 12, 15, 18, 21, 24]);
    }

    #[test]
    fn parallel_map_handles_tiny_batches() {
        assert_eq!(parallel_map(&[7u64], |&i| i + 1), vec![8]);
        assert!(parallel_map::<u64, u64, _>(&[], |&i| i).is_empty());
    }

    #[test]
    fn mean_rows_averages() {
        let rows = vec![vec![1.0, 4.0], vec![3.0, 8.0]];
        assert_eq!(mean_rows(&rows), vec![2.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let _ = mean_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
