//! Seed-parallel sweep execution on scoped threads.
//!
//! Every figure averages independent seeded runs; those runs share nothing,
//! so they fan out across cores with `crossbeam`'s scoped threads (results
//! return in seed order, keeping the tables deterministic).

/// Runs `f(seed)` for `seed ∈ 0..runs` in parallel and returns the results
/// in seed order.
///
/// Falls back to a serial loop when the host exposes a single core (scoped
/// threads would only add contention — and would pollute the wall-clock
/// runtime measurements of Fig 3(c)).
///
/// # Panics
///
/// Propagates any panic from `f`.
pub fn parallel_seeds<T, F>(runs: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if runs <= 1 || cores <= 1 {
        return (0..runs).map(f).collect();
    }
    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..runs)
            .map(|seed| scope.spawn(move |_| f(seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed worker panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Element-wise mean of per-seed metric vectors (each inner vector is one
/// seed's row of per-algorithm values).
///
/// # Panics
///
/// Panics if the rows have inconsistent widths or `rows` is empty.
pub fn mean_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "need at least one row");
    let width = rows[0].len();
    let mut out = vec![0.0; width];
    for row in rows {
        assert_eq!(row.len(), width, "ragged rows");
        for (o, v) in out.iter_mut().zip(row) {
            *o += v / rows.len() as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = parallel_seeds(8, |seed| seed * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_run_stays_inline() {
        assert_eq!(parallel_seeds(1, |s| s + 1), vec![1]);
        assert!(parallel_seeds(0, |s| s).is_empty());
    }

    #[test]
    fn mean_rows_averages() {
        let rows = vec![vec![1.0, 4.0], vec![3.0, 8.0]];
        assert_eq!(mean_rows(&rows), vec![2.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let _ = mean_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
