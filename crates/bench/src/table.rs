//! Result tables: aligned console output + CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-oriented result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, column).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (directory creation, write).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut csv = self.headers.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(path, csv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["algo", "reward"]);
        t.push(vec!["Appro".into(), "123.4".into()]);
        t.push(vec!["HeuKKT".into(), "99".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("Appro"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 0), "HeuKKT");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("mec_bench_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
