//! Perf-regression gate over normalized `BENCH_*.json` result files.
//!
//! The vendored criterion shim writes one `BENCH_<target>.json` per
//! bench target under `results/` (median / p95 nanoseconds per labelled
//! benchmark). This module diffs a *current* directory of such files
//! against a committed *baseline* directory: a benchmark regresses when
//! its current median exceeds the baseline median by more than its
//! relative-noise threshold. Speedups, new benchmarks, and benchmarks
//! missing from one side never fail the gate — only slowdowns do.
//!
//! Thresholds are deliberately loose by default (50% — micro-benchmarks
//! on shared CI runners are noisy); per-benchmark overrides use
//! `--threshold name=frac` where `name` matches a full result label or
//! a bench file name.

use mec_obs::json::{parse_json, JsonValue};
use std::collections::BTreeMap;

/// One benchmark's numbers from a `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Full label, `group/function/param`.
    pub name: String,
    /// Median nanoseconds per iteration (the gated statistic).
    pub median_ns: u64,
    /// 95th-percentile nanoseconds per iteration (reported, not gated).
    pub p95_ns: u64,
}

/// One parsed `BENCH_<bench>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The bench target name (`lp_solver`, `fig3_runtime`, ...).
    pub bench: String,
    /// Per-benchmark timings.
    pub entries: Vec<BenchEntry>,
    /// CPUs of the machine that produced the file (`machine.cpus`;
    /// 0 when the field is absent). Not gated — used to flag scaling
    /// results measured with more shards than cores.
    pub cpus: u64,
}

/// Parses the normalized result JSON written by the criterion shim.
///
/// # Errors
///
/// Returns a message describing the first structural problem: invalid
/// JSON, wrong `schema`, or a result missing `name`/`median_ns`.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let value = parse_json(text).map_err(|e| e.to_string())?;
    let obj = value.as_obj().ok_or("top level is not an object")?;
    let schema = obj.get("schema").and_then(JsonValue::as_u64);
    if schema != Some(1) {
        return Err(format!("unsupported schema {schema:?} (expected 1)"));
    }
    let bench = obj
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"bench\" name")?
        .to_string();
    let cpus = obj
        .get("machine")
        .and_then(JsonValue::as_obj)
        .and_then(|m| m.get("cpus"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let results = obj
        .get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("missing \"results\" array")?;
    let mut entries = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let robj = r
            .as_obj()
            .ok_or_else(|| format!("results[{i}] is not an object"))?;
        let field = |key: &str| {
            robj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("results[{i}] missing numeric \"{key}\""))
        };
        entries.push(BenchEntry {
            name: robj
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("results[{i}] missing \"name\""))?
                .to_string(),
            median_ns: field("median_ns")?,
            p95_ns: field("p95_ns")?,
        });
    }
    Ok(BenchReport {
        bench,
        entries,
        cpus,
    })
}

/// Warnings (never failures) for scaling benchmarks measured on a
/// machine with fewer CPUs than worker shards: a `.../shards/N` result
/// with `N > machine.cpus` reflects oversubscription, not parallel
/// speedup, so comparing it across shard counts is not credible.
pub fn cpu_shard_warnings(reports: &[BenchReport]) -> Vec<String> {
    let mut warnings = Vec::new();
    for r in reports {
        if r.cpus == 0 {
            continue; // machine info absent; nothing to judge
        }
        for e in &r.entries {
            let Some((_, param)) = e.name.rsplit_once("/shards/") else {
                continue;
            };
            let Ok(shards) = param.parse::<u64>() else {
                continue;
            };
            if shards > r.cpus {
                warnings.push(format!(
                    "{}/{}: measured with {} shard(s) on {} cpu(s) — \
                     oversubscribed; scaling numbers are not credible",
                    r.bench, e.name, shards, r.cpus,
                ));
            }
        }
    }
    warnings
}

/// Relative-noise thresholds, keyed by result label or bench name.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Fallback fraction when no override matches.
    pub default: f64,
    /// `label -> fraction` overrides (full result label wins over the
    /// bench file name).
    pub overrides: BTreeMap<String, f64>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            // Generous on purpose: medians of 10-sample micro-benches on
            // a busy CI runner routinely wobble by tens of percent.
            default: 0.5,
            overrides: BTreeMap::new(),
        }
    }
}

impl Thresholds {
    /// The fraction applied to one benchmark of one bench target.
    pub fn for_bench(&self, bench: &str, label: &str) -> f64 {
        self.overrides
            .get(label)
            .or_else(|| self.overrides.get(bench))
            .copied()
            .unwrap_or(self.default)
    }
}

/// The verdict on one benchmark present in the baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold (or faster).
    Pass,
    /// Slower than `baseline * (1 + threshold)`.
    Regressed,
    /// Present in the baseline but absent from the current run.
    Missing,
}

/// One compared benchmark.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Bench target the benchmark belongs to.
    pub bench: String,
    /// Full result label.
    pub name: String,
    /// Baseline median ns.
    pub baseline_ns: u64,
    /// Current median ns (0 when missing).
    pub current_ns: u64,
    /// Threshold fraction that applied.
    pub threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl Comparison {
    /// Current-over-baseline ratio (1.0 = unchanged).
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns == 0 {
            return 1.0;
        }
        self.current_ns as f64 / self.baseline_ns as f64
    }
}

/// The gate's full output.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// One row per baseline benchmark.
    pub comparisons: Vec<Comparison>,
    /// Labels present only in the current run (informational).
    pub new_benchmarks: Vec<String>,
}

impl GateOutcome {
    /// True when no benchmark regressed.
    pub fn passed(&self) -> bool {
        self.comparisons
            .iter()
            .all(|c| c.verdict != Verdict::Regressed)
    }

    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.comparisons
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .count()
    }

    /// Renders the human-readable table the gate binary prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            let status = match c.verdict {
                Verdict::Pass => "ok  ",
                Verdict::Regressed => "FAIL",
                Verdict::Missing => "miss",
            };
            out.push_str(&format!(
                "{status}  {}/{}: {} -> {} ns ({:+.1}%, allowed +{:.0}%)\n",
                c.bench,
                c.name,
                c.baseline_ns,
                c.current_ns,
                (c.ratio() - 1.0) * 100.0,
                c.threshold * 100.0,
            ));
        }
        for name in &self.new_benchmarks {
            out.push_str(&format!("new   {name} (no baseline)\n"));
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!(
            "gate: {verdict} ({} compared, {} regressed, {} new)\n",
            self.comparisons.len(),
            self.regressions(),
            self.new_benchmarks.len(),
        ));
        out
    }
}

/// Diffs current reports against baselines.
///
/// `slowdown` scales every current median before comparison; `1.0` is a
/// plain diff, while CI's negative test passes `2.0` to prove the gate
/// would catch a uniform 2× slowdown.
pub fn compare(
    baselines: &[BenchReport],
    currents: &[BenchReport],
    thresholds: &Thresholds,
    slowdown: f64,
) -> GateOutcome {
    let current_index: BTreeMap<(String, String), u64> = currents
        .iter()
        .flat_map(|r| {
            r.entries.iter().map(|e| {
                let scaled = (e.median_ns as f64 * slowdown).round() as u64;
                ((r.bench.clone(), e.name.clone()), scaled)
            })
        })
        .collect();
    let mut outcome = GateOutcome::default();
    let mut seen = std::collections::BTreeSet::new();
    for base in baselines {
        for e in &base.entries {
            let key = (base.bench.clone(), e.name.clone());
            seen.insert(key.clone());
            let threshold = thresholds.for_bench(&base.bench, &e.name);
            let (current_ns, verdict) = match current_index.get(&key) {
                None => (0, Verdict::Missing),
                Some(&cur) => {
                    let limit = e.median_ns as f64 * (1.0 + threshold);
                    if cur as f64 > limit {
                        (cur, Verdict::Regressed)
                    } else {
                        (cur, Verdict::Pass)
                    }
                }
            };
            outcome.comparisons.push(Comparison {
                bench: base.bench.clone(),
                name: e.name.clone(),
                baseline_ns: e.median_ns,
                current_ns,
                threshold,
                verdict,
            });
        }
    }
    for (bench, name) in current_index.keys() {
        if !seen.contains(&(bench.clone(), name.clone())) {
            outcome.new_benchmarks.push(format!("{bench}/{name}"));
        }
    }
    outcome
}

/// Loads every `BENCH_*.json` in a directory.
///
/// # Errors
///
/// Returns a message when the directory cannot be read, a file cannot
/// be read, or a file fails to parse. An empty directory yields an
/// empty list (the caller decides whether that is fatal).
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<BenchReport>, String> {
    let mut reports = Vec::new();
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        reports.push(parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bench: &str, medians: &[(&str, u64)]) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            entries: medians
                .iter()
                .map(|&(name, median_ns)| BenchEntry {
                    name: name.to_string(),
                    median_ns,
                    p95_ns: median_ns * 2,
                })
                .collect(),
            cpus: 8,
        }
    }

    #[test]
    fn parses_shim_output() {
        let text = criterion::render_report(
            "demo",
            &[criterion::BenchStats {
                name: "g/f/10".into(),
                samples: 5,
                mean_ns: 120,
                median_ns: 100,
                p95_ns: 180,
                throughput_iters_per_sec: 8.3e6,
            }],
        );
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed.bench, "demo");
        assert_eq!(
            parsed.entries,
            vec![BenchEntry {
                name: "g/f/10".into(),
                median_ns: 100,
                p95_ns: 180,
            }]
        );
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(parse_report("{\"schema\":2,\"bench\":\"x\",\"results\":[]}").is_err());
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{\"schema\":1,\"results\":[]}").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![report("lp", &[("solve/10", 1000), ("solve/20", 5000)])];
        let outcome = compare(&base, &base, &Thresholds::default(), 1.0);
        assert!(outcome.passed());
        assert_eq!(outcome.comparisons.len(), 2);
        assert!(outcome.new_benchmarks.is_empty());
    }

    #[test]
    fn noise_within_threshold_passes_but_2x_slowdown_fails() {
        let base = vec![report("lp", &[("solve/10", 1000)])];
        let wobbly = vec![report("lp", &[("solve/10", 1400)])];
        let t = Thresholds::default();
        assert!(compare(&base, &wobbly, &t, 1.0).passed(), "+40% is noise");
        // The CI negative test: an injected uniform 2x slowdown must trip
        // the gate even though the rerun itself was clean.
        let outcome = compare(&base, &base, &t, 2.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions(), 1);
        assert!(outcome.render().contains("FAIL"));
    }

    #[test]
    fn per_bench_threshold_overrides_apply() {
        let base = vec![report("lp", &[("solve/10", 1000)])];
        let cur = vec![report("lp", &[("solve/10", 1200)])];
        let mut t = Thresholds::default();
        t.overrides.insert("solve/10".into(), 0.1);
        assert!(!compare(&base, &cur, &t, 1.0).passed(), "label override");
        t.overrides.clear();
        t.overrides.insert("lp".into(), 0.1);
        assert!(!compare(&base, &cur, &t, 1.0).passed(), "bench override");
        t.overrides.insert("solve/10".into(), 0.5);
        assert!(compare(&base, &cur, &t, 1.0).passed(), "label beats bench");
    }

    #[test]
    fn missing_and_new_benchmarks_do_not_fail() {
        let base = vec![report("lp", &[("gone/1", 1000)])];
        let cur = vec![report("lp", &[("fresh/1", 1000)])];
        let outcome = compare(&base, &cur, &Thresholds::default(), 1.0);
        assert!(outcome.passed());
        assert_eq!(outcome.comparisons[0].verdict, Verdict::Missing);
        assert_eq!(outcome.new_benchmarks, vec!["lp/fresh/1".to_string()]);
    }

    #[test]
    fn oversubscribed_scaling_results_warn_but_do_not_fail() {
        let text = "{\"schema\":1,\"bench\":\"serve_throughput\",\
                    \"machine\":{\"cpus\":2,\"os\":\"linux\",\"arch\":\"x86_64\"},\
                    \"results\":[\
                    {\"name\":\"serve_replay/shards/1\",\"samples\":10,\"mean_ns\":10,\"median_ns\":10,\"p95_ns\":12,\"throughput_iters_per_sec\":1.0},\
                    {\"name\":\"serve_replay/shards/8\",\"samples\":10,\"mean_ns\":10,\"median_ns\":10,\"p95_ns\":12,\"throughput_iters_per_sec\":1.0}]}";
        let parsed = parse_report(text).unwrap();
        assert_eq!(parsed.cpus, 2);
        let warnings = cpu_shard_warnings(std::slice::from_ref(&parsed));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("shards/8"), "{warnings:?}");
        assert!(warnings[0].contains("2 cpu(s)"), "{warnings:?}");
        // Warnings never affect the gate verdict.
        let outcome = compare(
            std::slice::from_ref(&parsed),
            std::slice::from_ref(&parsed),
            &Thresholds::default(),
            1.0,
        );
        assert!(outcome.passed());
    }

    #[test]
    fn reports_without_machine_info_never_warn() {
        let r = BenchReport {
            bench: "x".into(),
            entries: vec![BenchEntry {
                name: "g/shards/64".into(),
                median_ns: 1,
                p95_ns: 1,
            }],
            cpus: 0,
        };
        assert!(cpu_shard_warnings(&[r]).is_empty());
    }

    #[test]
    fn speedups_always_pass() {
        let base = vec![report("lp", &[("solve/10", 10_000)])];
        let fast = vec![report("lp", &[("solve/10", 100)])];
        assert!(compare(&base, &fast, &Thresholds::default(), 1.0).passed());
    }
}
