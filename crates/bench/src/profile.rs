//! `--profile-out` / `--profile-folded` plumbing shared by the figure
//! binaries.
//!
//! The flags are parsed unconditionally so a build without the `prof`
//! feature gives a clear "rebuild with --features prof" error instead of
//! silently writing an empty profile.

/// Parsed profiling flags for a figure binary.
#[derive(Debug, Default)]
pub struct ProfileArgs {
    /// Destination for the JSONL phase profile (`--profile-out`).
    pub out: Option<String>,
    /// Destination for collapsed flamegraph stacks (`--profile-folded`).
    pub folded: Option<String>,
}

impl ProfileArgs {
    /// Parses `--profile-out PATH` / `--profile-folded PATH` from the
    /// process arguments, rejecting anything else.
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags, missing values, or
    /// profiling flags in a build without the `prof` feature.
    pub fn from_env(usage: &str) -> Result<Self, String> {
        let mut args = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value\n\n{usage}"))
            };
            match flag.as_str() {
                "--profile-out" => args.out = Some(value("--profile-out")?),
                "--profile-folded" => args.folded = Some(value("--profile-folded")?),
                "--help" | "-h" => return Err(usage.to_string()),
                other => return Err(format!("unknown flag {other:?}\n\n{usage}")),
            }
        }
        #[cfg(not(feature = "prof"))]
        if args.out.is_some() || args.folded.is_some() {
            return Err(
                "profiling flags need the prof feature; rebuild with --features prof".to_string(),
            );
        }
        Ok(args)
    }

    /// True when any profile output was requested.
    pub fn active(&self) -> bool {
        self.out.is_some() || self.folded.is_some()
    }

    /// Arms the profiler if any output was requested.
    pub fn begin(&self) {
        #[cfg(feature = "prof")]
        if self.active() {
            mec_obs::prof::reset();
            mec_obs::prof::set_enabled(true);
        }
    }

    /// Disarms the profiler and writes the requested outputs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the file that could not be written.
    pub fn finish(&self) -> Result<(), String> {
        #[cfg(feature = "prof")]
        if self.active() {
            mec_obs::prof::set_enabled(false);
            let report = mec_obs::prof::take_report();
            if let Some(path) = &self.out {
                std::fs::write(path, report.to_jsonl())
                    .map_err(|e| format!("cannot write profile {path:?}: {e}"))?;
                eprintln!(
                    "profile: {} phase(s) written to {path}",
                    report.phases.len()
                );
            }
            if let Some(path) = &self.folded {
                std::fs::write(path, report.render_folded())
                    .map_err(|e| format!("cannot write folded stacks {path:?}: {e}"))?;
                eprintln!("profile: folded stacks written to {path}");
            }
        }
        Ok(())
    }
}
