//! # mec-bench
//!
//! The experiment harness: one driver per figure of the paper's evaluation
//! (§VI), plus the Theorem-1 approximation-ratio and Theorem-3 regret
//! checks. Each driver prints the series the paper plots and writes a CSV
//! under `results/`.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3` | Fig 3(a-c): offline reward / latency / running time vs `\|R\|` |
//! | `fig4` | Fig 4(a-b): online reward / latency vs `\|R\|` |
//! | `fig5` | Fig 5(a-b): reward / latency vs `\|BS\|` |
//! | `fig6` | Fig 6(a-b): online reward / latency vs max data rate |
//! | `regret` | Theorem 3: cumulative regret vs `O(√(κT log T) + Tηε)` |
//! | `ratio` | Theorem 1: `Appro` (1 round) vs exact optimum ≥ 1/8 |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;
pub mod gate;
pub mod parallel;
pub mod params;
pub mod profile;
pub mod table;

pub use params::Defaults;
pub use profile::ProfileArgs;
pub use table::Table;
