//! The paper's §VI-A default experiment parameters, and instance builders.

use mec_core::model::{Instance, InstanceParams, Realizations};
use mec_sim::SlotConfig;
use mec_topology::units::Latency;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{ArrivalProcess, Request, WorkloadBuilder};

/// Default experiment configuration (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Defaults {
    /// Number of base stations `|BS|` (paper: 20, swept 10-50 in Fig 5).
    pub stations: usize,
    /// Number of requests `|R|` (default 150, swept 100-300).
    pub requests: usize,
    /// Rate band in MB/s (paper: [30, 50]; Fig 6 sweeps the max).
    pub rate_lo: f64,
    /// Upper end of the rate band.
    pub rate_hi: f64,
    /// Number of discrete rate levels `|DR|`.
    pub levels: usize,
    /// Geometric decay of level probabilities (large rates are rare).
    pub decay: f64,
    /// Latency requirement in ms (paper: 200).
    pub deadline_ms: f64,
    /// Stream durations in slots for the online experiments.
    pub duration: (u64, u64),
    /// Arrival window for the online experiments (slots).
    pub arrival_horizon: u64,
    /// Simulation horizon for the online experiments (slots).
    pub sim_horizon: u64,
    /// Independent repetitions averaged per data point.
    pub runs: u64,
}

impl Default for Defaults {
    fn default() -> Self {
        Self {
            stations: 20,
            requests: 150,
            rate_lo: 30.0,
            rate_hi: 50.0,
            levels: 5,
            decay: 0.75,
            deadline_ms: 200.0,
            // Chosen so the network saturates inside the paper's 100-300
            // request sweep (≈ 0.45·|R| concurrent streams of ~800 MHz
            // against ~66 GHz of total capacity: the knee sits near
            // |R| ≈ 180, so rewards grow then flatten exactly as Fig 4
            // describes).
            duration: (60, 120),
            arrival_horizon: 200,
            sim_horizon: 400,
            runs: 5,
        }
    }
}

impl Defaults {
    /// The paper's defaults.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Instance parameters (`C_unit`, `C_l`, slot length).
    pub fn instance_params(&self) -> InstanceParams {
        InstanceParams::default()
    }

    /// Builds the topology for one run.
    pub fn topology(&self, seed: u64) -> Topology {
        TopologyBuilder::new(self.stations).seed(seed).build()
    }

    /// Builds an offline instance + realizations for one run.
    pub fn offline_instance(&self, seed: u64) -> (Instance, Realizations) {
        let topo = self.topology(seed);
        let requests = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(self.requests)
            .rate_range(self.rate_lo, self.rate_hi)
            .levels(self.levels)
            .decay(self.decay)
            .deadline(Latency::ms(self.deadline_ms))
            .build();
        let instance = Instance::new(topo, requests, self.instance_params());
        let realized = Realizations::draw(&instance, seed);
        (instance, realized)
    }

    /// Builds the online world for one run: topology, streaming workload,
    /// and the slot config.
    pub fn online_world(&self, seed: u64) -> (Topology, Vec<Request>, SlotConfig) {
        self.online_world_with(
            seed,
            ArrivalProcess::UniformOver {
                horizon: self.arrival_horizon,
            },
        )
    }

    /// Online world with every request arriving at slot 0 — the
    /// offline-comparable burst used when `DynamicRR` shares a figure with
    /// the offline algorithms (Fig 5): admission is then bounded by the
    /// same instantaneous capacity the offline algorithms face.
    pub fn online_world_burst(&self, seed: u64) -> (Topology, Vec<Request>, SlotConfig) {
        self.online_world_with(seed, ArrivalProcess::AllAtOnce)
    }

    fn online_world_with(
        &self,
        seed: u64,
        arrivals: ArrivalProcess,
    ) -> (Topology, Vec<Request>, SlotConfig) {
        let topo = self.topology(seed);
        let requests = WorkloadBuilder::new(&topo)
            .seed(seed)
            .count(self.requests)
            .rate_range(self.rate_lo, self.rate_hi)
            .levels(self.levels)
            .decay(self.decay)
            .deadline(Latency::ms(self.deadline_ms))
            .duration_range(self.duration.0, self.duration.1)
            .arrivals(arrivals)
            .build();
        let params = self.instance_params();
        let config = SlotConfig {
            slot_ms: params.slot_ms,
            horizon: self.sim_horizon,
            c_unit: params.c_unit,
            seed,
            ..Default::default()
        };
        (topo, requests, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let d = Defaults::paper();
        assert_eq!(d.stations, 20);
        assert_eq!(d.rate_lo, 30.0);
        assert_eq!(d.rate_hi, 50.0);
        assert_eq!(d.deadline_ms, 200.0);
    }

    #[test]
    fn offline_instance_respects_counts() {
        let d = Defaults {
            requests: 25,
            stations: 6,
            runs: 1,
            ..Defaults::paper()
        };
        let (inst, realized) = d.offline_instance(3);
        assert_eq!(inst.request_count(), 25);
        assert_eq!(inst.topo().station_count(), 6);
        assert_eq!(realized.len(), 25);
    }

    #[test]
    fn online_world_streams_arrivals() {
        let d = Defaults {
            requests: 30,
            stations: 5,
            ..Defaults::paper()
        };
        let (topo, reqs, cfg) = d.online_world(1);
        assert_eq!(topo.station_count(), 5);
        assert_eq!(reqs.len(), 30);
        assert_eq!(cfg.horizon, d.sim_horizon);
        assert!(reqs.iter().all(|r| r.arrival_slot() < d.arrival_horizon));
        assert!(reqs
            .iter()
            .all(|r| (d.duration.0..=d.duration.1).contains(&r.duration_slots())));
    }
}
