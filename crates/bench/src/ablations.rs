//! Ablations of the design choices DESIGN.md §6 documents:
//!
//! * the threshold **learner** (successive elimination vs UCB1 vs ε-greedy
//!   vs Thompson sampling vs discounted UCB),
//! * the discretization width **κ** (Theorem 3's tradeoff, end to end),
//! * `Appro`'s **rounding rounds** (verbatim single round → full backfill),
//! * the per-slot **assignment** (fast water-filling vs faithful LP-PT),
//!
//! plus the **continuity extension** experiment (sustained-service floors,
//! §I of the paper).

use crate::params::Defaults;
use crate::table::Table;
use mec_core::model::{Instance, Realizations};
use mec_core::online::{DynamicRr, DynamicRrConfig, Learner};
use mec_core::{Appro, OfflineAlgorithm};
use mec_sim::Engine;

fn run_dynamic_rr(d: &Defaults, config: DynamicRrConfig, use_lp: bool) -> (f64, f64) {
    let mut reward = 0.0;
    let mut latency = 0.0;
    for seed in 0..d.runs {
        let (topo, requests, cfg) = d.online_world(seed);
        let paths = topo.shortest_paths();
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let mut policy = if use_lp {
            let instance = Instance::new(topo.clone(), requests, d.instance_params());
            DynamicRr::with_lp(instance, config)
        } else {
            DynamicRr::new(config)
        };
        let m = engine.run(&mut policy).expect("legal schedules");
        reward += m.total_reward() / d.runs as f64;
        latency += m.avg_latency_ms() / d.runs as f64;
    }
    (reward, latency)
}

/// Learner ablation at the saturated operating point.
pub fn learner_ablation(d: &Defaults) -> Table {
    let mut table = Table::new(
        "Ablation: threshold learner (|R| = saturated)",
        &["learner", "reward", "latency (ms)"],
    );
    let learners = [
        ("successive-elimination", Learner::SuccessiveElimination),
        ("ucb1", Learner::Ucb1),
        ("eps-greedy(0.1)", Learner::EpsilonGreedy { epsilon: 0.1 }),
        ("thompson", Learner::Thompson),
        (
            "discounted-ucb(0.99)",
            Learner::DiscountedUcb { gamma: 0.99 },
        ),
    ];
    for (name, learner) in learners {
        let cfg = DynamicRrConfig {
            horizon_hint: d.sim_horizon,
            learner,
            ..Default::default()
        };
        let (reward, latency) = run_dynamic_rr(d, cfg, false);
        table.push(vec![
            name.to_string(),
            format!("{reward:.1}"),
            format!("{latency:.1}"),
        ]);
    }
    table
}

/// Discretization-width ablation: Theorem 3's κ tradeoff, end to end.
pub fn kappa_ablation(d: &Defaults) -> Table {
    let mut table = Table::new(
        "Ablation: threshold grid width κ",
        &["kappa", "epsilon (MHz)", "reward"],
    );
    for kappa in [1usize, 3, 9, 27, 81] {
        let cfg = DynamicRrConfig {
            kappa,
            horizon_hint: d.sim_horizon,
            ..Default::default()
        };
        let eps = if kappa <= 1 {
            0.0
        } else {
            (cfg.threshold_hi_mhz - cfg.threshold_lo_mhz) / (kappa - 1) as f64
        };
        let (reward, _) = run_dynamic_rr(d, cfg, false);
        table.push(vec![
            kappa.to_string(),
            format!("{eps:.1}"),
            format!("{reward:.1}"),
        ]);
    }
    table
}

/// Rounding-rounds ablation: from the verbatim single-round `Appro`
/// (Theorem 1's operating point) to the fully backfilled variant.
pub fn rounds_ablation(d: &Defaults) -> Table {
    let mut table = Table::new(
        "Ablation: Appro rounding rounds",
        &["rounds", "reward", "admitted"],
    );
    for rounds in [1usize, 2, 4, 8, 16, 32] {
        let mut reward = 0.0;
        let mut admitted = 0.0;
        for seed in 0..d.runs {
            let (instance, realized) = d.offline_instance(seed);
            let out = Appro::new(seed)
                .rounds(rounds)
                .solve(&instance, &realized)
                .expect("appro succeeds");
            reward += out.metrics().total_reward() / d.runs as f64;
            admitted += out.admitted() as f64 / d.runs as f64;
        }
        table.push(vec![
            rounds.to_string(),
            format!("{reward:.1}"),
            format!("{admitted:.1}"),
        ]);
    }
    table
}

/// Assignment-path ablation: fast water-filling vs the faithful per-slot
/// LP-PT solve, on a deliberately small world (the LP path is ~100×
/// slower).
pub fn assignment_ablation() -> Table {
    let d = Defaults {
        requests: 25,
        stations: 5,
        sim_horizon: 120,
        arrival_horizon: 60,
        duration: (20, 40),
        runs: 3,
        ..Defaults::paper()
    };
    let mut table = Table::new(
        "Ablation: per-slot assignment (small world)",
        &["assignment", "reward", "latency (ms)"],
    );
    for (name, use_lp) in [("water-filling (fast)", false), ("LP-PT (faithful)", true)] {
        let cfg = DynamicRrConfig {
            horizon_hint: d.sim_horizon,
            ..Default::default()
        };
        let (reward, latency) = run_dynamic_rr(&d, cfg, use_lp);
        table.push(vec![
            name.to_string(),
            format!("{reward:.1}"),
            format!("{latency:.1}"),
        ]);
    }
    table
}

/// Slot-granularity ablation: the paper fixes the resource-slot size
/// `C_l` at 1000 MHz without justification; this sweeps it. Small slots
/// give the LP finer start positions (more variables, slower); large slots
/// collapse toward a single prefix test.
pub fn slot_size_ablation(d: &Defaults) -> Table {
    use mec_core::model::{Instance, InstanceParams, Realizations};
    use mec_core::Heu;
    use mec_topology::units::Compute;

    let mut table = Table::new(
        "Ablation: resource-slot size C_l (Heu, offline)",
        &["C_l (MHz)", "reward", "admitted", "runtime (ms)"],
    );
    for cl in [250.0f64, 500.0, 1000.0, 2000.0, 3000.0] {
        let mut reward = 0.0;
        let mut admitted = 0.0;
        let mut runtime = 0.0;
        for seed in 0..d.runs {
            let topo = d.topology(seed);
            let requests = mec_workload::WorkloadBuilder::new(&topo)
                .seed(seed)
                .count(d.requests)
                .rate_range(d.rate_lo, d.rate_hi)
                .levels(d.levels)
                .decay(d.decay)
                .build();
            let params = InstanceParams {
                slot_capacity: Compute::mhz(cl),
                ..InstanceParams::default()
            };
            let instance = Instance::new(topo, requests, params);
            let realized = Realizations::draw(&instance, seed);
            let out = Heu::new(seed)
                .solve(&instance, &realized)
                .expect("heu succeeds");
            reward += out.metrics().total_reward() / d.runs as f64;
            admitted += out.admitted() as f64 / d.runs as f64;
            runtime += out.runtime().as_secs_f64() * 1000.0 / d.runs as f64;
        }
        table.push(vec![
            format!("{cl:.0}"),
            format!("{reward:.1}"),
            format!("{admitted:.1}"),
            format!("{runtime:.1}"),
        ]);
    }
    table
}

/// Extension experiment: the sustained-service (continuity) requirement.
///
/// The paper's hard constraint is the response delay; its introduction also
/// demands that "the continuous processing of its data stream … be
/// performed within a specified delay requirement". This experiment turns
/// on [`mec_sim::Continuity`] (streams served below half their realized
/// rate for more than `grace` slots abort) and re-runs the Fig-4 saturated
/// comparison: policies that thin allocations across too many streams now
/// pay for it with teardowns.
pub fn continuity_extension(d: &Defaults, min_fraction: f64, grace_slots: u64) -> Table {
    use mec_core::{OnlineGreedy, OnlineHeuKkt, OnlineOcorp};
    use mec_sim::{Continuity, SlotPolicy};

    let mut table = Table::new(
        format!(
            "Extension: continuity floor {min_fraction} of realized rate, grace {grace_slots} slots"
        ),
        &["policy", "reward", "completed", "aborted", "expired"],
    );
    let names = ["DynamicRR", "HeuKKT", "OCORP", "Greedy"];
    for name in names {
        let mut reward = 0.0;
        let (mut completed, mut aborted, mut expired) = (0usize, 0usize, 0usize);
        for seed in 0..d.runs {
            let (topo, requests, mut cfg) = d.online_world(seed);
            cfg.continuity = Some(Continuity {
                min_fraction,
                grace_slots,
            });
            let paths = topo.shortest_paths();
            let mut engine = Engine::new(&topo, &paths, requests, cfg);
            let mut policy: Box<dyn SlotPolicy> = match name {
                "DynamicRR" => Box::new(DynamicRr::new(DynamicRrConfig {
                    horizon_hint: cfg.horizon,
                    ..Default::default()
                })),
                "HeuKKT" => Box::new(OnlineHeuKkt::new()),
                "OCORP" => Box::new(OnlineOcorp::new()),
                _ => Box::new(OnlineGreedy::new()),
            };
            let m = engine.run(policy.as_mut()).expect("legal schedules");
            reward += m.total_reward() / d.runs as f64;
            completed += m.completed();
            aborted += m.aborted();
            expired += m.expired();
        }
        table.push(vec![
            name.to_string(),
            format!("{reward:.1}"),
            completed.to_string(),
            aborted.to_string(),
            expired.to_string(),
        ]);
    }
    table
}

/// Realizations smoke check shared by ablation tests: same-seed worlds
/// agree across calls.
pub fn world_is_reproducible(d: &Defaults) -> bool {
    let (a, ra) = d.offline_instance(3);
    let (b, rb) = d.offline_instance(3);
    a.request_count() == b.request_count() && ra == rb && {
        let _ = Realizations::draw(&a, 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Defaults {
        Defaults {
            requests: 20,
            stations: 4,
            runs: 1,
            sim_horizon: 100,
            arrival_horizon: 50,
            duration: (10, 20),
            ..Defaults::paper()
        }
    }

    #[test]
    fn learner_ablation_covers_all_learners() {
        let t = learner_ablation(&tiny());
        assert_eq!(t.len(), 5);
        for row in 0..5 {
            let reward: f64 = t.cell(row, 1).parse().unwrap();
            assert!(reward >= 0.0);
        }
    }

    #[test]
    fn kappa_ablation_monotone_epsilon() {
        let t = kappa_ablation(&tiny());
        assert_eq!(t.len(), 5);
        let eps: Vec<f64> = (0..5).map(|r| t.cell(r, 1).parse().unwrap()).collect();
        // ε shrinks as κ grows (row 0 is the κ=1 special case).
        assert!(eps[1] > eps[2] && eps[2] > eps[3] && eps[3] > eps[4]);
    }

    #[test]
    fn rounds_ablation_monotone_reward() {
        let t = rounds_ablation(&tiny());
        let rewards: Vec<f64> = (0..t.len())
            .map(|r| t.cell(r, 1).parse().unwrap())
            .collect();
        // Backfilling can only add reward (tolerate small sampling noise in
        // intermediate rows, but the extremes must order).
        assert!(
            rewards.last().unwrap() >= rewards.first().unwrap(),
            "32 rounds ({}) below 1 round ({})",
            rewards.last().unwrap(),
            rewards.first().unwrap()
        );
    }

    #[test]
    fn slot_size_sweep_produces_rows() {
        let t = slot_size_ablation(&tiny());
        assert_eq!(t.len(), 5);
        for row in 0..5 {
            let reward: f64 = t.cell(row, 1).parse().unwrap();
            assert!(reward >= 0.0);
        }
    }

    #[test]
    fn continuity_extension_accounts_everything() {
        let t = continuity_extension(&tiny(), 0.5, 3);
        assert_eq!(t.len(), 4);
        for row in 0..4 {
            let completed: usize = t.cell(row, 2).parse().unwrap();
            let aborted: usize = t.cell(row, 3).parse().unwrap();
            let expired: usize = t.cell(row, 4).parse().unwrap();
            assert!(completed + aborted + expired <= 20);
        }
    }

    #[test]
    fn reproducible_worlds() {
        assert!(world_is_reproducible(&tiny()));
    }
}
