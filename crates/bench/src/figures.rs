//! Per-figure experiment drivers.
//!
//! Every function returns [`Table`]s whose columns mirror the series in the
//! paper's plots, and the binaries write them to `results/*.csv`.

use crate::parallel::{mean_rows, parallel_seeds};
use crate::params::Defaults;
use crate::table::Table;
use mec_bandit::{ArmId, BanditPolicy, ConfidenceSchedule, LipschitzDomain, SuccessiveElimination};
use mec_core::model::Instance;
use mec_core::model::Realizations;
use mec_core::{
    Appro, DynamicRr, DynamicRrConfig, Exact, Greedy, Heu, HeuKkt, Ocorp, OfflineAlgorithm,
    OnlineGreedy, OnlineHeuKkt, OnlineOcorp,
};
use mec_sim::{Engine, Metrics, SlotPolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The offline contenders of Fig 3/5, in the paper's legend order.
fn offline_algorithms(seed: u64) -> Vec<Box<dyn OfflineAlgorithm>> {
    vec![
        Box::new(Appro::new(seed)),
        Box::new(Heu::new(seed)),
        Box::new(HeuKkt::new()),
        Box::new(Ocorp::new()),
        Box::new(Greedy::new()),
    ]
}

/// Names for the offline series.
pub const OFFLINE_NAMES: [&str; 5] = ["Appro", "Heu", "HeuKKT", "OCORP", "Greedy"];

/// Names for the online series (Fig 4/6).
pub const ONLINE_NAMES: [&str; 4] = ["DynamicRR", "HeuKKT", "OCORP", "Greedy"];

/// A policy name that matches none of [`ONLINE_NAMES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown online policy {:?}; accepted values: {}",
            self.name,
            ONLINE_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Resolves an online policy by its [`ONLINE_NAMES`] entry.
///
/// # Errors
///
/// Returns [`UnknownPolicy`] (listing the accepted values) when `name`
/// matches no series.
pub fn online_policy(
    name: &str,
    horizon: u64,
) -> Result<Box<dyn SlotPolicy + Send>, UnknownPolicy> {
    Ok(match name {
        "DynamicRR" => Box::new(DynamicRr::new(DynamicRrConfig {
            horizon_hint: horizon,
            ..Default::default()
        })),
        "HeuKKT" => Box::new(OnlineHeuKkt::new()),
        "OCORP" => Box::new(OnlineOcorp::new()),
        "Greedy" => Box::new(OnlineGreedy::new()),
        other => {
            return Err(UnknownPolicy {
                name: other.to_string(),
            })
        }
    })
}

/// Averaged (reward, latency ms) of one online policy over `runs` seeds.
/// `burst` switches to the offline-comparable all-at-once arrival world.
fn online_point_with(d: &Defaults, name: &str, burst: bool) -> (f64, f64) {
    let rows = parallel_seeds(d.runs, |seed| {
        let (topo, requests, cfg) = if burst {
            d.online_world_burst(seed)
        } else {
            d.online_world(seed)
        };
        let paths = topo.shortest_paths();
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let mut policy = online_policy(name, cfg.horizon).expect("name from ONLINE_NAMES");
        let m: Metrics = engine
            .run(policy.as_mut())
            .expect("built-in policies produce legal schedules");
        vec![m.total_reward(), m.avg_latency_ms()]
    });
    let mean = mean_rows(&rows);
    (mean[0], mean[1])
}

/// Averaged (reward, latency ms) in the streaming-arrival world.
fn online_point(d: &Defaults, name: &str) -> (f64, f64) {
    online_point_with(d, name, false)
}

/// Fig 3(a-c): offline total reward, average latency, and running time as
/// `|R|` grows.
pub fn fig3(d: &Defaults, request_counts: &[usize]) -> (Table, Table, Table) {
    let mut headers = vec!["|R|"];
    headers.extend(OFFLINE_NAMES);
    let mut reward = Table::new("Fig 3(a): total reward vs |R| (offline)", &headers);
    let mut latency = Table::new("Fig 3(b): average latency (ms) vs |R| (offline)", &headers);
    let mut runtime = Table::new("Fig 3(c): running time (ms) vs |R| (offline)", &headers);
    for &n in request_counts {
        let dn = Defaults { requests: n, ..*d };
        let per_seed = parallel_seeds(d.runs, |seed| {
            let (instance, realized) = dn.offline_instance(seed);
            let mut row = Vec::with_capacity(OFFLINE_NAMES.len() * 3);
            for algo in offline_algorithms(seed) {
                let out = algo
                    .solve(&instance, &realized)
                    .expect("offline algorithms succeed on well-formed instances");
                row.push(out.metrics().total_reward());
                row.push(out.metrics().avg_latency_ms());
                row.push(out.runtime().as_secs_f64() * 1000.0);
            }
            row
        });
        let mean = mean_rows(&per_seed);
        let k_names = OFFLINE_NAMES.len();
        let rew: Vec<f64> = (0..k_names).map(|k| mean[k * 3]).collect();
        let lat: Vec<f64> = (0..k_names).map(|k| mean[k * 3 + 1]).collect();
        let run: Vec<f64> = (0..k_names).map(|k| mean[k * 3 + 2]).collect();
        let row = |vals: &[f64]| {
            let mut cells = vec![n.to_string()];
            cells.extend(vals.iter().map(|v| format!("{v:.1}")));
            cells
        };
        reward.push(row(&rew));
        latency.push(row(&lat));
        runtime.push(row(&run));
    }
    (reward, latency, runtime)
}

/// Fig 4(a-b): online total reward and average latency as `|R|` grows.
pub fn fig4(d: &Defaults, request_counts: &[usize]) -> (Table, Table) {
    let mut headers = vec!["|R|"];
    headers.extend(ONLINE_NAMES);
    let mut reward = Table::new("Fig 4(a): total reward vs |R| (online)", &headers);
    let mut latency = Table::new("Fig 4(b): average latency (ms) vs |R| (online)", &headers);
    for &n in request_counts {
        let dn = Defaults { requests: n, ..*d };
        let mut rew_cells = vec![n.to_string()];
        let mut lat_cells = vec![n.to_string()];
        for name in ONLINE_NAMES {
            let (r, l) = online_point(&dn, name);
            rew_cells.push(format!("{r:.1}"));
            lat_cells.push(format!("{l:.1}"));
        }
        reward.push(rew_cells);
        latency.push(lat_cells);
    }
    (reward, latency)
}

/// Fig 5(a-b): reward and latency for all six algorithms as `|BS|` grows
/// (offline algorithms on the offline instance, `DynamicRR` in its online
/// setting, exactly as the paper plots them together).
pub fn fig5(d: &Defaults, station_counts: &[usize]) -> (Table, Table) {
    let headers = [
        "|BS|",
        "Appro",
        "Heu",
        "DynamicRR",
        "HeuKKT",
        "OCORP",
        "Greedy",
    ];
    let mut reward = Table::new("Fig 5(a): total reward vs |BS|", &headers);
    let mut latency = Table::new("Fig 5(b): average latency (ms) vs |BS|", &headers);
    for &s in station_counts {
        let ds = Defaults { stations: s, ..*d };
        let per_seed = parallel_seeds(d.runs, |seed| {
            let (instance, realized) = ds.offline_instance(seed);
            let mut row = Vec::with_capacity(10);
            for algo in offline_algorithms(seed) {
                let out = algo
                    .solve(&instance, &realized)
                    .expect("offline algorithms succeed");
                row.push(out.metrics().total_reward());
                row.push(out.metrics().avg_latency_ms());
            }
            row
        });
        let mean = mean_rows(&per_seed);
        let rew: Vec<f64> = (0..5).map(|k| mean[k * 2]).collect();
        let lat: Vec<f64> = (0..5).map(|k| mean[k * 2 + 1]).collect();
        // Burst arrivals and a short horizon: the offline-comparable
        // setting (see `Defaults::online_world_burst`) — the horizon is
        // sized so small networks cannot drain the whole burst, making
        // reward capacity-bound like the offline algorithms.
        let ds_burst = Defaults {
            sim_horizon: 150,
            ..ds
        };
        let (dyn_r, dyn_l) = online_point_with(&ds_burst, "DynamicRR", true);
        // Order: Appro, Heu, DynamicRR, HeuKKT, OCORP, Greedy.
        let rew_cells = vec![
            s.to_string(),
            format!("{:.1}", rew[0]),
            format!("{:.1}", rew[1]),
            format!("{dyn_r:.1}"),
            format!("{:.1}", rew[2]),
            format!("{:.1}", rew[3]),
            format!("{:.1}", rew[4]),
        ];
        let lat_cells = vec![
            s.to_string(),
            format!("{:.1}", lat[0]),
            format!("{:.1}", lat[1]),
            format!("{dyn_l:.1}"),
            format!("{:.1}", lat[2]),
            format!("{:.1}", lat[3]),
            format!("{:.1}", lat[4]),
        ];
        reward.push(rew_cells);
        latency.push(lat_cells);
    }
    (reward, latency)
}

/// Fig 6(a-b): online reward and latency as the maximum data rate grows
/// (rate band `[10, max]` MB/s, matching the paper's 15→35 sweep).
pub fn fig6(d: &Defaults, max_rates: &[f64]) -> (Table, Table) {
    let mut headers = vec!["maxRate"];
    headers.extend(ONLINE_NAMES);
    let mut reward = Table::new("Fig 6(a): total reward vs max data rate (online)", &headers);
    let mut latency = Table::new(
        "Fig 6(b): average latency (ms) vs max data rate (online)",
        &headers,
    );
    for &hi in max_rates {
        // The lighter 10-35 MB/s band needs a heavier request mix to reach
        // saturation, where the policies differentiate (the paper keeps
        // |R| at its online default but its absolute load is unknowable;
        // this preserves the knee position instead).
        let dh = Defaults {
            rate_lo: 10.0,
            rate_hi: hi,
            requests: d.requests.max(450),
            ..*d
        };
        let mut rew_cells = vec![format!("{hi:.0}")];
        let mut lat_cells = vec![format!("{hi:.0}")];
        for name in ONLINE_NAMES {
            let (r, l) = online_point(&dh, name);
            rew_cells.push(format!("{r:.1}"));
            lat_cells.push(format!("{l:.1}"));
        }
        reward.push(rew_cells);
        latency.push(lat_cells);
    }
    (reward, latency)
}

/// Theorem-3 check, part 1: synthetic Lipschitz-bandit regret curve vs the
/// `√(κ T log T) + T·η·ε` bound.
///
/// The environment's expected reward over the continuous arm value `v ∈
/// [0, 1]` is the η-Lipschitz unimodal `f(v) = 0.9 − η·|v − 0.63|`;
/// rewards are Bernoulli. Reported: measured cumulative pseudo-regret at
/// checkpoints against the (unit-constant) bound.
pub fn regret_curve(kappa: usize, horizon: u64, eta: f64, seed: u64) -> Table {
    let domain = LipschitzDomain::new(0.0, 1.0, kappa);
    let peak = 0.63;
    let f = |v: f64| (0.9 - eta * (v - peak).abs()).clamp(0.0, 1.0);
    let best_discrete = domain.values().into_iter().map(f).fold(f64::MIN, f64::max);
    let mut policy = SuccessiveElimination::new(kappa, ConfidenceSchedule::Horizon(horizon));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut table = Table::new(
        format!("Theorem 3 regret (κ={kappa}, η={eta})"),
        &["T", "regret", "bound", "regret/bound"],
    );
    let mut pseudo_regret = 0.0;
    let continuous_best = 0.9;
    for t in 1..=horizon {
        let arm = policy.select();
        let mean = f(domain.value(arm));
        let r = if rng.gen::<f64>() < mean { 1.0 } else { 0.0 };
        policy.update(arm, r);
        pseudo_regret += continuous_best - mean;
        if t.is_power_of_two() || t == horizon {
            let bound = domain.regret_bound(eta, t);
            table.push(vec![
                t.to_string(),
                format!("{pseudo_regret:.1}"),
                format!("{bound:.1}"),
                format!("{:.3}", pseudo_regret / bound),
            ]);
        }
    }
    let _ = best_discrete;
    table
}

/// Theorem-3 check, part 2: end-to-end `DynamicRR` against every fixed
/// threshold (the best fixed arm is the oracle of the regret definition).
pub fn regret_end_to_end(d: &Defaults) -> Table {
    let mut table = Table::new(
        "DynamicRR vs fixed thresholds (end-to-end)",
        &["threshold (MHz)", "reward"],
    );
    let cfg = DynamicRrConfig::default();
    let domain = LipschitzDomain::new(cfg.threshold_lo_mhz, cfg.threshold_hi_mhz, cfg.kappa);
    let mut best_fixed = f64::MIN;
    for i in 0..cfg.kappa {
        let v = domain.value(ArmId(i));
        let mut reward = 0.0;
        for seed in 0..d.runs {
            let (topo, requests, slot_cfg) = d.online_world(seed);
            let paths = topo.shortest_paths();
            let mut engine = Engine::new(&topo, &paths, requests, slot_cfg);
            let mut policy = DynamicRr::new(DynamicRrConfig {
                threshold_lo_mhz: v,
                threshold_hi_mhz: v,
                kappa: 1,
                horizon_hint: slot_cfg.horizon,
                ..Default::default()
            });
            reward += engine
                .run(&mut policy)
                .expect("fixed-threshold runs are legal")
                .total_reward()
                / d.runs as f64;
        }
        best_fixed = best_fixed.max(reward);
        table.push(vec![format!("{v:.0}"), format!("{reward:.1}")]);
    }
    let mut learner_reward = 0.0;
    for seed in 0..d.runs {
        let (topo, requests, slot_cfg) = d.online_world(seed);
        let paths = topo.shortest_paths();
        let mut engine = Engine::new(&topo, &paths, requests, slot_cfg);
        let mut policy = DynamicRr::new(DynamicRrConfig {
            horizon_hint: slot_cfg.horizon,
            ..Default::default()
        });
        learner_reward += engine
            .run(&mut policy)
            .expect("DynamicRR runs are legal")
            .total_reward()
            / d.runs as f64;
    }
    table.push(vec![
        "DynamicRR (learned)".into(),
        format!("{learner_reward:.1}"),
    ]);
    table.push(vec![
        "regret vs best fixed".into(),
        format!("{:.1}", best_fixed - learner_reward),
    ]);
    table
}

/// Theorem-1 check: `Appro` restricted to one rounding round (the verbatim
/// paper algorithm) against the exact expected optimum, on small instances.
///
/// Reports per-seed `E[Appro] / Opt`; Theorem 1 promises ≥ 1/8.
pub fn approx_ratio(seeds: u64, trials_per_seed: u64) -> Table {
    let mut table = Table::new(
        "Theorem 1: E[Appro (1 round)] / Opt on small instances",
        &["seed", "opt", "appro", "ratio"],
    );
    let mut worst: f64 = f64::INFINITY;
    for seed in 0..seeds {
        let d = Defaults {
            stations: 3,
            requests: 8,
            runs: 1,
            ..Defaults::paper()
        };
        let (instance, _) = d.offline_instance(seed);
        let (opt, _) = Exact::new().solve_ilp(&instance).expect("small ILPs solve");
        let mut mean = 0.0;
        for trial in 0..trials_per_seed {
            let realized = Realizations::draw(&instance, seed * 10_000 + trial);
            let out = Appro::new(seed * 131 + trial)
                .rounds(1)
                .solve(&instance, &realized)
                .expect("appro succeeds");
            mean += out.metrics().total_reward() / trials_per_seed as f64;
        }
        let ratio = mean / opt.max(1e-9);
        worst = worst.min(ratio);
        table.push(vec![
            seed.to_string(),
            format!("{opt:.1}"),
            format!("{mean:.1}"),
            format!("{ratio:.3}"),
        ]);
    }
    table.push(vec![
        "worst".into(),
        String::new(),
        String::new(),
        format!("{worst:.3}"),
    ]);
    table
}

/// Convenience used by binaries: environment-variable override for the
/// number of runs per point (`MEC_BENCH_RUNS`).
pub fn runs_from_env(default: u64) -> u64 {
    std::env::var("MEC_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Shared instance accessor for the Criterion benches.
pub fn bench_instance(n: usize, stations: usize, seed: u64) -> (Instance, Realizations) {
    let d = Defaults {
        requests: n,
        stations,
        ..Defaults::paper()
    };
    d.offline_instance(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Defaults {
        Defaults {
            stations: 4,
            requests: 12,
            runs: 1,
            sim_horizon: 80,
            arrival_horizon: 40,
            duration: (10, 20),
            ..Defaults::paper()
        }
    }

    #[test]
    fn fig3_produces_full_tables() {
        let (r, l, t) = fig3(&tiny(), &[8, 12]);
        assert_eq!(r.len(), 2);
        assert_eq!(l.len(), 2);
        assert_eq!(t.len(), 2);
        // Reward cells parse as positive floats.
        let v: f64 = r.cell(0, 1).parse().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn fig4_produces_full_tables() {
        let (r, l) = fig4(&tiny(), &[10]);
        assert_eq!(r.len(), 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn fig5_has_six_series() {
        let (r, _) = fig5(&tiny(), &[4]);
        assert_eq!(r.len(), 1);
        // |BS| column + 6 algorithms.
        for col in 1..=6 {
            let v: f64 = r.cell(0, col).parse().unwrap();
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn fig6_sweeps_rates() {
        let (r, l) = fig6(&tiny(), &[15.0, 25.0]);
        assert_eq!(r.len(), 2);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn regret_curve_stays_under_constant_times_bound() {
        let table = regret_curve(8, 4000, 0.5, 7);
        // Last checkpoint: regret / bound comfortably below a small
        // constant (the bound has unit constant).
        let last = table.len() - 1;
        let ratio: f64 = table.cell(last, 3).parse().unwrap();
        assert!(ratio < 3.0, "regret/bound = {ratio}");
    }

    #[test]
    fn approx_ratio_exceeds_eighth() {
        let table = approx_ratio(3, 10);
        let worst: f64 = table.cell(table.len() - 1, 3).parse().unwrap();
        assert!(worst >= 0.125, "worst ratio {worst} below 1/8");
    }

    #[test]
    fn runs_env_default() {
        assert_eq!(runs_from_env(7), 7);
    }
}
