//! Network inspector: prints the statistics of the default experiment
//! topologies and exports the 20-station backhaul as Graphviz DOT
//! (`results/topology_bs20.dot` — render with `dot -Tpng`).
//!
//! Usage: `cargo run -p mec-bench --release --bin netinfo`

use mec_bench::{Defaults, Table};
use mec_topology::TopologyStats;
use std::fs;

fn main() {
    let d = Defaults::paper();
    let mut table = Table::new(
        "Topology statistics (Waxman, paper defaults)",
        &[
            "|BS|",
            "edges",
            "avg degree",
            "diameter (ms)",
            "avg path (ms)",
            "capacity (GHz)",
        ],
    );
    for stations in [10usize, 20, 30, 40, 50] {
        let topo = Defaults { stations, ..d }.topology(0);
        let stats = TopologyStats::compute(&topo);
        table.push(vec![
            stations.to_string(),
            stats.edges.to_string(),
            format!("{:.1}", stats.avg_degree),
            format!("{:.1}", stats.diameter.map_or(f64::NAN, |l| l.as_ms())),
            format!(
                "{:.1}",
                stats.avg_path_delay.map_or(f64::NAN, |l| l.as_ms())
            ),
            format!("{:.1}", topo.total_capacity().as_mhz() / 1000.0),
        ]);
    }
    print!("{}", table.render());

    let topo = d.topology(0);
    fs::create_dir_all("results").expect("create results dir");
    fs::write("results/topology_bs20.dot", topo.to_dot()).expect("write dot");
    println!("  -> results/topology_bs20.dot (render with `dot -Tpng`)");
}
