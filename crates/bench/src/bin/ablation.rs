//! Ablation study of the design choices documented in DESIGN.md §6:
//! threshold learner, grid width κ, `Appro` rounding rounds, and the
//! per-slot assignment path.
//!
//! Usage: `cargo run -p mec-bench --release --bin ablation`

use mec_bench::ablations::{
    assignment_ablation, continuity_extension, kappa_ablation, learner_ablation, rounds_ablation,
    slot_size_ablation,
};
use mec_bench::figures::runs_from_env;
use mec_bench::Defaults;

fn main() {
    let d = Defaults {
        runs: runs_from_env(3),
        requests: 300, // the saturated operating point, where choices matter
        ..Defaults::paper()
    };

    let tables = [
        (learner_ablation(&d), "results/ablation_learner.csv"),
        (kappa_ablation(&d), "results/ablation_kappa.csv"),
        (rounds_ablation(&d), "results/ablation_rounds.csv"),
        (assignment_ablation(), "results/ablation_assignment.csv"),
        (slot_size_ablation(&d), "results/ablation_slot_size.csv"),
        (
            continuity_extension(&d, 0.5, 4),
            "results/extension_continuity.csv",
        ),
    ];
    for (table, path) in tables {
        print!("{}", table.render());
        table.write_csv(path).expect("write csv");
        println!("  -> {path}\n");
    }
}
