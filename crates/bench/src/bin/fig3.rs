//! Regenerates Fig 3(a-c): offline total reward, average latency, and
//! running time of `Appro`, `Heu`, `HeuKKT`, `OCORP`, `Greedy` as the
//! number of requests grows from 100 to 300.
//!
//! Usage: `cargo run -p mec-bench --release --bin fig3`
//! (set `MEC_BENCH_RUNS` to change the per-point repetitions, default 5).

use mec_bench::figures::{fig3, runs_from_env};
use mec_bench::{Defaults, ProfileArgs};

const USAGE: &str = "\
fig3: regenerate Fig 3(a-c) CSVs under results/

USAGE:
    fig3 [--profile-out PATH] [--profile-folded PATH]

Profiling flags need a build with --features prof.
Set MEC_BENCH_RUNS to change the per-point repetitions (default 5).
";

fn main() {
    let prof = match ProfileArgs::from_env(USAGE) {
        Ok(prof) => prof,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    prof.begin();
    let d = Defaults {
        runs: runs_from_env(5),
        ..Defaults::paper()
    };
    let counts = [100, 150, 200, 250, 300];
    let (reward, latency, runtime) = fig3(&d, &counts);
    for (table, path) in [
        (&reward, "results/fig3a_reward.csv"),
        (&latency, "results/fig3b_latency.csv"),
        (&runtime, "results/fig3c_runtime.csv"),
    ] {
        print!("{}", table.render());
        table.write_csv(path).expect("write csv");
        println!("  -> {path}\n");
    }
    if let Err(msg) = prof.finish() {
        eprintln!("{msg}");
        std::process::exit(1);
    }
}
