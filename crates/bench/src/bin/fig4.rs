//! Regenerates Fig 4(a-b): online total reward and average latency of
//! `DynamicRR`, `HeuKKT`, `OCORP`, `Greedy` as the number of requests
//! grows from 100 to 300.
//!
//! Usage: `cargo run -p mec-bench --release --bin fig4`

use mec_bench::figures::{fig4, runs_from_env};
use mec_bench::Defaults;

fn main() {
    let d = Defaults {
        runs: runs_from_env(5),
        ..Defaults::paper()
    };
    let counts = [100, 150, 200, 250, 300];
    let (reward, latency) = fig4(&d, &counts);
    for (table, path) in [
        (&reward, "results/fig4a_reward.csv"),
        (&latency, "results/fig4b_latency.csv"),
    ] {
        print!("{}", table.render());
        table.write_csv(path).expect("write csv");
        println!("  -> {path}\n");
    }
}
