//! Regenerates Fig 6(a-b): online total reward and average latency of
//! `DynamicRR`, `HeuKKT`, `OCORP`, `Greedy` as the maximum data rate grows
//! from 15 to 35 MB/s (band `[10, max]`).
//!
//! Usage: `cargo run -p mec-bench --release --bin fig6`

use mec_bench::figures::{fig6, runs_from_env};
use mec_bench::Defaults;

fn main() {
    let d = Defaults {
        runs: runs_from_env(5),
        ..Defaults::paper()
    };
    let rates = [15.0, 20.0, 25.0, 30.0, 35.0];
    let (reward, latency) = fig6(&d, &rates);
    for (table, path) in [
        (&reward, "results/fig6a_reward.csv"),
        (&latency, "results/fig6b_latency.csv"),
    ] {
        print!("{}", table.render());
        table.write_csv(path).expect("write csv");
        println!("  -> {path}\n");
    }
}
