//! Perf-regression gate: diff freshly generated `BENCH_*.json` results
//! against committed baselines.
//!
//! ```text
//! mec-bench-gate --baseline results --current /tmp/bench-now
//! mec-bench-gate --baseline results --current results --inject-slowdown 2.0
//! ```
//!
//! Exit code 0 when every benchmark stays within its threshold, 1 on
//! any regression, 2 on usage or IO errors.

use mec_bench::gate::{compare, cpu_shard_warnings, load_dir, Thresholds};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
mec-bench-gate: perf-regression gate over BENCH_*.json result files

USAGE:
    mec-bench-gate --baseline DIR --current DIR [OPTIONS]

OPTIONS:
    --baseline <DIR>          directory holding the committed baselines
    --current <DIR>           directory holding the fresh results
    --default-threshold <F>   relative slowdown allowed before failing
                              [default: 0.5, i.e. +50%]
    --threshold <NAME=F>      per-benchmark override; NAME matches a full
                              result label (e.g. solve/120) or a bench
                              file name (e.g. lp_solver); repeatable
    --inject-slowdown <F>     scale current medians by F before comparing
                              (CI negative test: 2.0 must FAIL the gate)
    --update-baselines        after printing the comparison, copy every
                              current BENCH_*.json over its baseline and
                              exit 0 (refreshing committed baselines)
    --help                    print this help
";

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    thresholds: Thresholds,
    slowdown: f64,
    update_baselines: bool,
}

fn parse_args() -> Result<Args, String> {
    let (mut baseline, mut current) = (None, None);
    let mut thresholds = Thresholds::default();
    let mut slowdown = 1.0f64;
    let mut update_baselines = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--current" => current = Some(PathBuf::from(value("--current")?)),
            "--default-threshold" => {
                thresholds.default = parse_frac(&value("--default-threshold")?)?;
            }
            "--threshold" => {
                let spec = value("--threshold")?;
                let (name, frac) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--threshold wants NAME=FRACTION, got {spec:?}"))?;
                thresholds
                    .overrides
                    .insert(name.to_string(), parse_frac(frac)?);
            }
            "--inject-slowdown" => {
                slowdown = value("--inject-slowdown")?
                    .parse()
                    .map_err(|_| "could not parse --inject-slowdown".to_string())?;
                if slowdown <= 0.0 {
                    return Err("--inject-slowdown must be positive".to_string());
                }
            }
            "--update-baselines" => update_baselines = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or(format!("--baseline is required\n\n{USAGE}"))?,
        current: current.ok_or(format!("--current is required\n\n{USAGE}"))?,
        thresholds,
        slowdown,
        update_baselines,
    })
}

/// Copies every `BENCH_*.json` in `current` over `baseline`, returning the
/// refreshed file names.
fn refresh_baselines(baseline: &Path, current: &Path) -> Result<Vec<String>, String> {
    let mut copied = Vec::new();
    let entries =
        std::fs::read_dir(current).map_err(|e| format!("read {}: {e}", current.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", current.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let dst = baseline.join(&name);
        std::fs::copy(entry.path(), &dst).map_err(|e| format!("copy {name}: {e}"))?;
        copied.push(name);
    }
    copied.sort();
    Ok(copied)
}

fn parse_frac(s: &str) -> Result<f64, String> {
    let f: f64 = s
        .parse()
        .map_err(|_| format!("could not parse threshold {s:?}"))?;
    if !(0.0..=100.0).contains(&f) {
        return Err(format!("threshold {f} out of range"));
    }
    Ok(f)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (baselines, currents) = match (load_dir(&args.baseline), load_dir(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if baselines.is_empty() {
        eprintln!(
            "no BENCH_*.json baselines in {}; nothing to gate",
            args.baseline.display()
        );
        return ExitCode::from(2);
    }
    if args.slowdown != 1.0 {
        eprintln!(
            "note: scaling current medians by {} (injected slowdown)",
            args.slowdown
        );
    }
    // Credibility warnings, never failures: scaling results measured
    // with more worker shards than the machine had cores.
    for warning in cpu_shard_warnings(&currents) {
        println!("warn  {warning}");
    }
    let outcome = compare(&baselines, &currents, &args.thresholds, args.slowdown);
    print!("{}", outcome.render());
    if args.update_baselines {
        match refresh_baselines(&args.baseline, &args.current) {
            Ok(copied) => {
                for name in &copied {
                    println!("refreshed {name}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
