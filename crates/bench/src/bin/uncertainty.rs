//! Price of uncertainty: every algorithm against the clairvoyant hindsight
//! bound (the LP relaxation of the realized assignment problem — an upper
//! bound no policy can beat). The gap to it is what the paper's
//! slot-indexed design is trying to shrink.
//!
//! Usage: `cargo run -p mec-bench --release --bin uncertainty`

use mec_bench::figures::runs_from_env;
use mec_bench::{Defaults, Table};
use mec_core::{hindsight_bound, Appro, Greedy, Heu, HeuKkt, Ocorp, OfflineAlgorithm};

fn main() {
    let d = Defaults {
        runs: runs_from_env(5),
        requests: 300,
        ..Defaults::paper()
    };
    let mut table = Table::new(
        "Price of uncertainty (|R| = 300, clairvoyant LP bound = 100%)",
        &["algorithm", "reward", "% of hindsight"],
    );
    let mut bound_total = 0.0;
    let mut rewards = [0.0f64; 5];
    for seed in 0..d.runs {
        let (instance, realized) = d.offline_instance(seed);
        bound_total += hindsight_bound(&instance, &realized).expect("bound LP solves");
        let algos: Vec<Box<dyn OfflineAlgorithm>> = vec![
            Box::new(Appro::new(seed)),
            Box::new(Heu::new(seed)),
            Box::new(HeuKkt::new()),
            Box::new(Ocorp::new()),
            Box::new(Greedy::new()),
        ];
        for (k, algo) in algos.iter().enumerate() {
            rewards[k] += algo
                .solve(&instance, &realized)
                .expect("solve succeeds")
                .metrics()
                .total_reward();
        }
    }
    table.push(vec![
        "hindsight (bound)".into(),
        format!("{:.1}", bound_total / d.runs as f64),
        "100.0%".into(),
    ]);
    for (k, name) in ["Appro", "Heu", "HeuKKT", "OCORP", "Greedy"]
        .iter()
        .enumerate()
    {
        table.push(vec![
            name.to_string(),
            format!("{:.1}", rewards[k] / d.runs as f64),
            format!("{:.1}%", 100.0 * rewards[k] / bound_total),
        ]);
    }
    print!("{}", table.render());
    table
        .write_csv("results/uncertainty.csv")
        .expect("write csv");
    println!("  -> results/uncertainty.csv");
}
