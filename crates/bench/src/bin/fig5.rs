//! Regenerates Fig 5(a-b): total reward and average latency of all six
//! algorithms as the number of base stations grows from 10 to 50
//! (`|R| = 150`).
//!
//! Usage: `cargo run -p mec-bench --release --bin fig5`

use mec_bench::figures::{fig5, runs_from_env};
use mec_bench::Defaults;

fn main() {
    let d = Defaults {
        runs: runs_from_env(5),
        ..Defaults::paper()
    };
    let stations = [10, 20, 30, 40, 50];
    let (reward, latency) = fig5(&d, &stations);
    for (table, path) in [
        (&reward, "results/fig5a_reward.csv"),
        (&latency, "results/fig5b_latency.csv"),
    ] {
        print!("{}", table.render());
        table.write_csv(path).expect("write csv");
        println!("  -> {path}\n");
    }
}
