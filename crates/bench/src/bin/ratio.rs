//! Theorem-1 experiment: the expected reward of the verbatim (single
//! rounding round) `Appro` against the exact ILP-RM optimum on small
//! instances — the paper proves the ratio is at least 1/8.
//!
//! Usage: `cargo run -p mec-bench --release --bin ratio`

use mec_bench::figures::approx_ratio;

fn main() {
    let table = approx_ratio(10, 40);
    print!("{}", table.render());
    table
        .write_csv("results/approx_ratio.csv")
        .expect("write csv");
    println!("  -> results/approx_ratio.csv");
}
