//! Theorem-3 regret experiment:
//!
//! 1. Synthetic Lipschitz bandit: cumulative pseudo-regret vs the
//!    `√(κ T log T) + T·η·ε` bound, for several `κ`.
//! 2. End-to-end: `DynamicRR` against every fixed threshold (the regret
//!    oracle).
//!
//! Usage: `cargo run -p mec-bench --release --bin regret`

use mec_bench::figures::{regret_curve, regret_end_to_end, runs_from_env};
use mec_bench::{Defaults, ProfileArgs};

const USAGE: &str = "\
regret: Theorem-3 regret experiment, CSVs under results/

USAGE:
    regret [--profile-out PATH] [--profile-folded PATH]

Profiling flags need a build with --features prof.
Set MEC_BENCH_RUNS to change the end-to-end repetitions (default 3).
";

fn main() {
    let prof = match ProfileArgs::from_env(USAGE) {
        Ok(prof) => prof,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    prof.begin();
    for &kappa in &[4usize, 9, 16] {
        let table = regret_curve(kappa, 20_000, 0.5, 11);
        print!("{}", table.render());
        let path = format!("results/regret_kappa{kappa}.csv");
        table.write_csv(&path).expect("write csv");
        println!("  -> {path}\n");
    }

    // The threshold only matters under saturation (Fig 4's |R| = 300
    // operating point); the unsaturated default would make every arm
    // equally good.
    let d = Defaults {
        runs: runs_from_env(3),
        requests: 300,
        ..Defaults::paper()
    };
    let table = regret_end_to_end(&d);
    print!("{}", table.render());
    table
        .write_csv("results/regret_end_to_end.csv")
        .expect("write csv");
    println!("  -> results/regret_end_to_end.csv");
    if let Err(msg) = prof.finish() {
        eprintln!("{msg}");
        std::process::exit(1);
    }
}
