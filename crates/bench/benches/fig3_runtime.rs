//! Fig 3(c) running-time benchmark: wall-clock of each offline algorithm
//! at the paper's request counts (Criterion version of the `fig3` binary's
//! runtime column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::figures::bench_instance;
use mec_core::{Appro, Greedy, Heu, HeuKkt, Ocorp, OfflineAlgorithm};

fn offline_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3c_offline_runtime");
    group.sample_size(10);
    for &n in &[100usize, 200, 300] {
        let (instance, realized) = bench_instance(n, 20, 1);
        let algos: Vec<Box<dyn OfflineAlgorithm>> = vec![
            Box::new(Appro::new(1)),
            Box::new(Heu::new(1)),
            Box::new(HeuKkt::new()),
            Box::new(Ocorp::new()),
            Box::new(Greedy::new()),
        ];
        for algo in algos {
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |b, _| {
                b.iter(|| {
                    algo.solve(&instance, &realized)
                        .expect("offline algorithms succeed")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, offline_runtimes);
criterion_main!(benches);
