//! Handoff pause vs run length: what a drain/leave handoff makes the
//! driver wait for, as the run grows older.
//!
//! The `split_extract_absorb` arm prices the splittable-checkpoint path
//! the runtime now uses — extract the drained station's slice, absorb it
//! into the takeover engine — which moves only the state that belongs to
//! the station and must stay *flat* as the run length grows. The
//! `genesis_replay` arm prices the pre-split alternative the takeover
//! shard used to pay — rebuild from genesis and re-step every slot —
//! which is linear in run length. The gap between the two arms at the
//! longest run is the point of the splittable design.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::Defaults;
use mec_core::OnlineGreedy;
use mec_sim::Engine;
use mec_topology::station::StationId;

/// Run lengths (slots) the handoff pause is sampled at.
const RUN_LENGTHS: &[u64] = &[64, 256, 1024];

fn handoff_stall(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff_stall");
    group.sample_size(10);
    for &len in RUN_LENGTHS {
        // Arrivals spread over the whole run, so in-flight work at the
        // handoff slot is comparable across run lengths; only history
        // (slots stepped, journal length) grows with `len`.
        let d = Defaults {
            requests: 600,
            arrival_horizon: len,
            sim_horizon: len + 64,
            runs: 1,
            ..Defaults::paper()
        };
        let (topo, requests, cfg) = d.online_world(7);
        let paths = topo.shortest_paths();
        // Drive the run to slot `len` once; the split arm restores this
        // state per iteration instead of re-stepping history.
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let mut policy = OnlineGreedy::new();
        for _ in 0..len {
            engine.step(&mut policy).expect("legal schedules");
        }
        let state = engine.checkpoint();

        group.bench_with_input(
            BenchmarkId::new("split_extract_absorb", len),
            &len,
            |b, _| {
                b.iter(|| {
                    engine.restore(state.clone());
                    let slice = engine.extract_station(StationId(3));
                    black_box(engine.absorb_station(&slice, StationId(5)))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("genesis_replay", len), &len, |b, _| {
            b.iter(|| {
                let mut fresh = Engine::new(&topo, &paths, requests.clone(), cfg);
                let mut policy = OnlineGreedy::new();
                for _ in 0..len {
                    fresh.step(&mut policy).expect("legal schedules");
                }
                black_box(fresh.checkpoint().next_slot)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, handoff_stall);
criterion_main!(benches);
