//! Cost of request-lifecycle tracing on the serving runtime: one full
//! virtual-clock replay per iteration at 4 shards, with and without a
//! lifecycle sink attached. Both arms compile the `lifecycle` feature —
//! the comparison prices the *attached* path (per-request records
//! drained at every barrier, latency exemplars, id-map upkeep) against
//! the dormant one (every record site short-circuits on a `None` ring).
//! The acceptance budget for the attached arm is +5% over detached.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_serve::{serve, LoadGen, ObsHub, ServeConfig};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use std::sync::Arc;

fn run(topo: &mec_topology::Topology, hub: Option<Arc<ObsHub>>) -> mec_serve::ServeOutcome {
    let population = WorkloadBuilder::new(topo).seed(7).count(2_000).build();
    let load = LoadGen::poisson(population, 4_000.0, 50.0, 7);
    let cfg = ServeConfig {
        shards: 4,
        queue_capacity: 128,
        snapshot_every: 0,
        policy: "Greedy".to_string(),
        obs: hub,
        ..ServeConfig::default()
    };
    serve(topo, load, &cfg, |_| {}).expect("serving run completes")
}

fn lifecycle_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifecycle_overhead");
    group.sample_size(10);
    let topo = TopologyBuilder::new(32).seed(7).build();
    group.bench_with_input(BenchmarkId::new("detached", 4), &(), |b, ()| {
        b.iter(|| run(&topo, None))
    });
    group.bench_with_input(BenchmarkId::new("attached", 4), &(), |b, ()| {
        b.iter(|| {
            let hub = Arc::new(
                ObsHub::new()
                    .with_lifecycle(mec_obs::LifecycleWriter::new(Box::new(std::io::sink()))),
            );
            run(&topo, Some(hub))
        })
    });
    group.finish();
}

criterion_group!(benches, lifecycle_overhead);
criterion_main!(benches);
