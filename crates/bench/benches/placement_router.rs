//! Routing-layer cost of placement-aware admission: every arrival walks
//! `PlacementPlane::route` and then shard admission, exactly as the
//! serving loop's dispatch does. The `disabled` arm prices the identity
//! path (placement off — the pre-placement router), the `services_1k`
//! arm prices cache lookups, holder searches, and install bookkeeping
//! against a 1000-service catalog, so the overhead of the placement
//! subsystem is a single ratio.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_placement::{OpsLog, PlacementConfig};
use mec_serve::{PlacementPlane, RouteDecision, Router};
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};

const SHARDS: usize = 4;
const REQUESTS: usize = 10_000;

fn world() -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(64).seed(7).build();
    let requests = WorkloadBuilder::new(&topo).seed(7).count(REQUESTS).build();
    (topo, requests)
}

/// One full dispatch pass: route every request through the plane, admit
/// the survivors. Returns a checksum so nothing is optimized away.
fn route_all(topo: &Topology, requests: &[Request], services: usize) -> u64 {
    let cfg = PlacementConfig {
        services,
        cache_capacity: 8,
        seed: 7,
        ..PlacementConfig::default()
    };
    let mut plane = PlacementPlane::new(topo, &cfg, OpsLog::default()).unwrap();
    let mut router = Router::new(SHARDS, REQUESTS);
    router.set_station_counts(
        mec_serve::partition(topo, SHARDS)
            .iter()
            .map(|p| p.topo.station_count())
            .collect(),
    );
    let mut admitted = 0u64;
    for request in requests {
        let slot = request.arrival_slot();
        match plane.route(request.clone(), slot) {
            RouteDecision::Proceed(r) => {
                let holders = plane.holders_of(&r);
                let hint = if holders.is_empty() {
                    None
                } else {
                    Some(holders.as_slice())
                };
                router.admit_with(&r, slot, hint);
                admitted += 1;
            }
            RouteDecision::Held { .. } | RouteDecision::Shed => {}
        }
    }
    admitted + plane.stats().hits + plane.stats().misses
}

fn placement_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_router");
    group.sample_size(20);
    let (topo, requests) = world();
    for (label, services) in [("disabled", 0usize), ("services_1k", 1_000)] {
        group.bench_with_input(
            BenchmarkId::new("route_10k", label),
            &services,
            |b, &services| b.iter(|| black_box(route_all(&topo, &requests, services))),
        );
    }
    group.finish();
}

criterion_group!(benches, placement_router);
criterion_main!(benches);
