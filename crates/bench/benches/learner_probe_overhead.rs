//! Cost of the learner probe on the serving runtime: one full
//! virtual-clock replay per iteration at 4 shards under the DynamicRR
//! learner, with and without the probe attached. Both arms run the same
//! traced hub (so generic event tracing prices out of the diff) — the
//! comparison isolates the *attached* probe path (per-update lifecycle
//! events drained at every tick, driver-side regret and drift
//! accounting, flight-recorder ring upkeep, `/learning.json` rendering)
//! against the dormant one (the policy's probe recorder stays `None`, so
//! every record site short-circuits). The slots here are synthetic and
//! near-empty, so the attached arm's streaming cost (a few µs per
//! shard-tick) reads as a large relative delta; the perf gate holds each
//! arm against its committed baseline rather than capping the ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_serve::{serve, LoadGen, ObsHub, ServeConfig};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use std::sync::Arc;

fn run(topo: &mec_topology::Topology, probe: bool) -> mec_serve::ServeOutcome {
    let population = WorkloadBuilder::new(topo).seed(7).count(2_000).build();
    let load = LoadGen::poisson(population, 4_000.0, 50.0, 7);
    let hub = Arc::new(
        ObsHub::new()
            .with_probe(probe)
            .with_trace(mec_obs::TraceWriter::new(Box::new(std::io::sink()))),
    );
    let cfg = ServeConfig {
        shards: 4,
        queue_capacity: 128,
        snapshot_every: 0,
        policy: "DynamicRR".to_string(),
        obs: Some(hub),
        ..ServeConfig::default()
    };
    serve(topo, load, &cfg, |_| {}).expect("serving run completes")
}

fn learner_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_probe_overhead");
    group.sample_size(10);
    let topo = TopologyBuilder::new(32).seed(7).build();
    group.bench_with_input(BenchmarkId::new("detached", 4), &(), |b, ()| {
        b.iter(|| run(&topo, false))
    });
    group.bench_with_input(BenchmarkId::new("attached", 4), &(), |b, ()| {
        b.iter(|| run(&topo, true))
    });
    group.finish();
}

criterion_group!(benches, learner_probe_overhead);
criterion_main!(benches);
