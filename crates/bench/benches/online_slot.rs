//! Per-slot scheduling cost of the online policies: a full horizon run per
//! iteration, so the numbers compare policy overheads end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::Defaults;
use mec_core::{DynamicRr, DynamicRrConfig, OnlineGreedy, OnlineHeuKkt, OnlineOcorp};
use mec_sim::{Engine, SlotPolicy};

fn online_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_horizon");
    group.sample_size(10);
    let d = Defaults {
        requests: 100,
        sim_horizon: 200,
        arrival_horizon: 100,
        runs: 1,
        ..Defaults::paper()
    };
    let names = ["DynamicRR", "HeuKKT", "OCORP", "Greedy"];
    for name in names {
        group.bench_with_input(BenchmarkId::new(name, d.requests), &name, |b, &name| {
            b.iter(|| {
                let (topo, requests, cfg) = d.online_world(7);
                let paths = topo.shortest_paths();
                let mut engine = Engine::new(&topo, &paths, requests, cfg);
                let mut policy: Box<dyn SlotPolicy> = match name {
                    "DynamicRR" => Box::new(DynamicRr::new(DynamicRrConfig {
                        horizon_hint: cfg.horizon,
                        ..Default::default()
                    })),
                    "HeuKKT" => Box::new(OnlineHeuKkt::new()),
                    "OCORP" => Box::new(OnlineOcorp::new()),
                    _ => Box::new(OnlineGreedy::new()),
                };
                engine.run(policy.as_mut()).expect("legal schedules")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, online_horizon);
criterion_main!(benches);
