//! Microbenchmarks of the mec-obs registry record path — the operations
//! the serving runtime performs on its hot path (per served request, per
//! tick, per telemetry sweep), so regressions here show up before they
//! show up as serving throughput loss.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_obs::{Registry, STEP_MS_BOUNDS};
use std::sync::Arc;

const OPS: u64 = 10_000;

fn registry_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_registry");
    group.sample_size(30);
    let registry = Registry::new();
    let counter = registry.counter("bench_counter_total", "bench", &[("shard", "0")]);
    let gauge = registry.gauge("bench_gauge", "bench", &[]);
    let histogram = registry.histogram("bench_hist_ms", "bench", &[], STEP_MS_BOUNDS);

    group.bench_function("counter_inc_10k", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    group.bench_function("gauge_set_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                gauge.set(i as f64);
            }
            black_box(gauge.get())
        })
    });
    group.bench_function("histogram_observe_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                histogram.observe((i % 100) as f64 * 0.5);
            }
            black_box(histogram.snapshot().count)
        })
    });
    // Contended increments: the striped cells are the whole point — this
    // is the path shard worker threads hit concurrently.
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("counter_inc_10k_contended", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let contended = Arc::new(mec_obs::Counter::new());
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let counter = Arc::clone(&contended);
                            std::thread::spawn(move || {
                                for _ in 0..OPS / threads as u64 {
                                    counter.inc();
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    black_box(contended.get())
                })
            },
        );
    }
    group.bench_function("render_prometheus", |b| {
        b.iter(|| black_box(registry.render_prometheus().len()))
    });
    group.finish();
}

criterion_group!(benches, registry_record);
criterion_main!(benches);
