//! Cross-slot warm-starting: a sliding window of per-slot LPs, solved
//! dense, revised-cold, revised-warm, and warm with chunked fan-out.
//!
//! Each benchmark walks the same 48-step sequence of overlapping request
//! subsets (window 40, step 1 — the arrival/expiry churn DynamicRR sees
//! between slots) and solves every window's `SlotLp`. The labels differ
//! only in the solver driving the sequence, so the dense/warm median
//! ratio in `BENCH_lp_revised.json` *is* the warm-start speedup, and the
//! gate pins each label against its own baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::figures::bench_instance;
use mec_bench::parallel::parallel_map;
use mec_core::slotlp::{SlotLp, SlotLpSolver, Truncation};
use mec_core::SolverKind;

const WINDOW: usize = 40;
const STEP: usize = 1;
const SLOTS: usize = 48;

fn build_sequence() -> Vec<SlotLp> {
    let total = WINDOW + STEP * (SLOTS - 1);
    let (instance, _) = bench_instance(total, 20, 2);
    (0..SLOTS)
        .map(|t| {
            let subset: Vec<usize> = (t * STEP..t * STEP + WINDOW).collect();
            SlotLp::build(&instance, &subset, Truncation::Standard)
        })
        .collect()
}

fn run_sequential(lps: &[SlotLp], kind: SolverKind, warm: bool) -> f64 {
    let mut solver = SlotLpSolver::new(kind).warm_start(warm);
    lps.iter()
        .map(|lp| {
            solver
                .solve(lp, WINDOW)
                .expect("slot LP is feasible")
                .objective()
        })
        .sum()
}

/// Warm fan-out: contiguous chunks of the sequence, one warm solver per
/// chunk, fanned over scoped threads. Within a chunk slots stay ordered,
/// so each solver still warm-starts from its previous slot.
fn run_parallel(lps: &[SlotLp]) -> f64 {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let chunk = lps.len().div_ceil(workers);
    let chunks: Vec<&[SlotLp]> = lps.chunks(chunk).collect();
    parallel_map(&chunks, |chunk| {
        run_sequential(chunk, SolverKind::Revised, true)
    })
    .into_iter()
    .sum()
}

fn slot_sequence(c: &mut Criterion) {
    let lps = build_sequence();
    let param = format!("{SLOTS}x{WINDOW}");
    let mut group = c.benchmark_group("slot_seq");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("dense", &param), &lps, |b, lps| {
        b.iter(|| run_sequential(lps, SolverKind::Dense, false))
    });
    group.bench_with_input(BenchmarkId::new("revised_cold", &param), &lps, |b, lps| {
        b.iter(|| run_sequential(lps, SolverKind::Revised, false))
    });
    group.bench_with_input(BenchmarkId::new("revised_warm", &param), &lps, |b, lps| {
        b.iter(|| run_sequential(lps, SolverKind::Revised, true))
    });
    group.bench_with_input(BenchmarkId::new("warm_parallel", &param), &lps, |b, lps| {
        b.iter(|| run_parallel(lps))
    });
    group.finish();
}

criterion_group!(benches, slot_sequence);
criterion_main!(benches);
