//! Simplex scaling: the slot-indexed LP at growing request counts, plus a
//! dense random-LP microbenchmark of the solver itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_bench::figures::bench_instance;
use mec_core::slotlp::{SlotLp, Truncation};
use mec_lp::{Cmp, Problem, Sense};

fn slot_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_lp_solve");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let (instance, _) = bench_instance(n, 20, 2);
        let subset: Vec<usize> = (0..n).collect();
        let lp = SlotLp::build(&instance, &subset, Truncation::Standard);
        group.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            b.iter(|| lp.solve(n).expect("slot LP is feasible"))
        });
    }
    group.finish();
}

fn dense_random_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_lp");
    group.sample_size(10);
    for &(m, n) in &[(20usize, 200usize), (50, 1000)] {
        // Deterministic pseudo-random dense LP: max c x, Ax <= b.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 + 0.01
        };
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|_| p.add_var(next())).collect();
        for _ in 0..m {
            let coeffs = vars.iter().map(|&v| (v, next())).collect();
            p.add_constraint(coeffs, Cmp::Le, 10.0 + next());
        }
        group.bench_with_input(
            BenchmarkId::new("simplex", format!("{m}x{n}")),
            &n,
            |b, _| b.iter(|| p.solve().expect("bounded feasible LP")),
        );
    }
    group.finish();
}

criterion_group!(benches, slot_lp, dense_random_lp);
criterion_main!(benches);
