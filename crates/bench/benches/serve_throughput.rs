//! End-to-end throughput of the sharded serving runtime: one full
//! virtual-clock replay per iteration, swept over shard counts, so the
//! numbers show how the epoch/watermark actor protocol scales with
//! workers. A second pass derives per-shard parallel efficiency —
//! `(it/s at N shards ÷ N) ÷ it/s at 1 shard` — into the report's
//! `"derived"` array, so a reader (and `mec-bench-gate`) can tell real
//! scaling from oversubscription: on a machine with fewer cores than
//! shards the efficiency numbers are expected to crater, and the gate
//! warns when `machine.cpus < shards`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_serve::{serve, LoadGen, ServeConfig};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;

fn serve_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_replay");
    group.sample_size(10);
    let topo = TopologyBuilder::new(32).seed(7).build();
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                let population = WorkloadBuilder::new(&topo).seed(7).count(2_000).build();
                let load = LoadGen::poisson(population, 4_000.0, 50.0, 7);
                let cfg = ServeConfig {
                    shards,
                    queue_capacity: 128,
                    snapshot_every: 0,
                    policy: "Greedy".to_string(),
                    ..ServeConfig::default()
                };
                serve(&topo, load, &cfg, |_| {}).expect("serving run completes")
            })
        });
    }
    group.finish();
}

/// Derives parallel efficiency from the timings `serve_replay` just
/// recorded. Runs as the last "bench" in the group so `collected()`
/// already holds every `serve_replay/shards/N` result.
fn parallel_efficiency(_c: &mut Criterion) {
    let stats = criterion::collected();
    let tput = |shards: usize| {
        stats
            .iter()
            .find(|s| s.name == format!("serve_replay/shards/{shards}"))
            .map(|s| s.throughput_iters_per_sec)
    };
    let Some(base) = tput(1).filter(|&t| t > 0.0) else {
        return;
    };
    for shards in [1usize, 2, 4, 8] {
        let Some(t) = tput(shards) else { continue };
        let per_shard = t / shards as f64;
        let efficiency = per_shard / base;
        criterion::record_derived(
            format!("serve_replay/per_shard_it_per_s/{shards}"),
            per_shard,
            "it/s",
        );
        criterion::record_derived(
            format!("serve_replay/efficiency/{shards}"),
            efficiency,
            "ratio",
        );
        println!(
            "serve_replay/efficiency/{shards}: {efficiency:.3} ({per_shard:.1} it/s per shard)"
        );
    }
}

criterion_group!(benches, serve_replay, parallel_efficiency);
criterion_main!(benches);
