//! End-to-end throughput of the sharded serving runtime: one full
//! virtual-clock replay per iteration, swept over shard counts, so the
//! numbers show how the barriered tick protocol scales with workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mec_serve::{serve, LoadGen, ServeConfig};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;

fn serve_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_replay");
    group.sample_size(10);
    let topo = TopologyBuilder::new(32).seed(7).build();
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                let population = WorkloadBuilder::new(&topo).seed(7).count(2_000).build();
                let load = LoadGen::poisson(population, 4_000.0, 50.0, 7);
                let cfg = ServeConfig {
                    shards,
                    queue_capacity: 128,
                    snapshot_every: 0,
                    policy: "Greedy".to_string(),
                    ..ServeConfig::default()
                };
                serve(&topo, load, &cfg, |_| {}).expect("serving run completes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, serve_replay);
criterion_main!(benches);
