//! The paper's comparison algorithms (§VI-A), re-implemented from their
//! source papers' described mechanisms:
//!
//! * [`Greedy`] — Yang et al. [32]: sort by execution time (descending),
//!   assign each request to the latency-optimal edge server one by one.
//! * [`Ocorp`] — Liu et al. [20]: order jobs by arrival time and remaining
//!   data, then **best-fit** pack them onto servers.
//! * [`HeuKkt`] — Ma et al. [21]: relax capacities to find the workload
//!   that must spill to the remote cloud, then allocate edge capacity by
//!   KKT water-filling; reward-aware but slot-oblivious.
//!
//! All three share `Appro`'s realized-demand semantics so reward
//! comparisons are apples-to-apples.

mod greedy;
mod heukkt;
mod ocorp;

pub use greedy::Greedy;
pub use heukkt::HeuKkt;
pub use ocorp::Ocorp;

use crate::model::{Instance, Realizations};
use mec_sim::Metrics;
use mec_topology::station::StationId;
use mec_topology::units::total_cmp;

/// OCORP and Greedy are *local* strategies (§VI-B: "they utilize a local
/// strategy instead of considering the global optimal solution"): each
/// request only considers its few nearest stations.
pub(crate) const LOCALITY: usize = 3;

/// The `k` deadline-feasible stations nearest (by offline latency) to
/// request `j`'s user.
pub(crate) fn nearest_feasible(instance: &Instance, j: usize, k: usize) -> Vec<StationId> {
    let mut stations = instance.feasible_stations(j);
    stations.sort_by(|&a, &b| {
        total_cmp(
            &instance.offline_latency(j, a),
            &instance.offline_latency(j, b),
        )
    });
    stations.truncate(k);
    stations
}

/// Shared offline evaluation for **expectation-planned** baselines.
///
/// The baselines commit a static plan before any demand reveals: each
/// admitted request is parked at a starting position equal to the
/// cumulative *reserved* (planned) demand of the requests before it on the
/// same station. At run time the realized stream sizes replace the
/// reservations: a request whose predecessors overran starts later
/// (overflow cascades down the consecutive resource layout of Fig. 2), and
/// it earns its reward only if its own realized demand still ends within
/// the station's capacity. Crucially — and this is the uncertainty cost the
/// paper's slot-indexed design avoids — an *under*-realization does **not**
/// move later requests forward, because their placements were fixed against
/// the reservations, whereas `Appro`/`Heu` admit sequentially against
/// *revealed* occupancy ("according to the revealed data rate information
/// of currently executing requests", §IV-A).
///
/// `reserved_mhz(j)` is the per-request reservation the planner used
/// (expected demand for Greedy/OCORP, a high quantile for HeuKKT).
pub(crate) fn evaluate_plan<F: Fn(usize) -> f64>(
    instance: &Instance,
    realized: &Realizations,
    plan: &[Option<StationId>],
    reserved_mhz: F,
) -> Metrics {
    let mut metrics = Metrics::new();
    // Per station: planned cursor (sum of reservations so far) and realized
    // cursor (where the consecutive layout actually ends).
    let n_stations = instance.topo().station_count();
    let mut planned = vec![0.0f64; n_stations];
    let mut cursor = vec![0.0f64; n_stations];
    for (j, a) in plan.iter().enumerate() {
        match a {
            Some(station) => {
                let outcome = realized.outcome(j);
                let demand = instance.demand_of(outcome.rate).as_mhz();
                let cap = instance.topo().station(*station).capacity().as_mhz();
                let i = station.index();
                let start = cursor[i].max(planned[i]);
                let end = start + demand;
                let fits = end <= cap + 1e-9;
                planned[i] += reserved_mhz(j);
                cursor[i] = end.min(cap);
                let latency = instance
                    .offline_latency(j, *station)
                    .expect("plans only use reachable stations");
                metrics.record_completion(if fits { outcome.reward } else { 0.0 }, latency.as_ms());
            }
            None => metrics.record_expired(),
        }
    }
    metrics
}
