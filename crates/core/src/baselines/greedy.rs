//! `Greedy` [32]: execution-time-sorted, latency-optimal placement.

use crate::baselines::{evaluate_plan, nearest_feasible, LOCALITY};
use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use mec_topology::station::StationId;
use mec_topology::units::total_cmp;
use std::time::Instant;

/// The `Greedy` baseline: requests sorted by (expected) execution time,
/// longest first; each is placed on the feasible station with the lowest
/// experienced latency that still has expected capacity. Latency-first and
/// uncertainty-blind — exactly the coarse-grained behavior the paper
/// contrasts against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Greedy {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl OfflineAlgorithm for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let n = instance.request_count();

        // Execution time ∝ expected demand × pipeline complexity; the paper
        // only needs the ordering, so expected demand is the right proxy.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ta = instance.requests()[a].demand().expected_rate().as_mbps()
                * instance.requests()[a]
                    .tasks()
                    .iter()
                    .map(|t| t.complexity())
                    .sum::<f64>();
            let tb = instance.requests()[b].demand().expected_rate().as_mbps()
                * instance.requests()[b]
                    .tasks()
                    .iter()
                    .map(|t| t.complexity())
                    .sum::<f64>();
            total_cmp(&tb, &ta) // descending
        });

        let mut plan: Vec<Option<StationId>> = vec![None; n];
        let mut expected_load = vec![0.0f64; instance.topo().station_count()];
        for &j in &order {
            let need = instance
                .demand_of(instance.requests()[j].demand().expected_rate())
                .as_mhz();
            // Latency-optimal feasible station with room for the expected
            // demand.
            let best = nearest_feasible(instance, j, LOCALITY)
                .into_iter()
                .filter(|s| {
                    expected_load[s.index()] + need
                        <= instance.topo().station(*s).capacity().as_mhz() + 1e-9
                })
                .min_by(|&a, &b| {
                    total_cmp(
                        &instance.offline_latency(j, a),
                        &instance.offline_latency(j, b),
                    )
                });
            if let Some(s) = best {
                expected_load[s.index()] += need;
                plan[j] = Some(s);
            }
        }
        let metrics = evaluate_plan(instance, realized, &plan, |j| {
            instance
                .demand_of(instance.requests()[j].demand().expected_rate())
                .as_mhz()
        });
        Ok(OffloadOutcome::new(metrics, plan, started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn prefers_low_latency_stations() {
        let inst = instance(10, 5, 2);
        let realized = Realizations::draw(&inst, 2);
        let out = Greedy::new().solve(&inst, &realized).unwrap();
        // Every assigned request sits on a deadline-feasible station.
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                assert!(inst.offline_feasible(j, *s));
            }
        }
        assert!(out.admitted() > 0);
    }

    #[test]
    fn expected_load_respects_capacity() {
        let inst = instance(50, 3, 4);
        let realized = Realizations::draw(&inst, 4);
        let out = Greedy::new().solve(&inst, &realized).unwrap();
        let mut load = vec![0.0; inst.topo().station_count()];
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                load[s.index()] += inst
                    .demand_of(inst.requests()[j].demand().expected_rate())
                    .as_mhz();
            }
        }
        for (i, &l) in load.iter().enumerate() {
            let cap = inst
                .topo()
                .station(mec_topology::StationId(i))
                .capacity()
                .as_mhz();
            assert!(l <= cap + 1e-6);
        }
    }

    #[test]
    fn deterministic() {
        let inst = instance(20, 4, 8);
        let realized = Realizations::draw(&inst, 8);
        let a = Greedy::new().solve(&inst, &realized).unwrap();
        let b = Greedy::new().solve(&inst, &realized).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }
}
