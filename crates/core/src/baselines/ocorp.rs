//! `OCORP` [20]: arrival/remaining-data ordering + best-fit packing.

use crate::baselines::{evaluate_plan, nearest_feasible, LOCALITY};
use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use mec_topology::station::StationId;
use mec_topology::units::total_cmp;
use std::time::Instant;

/// The `OCORP` baseline: jobs ordered by arrival time then remaining
/// to-be-processed data (ascending — short jobs drain first, the resource
/// packing of [20]); each is **best-fit** packed onto the feasible station
/// whose residual expected capacity is smallest-but-sufficient, breaking
/// ties toward lower latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ocorp;

impl Ocorp {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl OfflineAlgorithm for Ocorp {
    fn name(&self) -> &'static str {
        "OCORP"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let n = instance.request_count();

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ra = &instance.requests()[a];
            let rb = &instance.requests()[b];
            ra.arrival_slot().cmp(&rb.arrival_slot()).then_with(|| {
                // Remaining data ∝ expected rate × stream duration.
                let da = ra.demand().expected_rate().as_mbps() * ra.duration_slots() as f64;
                let db = rb.demand().expected_rate().as_mbps() * rb.duration_slots() as f64;
                total_cmp(&da, &db)
            })
        });

        let mut plan: Vec<Option<StationId>> = vec![None; n];
        let mut expected_load = vec![0.0f64; instance.topo().station_count()];
        for &j in &order {
            let need = instance
                .demand_of(instance.requests()[j].demand().expected_rate())
                .as_mhz();
            // Best fit: smallest residual that still holds the job.
            let best = nearest_feasible(instance, j, LOCALITY)
                .into_iter()
                .filter_map(|s| {
                    let residual =
                        instance.topo().station(s).capacity().as_mhz() - expected_load[s.index()];
                    (residual + 1e-9 >= need).then_some((s, residual))
                })
                .min_by(|a, b| {
                    total_cmp(&a.1, &b.1).then_with(|| {
                        total_cmp(
                            &instance.offline_latency(j, a.0),
                            &instance.offline_latency(j, b.0),
                        )
                    })
                });
            if let Some((s, _)) = best {
                expected_load[s.index()] += need;
                plan[j] = Some(s);
            }
        }
        let metrics = evaluate_plan(instance, realized, &plan, |j| {
            instance
                .demand_of(instance.requests()[j].demand().expected_rate())
                .as_mhz()
        });
        Ok(OffloadOutcome::new(metrics, plan, started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn packs_without_overflowing_expected_capacity() {
        let inst = instance(60, 4, 6);
        let realized = Realizations::draw(&inst, 6);
        let out = Ocorp::new().solve(&inst, &realized).unwrap();
        let mut load = vec![0.0; inst.topo().station_count()];
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                load[s.index()] += inst
                    .demand_of(inst.requests()[j].demand().expected_rate())
                    .as_mhz();
                assert!(inst.offline_feasible(j, *s));
            }
        }
        for (i, &l) in load.iter().enumerate() {
            let cap = inst.topo().station(StationId(i)).capacity().as_mhz();
            assert!(l <= cap + 1e-6, "station {i} over expected capacity");
        }
    }

    #[test]
    fn admits_when_room() {
        let inst = instance(5, 4, 3);
        let realized = Realizations::draw(&inst, 3);
        let out = Ocorp::new().solve(&inst, &realized).unwrap();
        assert_eq!(out.admitted(), 5, "ample capacity should admit all");
    }

    #[test]
    fn deterministic() {
        let inst = instance(25, 4, 12);
        let realized = Realizations::draw(&inst, 12);
        let a = Ocorp::new().solve(&inst, &realized).unwrap();
        let b = Ocorp::new().solve(&inst, &realized).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }
}
