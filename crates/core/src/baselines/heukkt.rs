//! `HeuKKT` [21]: capacity-relaxed cloud spill + KKT water-filling.

use crate::baselines::evaluate_plan;
use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use mec_topology::station::StationId;
use mec_topology::units::total_cmp;
use std::time::Instant;

/// The `HeuKKT` baseline.
///
/// Following Ma et al. [21]: first relax the capacity constraints — every
/// request picks its reward-density-optimal station as if capacity were
/// infinite. Stations then resolve their overload by the KKT condition of
/// the relaxed allocation problem (equal marginal value): requests are kept
/// in decreasing reward-per-MHz order until the capacity is exhausted, and
/// the spilled tail is re-offered to the remaining stations (the "remote
/// cloud" absorbs what no edge can hold — earning nothing here, since only
/// edge service meets AR deadlines).
///
/// Reward-aware and conservatively provisioned: following [21]'s
/// known-workload scheduling, the uncertainty-robust port reserves each
/// kept request's **75th-percentile** demand (`RESERVE_QUANTILE`), so
/// admitted requests rarely overrun — fewer admissions than the
/// expectation-packers, far fewer losses. Still slot-oblivious, which is
/// the remaining gap to the paper's slot-indexed LP.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuKkt;

/// The demand quantile HeuKKT provisions for.
pub(crate) const RESERVE_QUANTILE: f64 = 0.75;

impl HeuKkt {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl OfflineAlgorithm for HeuKkt {
    fn name(&self) -> &'static str {
        "HeuKKT"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let n = instance.request_count();

        // Pass 1 (relaxed): each request's preferred station by expected
        // reward; ties toward lower latency.
        let preferred: Vec<Option<StationId>> = (0..n)
            .map(|j| {
                instance.feasible_stations(j).into_iter().min_by(|&a, &b| {
                    total_cmp(
                        &instance.offline_latency(j, a),
                        &instance.offline_latency(j, b),
                    )
                })
            })
            .collect();

        // Pass 2 (KKT resolution): per station keep the highest
        // reward-per-MHz requests within capacity; spill the rest.
        let mut plan: Vec<Option<StationId>> = vec![None; n];
        let mut expected_load = vec![0.0f64; instance.topo().station_count()];
        let mut spilled: Vec<usize> = Vec::new();
        for station in instance.topo().station_ids() {
            let mut local: Vec<usize> = (0..n).filter(|&j| preferred[j] == Some(station)).collect();
            // Decreasing marginal value = reward per MHz of expected demand.
            local.sort_by(|&a, &b| {
                let density = |j: usize| {
                    let d = instance
                        .demand_of(
                            instance.requests()[j]
                                .demand()
                                .rate_quantile(RESERVE_QUANTILE),
                        )
                        .as_mhz();
                    instance.requests()[j].demand().expected_reward() / d.max(1e-9)
                };
                total_cmp(&density(b), &density(a))
            });
            let cap = instance.topo().station(station).capacity().as_mhz();
            for j in local {
                let need = instance
                    .demand_of(
                        instance.requests()[j]
                            .demand()
                            .rate_quantile(RESERVE_QUANTILE),
                    )
                    .as_mhz();
                if expected_load[station.index()] + need <= cap + 1e-9 {
                    expected_load[station.index()] += need;
                    plan[j] = Some(station);
                } else {
                    spilled.push(j);
                }
            }
        }

        // Pass 3: spilled requests try the remaining stations (best
        // reward-density fit); whoever still fails goes to the cloud and is
        // dropped from the edge plan.
        for j in spilled {
            let need = instance
                .demand_of(
                    instance.requests()[j]
                        .demand()
                        .rate_quantile(RESERVE_QUANTILE),
                )
                .as_mhz();
            let fallback = instance
                .feasible_stations(j)
                .into_iter()
                .filter(|s| {
                    expected_load[s.index()] + need
                        <= instance.topo().station(*s).capacity().as_mhz() + 1e-9
                })
                .min_by(|&a, &b| {
                    total_cmp(
                        &instance.offline_latency(j, a),
                        &instance.offline_latency(j, b),
                    )
                });
            if let Some(s) = fallback {
                expected_load[s.index()] += need;
                plan[j] = Some(s);
            }
        }

        let metrics = evaluate_plan(instance, realized, &plan, |j| {
            instance
                .demand_of(
                    instance.requests()[j]
                        .demand()
                        .rate_quantile(RESERVE_QUANTILE),
                )
                .as_mhz()
        });
        Ok(OffloadOutcome::new(metrics, plan, started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn stays_within_expected_capacity() {
        let inst = instance(80, 4, 17);
        let realized = Realizations::draw(&inst, 17);
        let out = HeuKkt::new().solve(&inst, &realized).unwrap();
        let mut load = vec![0.0; inst.topo().station_count()];
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                load[s.index()] += inst
                    .demand_of(inst.requests()[j].demand().rate_quantile(RESERVE_QUANTILE))
                    .as_mhz();
            }
        }
        for (i, &l) in load.iter().enumerate() {
            let cap = inst.topo().station(StationId(i)).capacity().as_mhz();
            assert!(l <= cap + 1e-6, "station {i} overloaded: {l} vs {cap}");
        }
    }

    #[test]
    fn admits_everything_with_ample_capacity() {
        let inst = instance(6, 5, 1);
        let realized = Realizations::draw(&inst, 1);
        let out = HeuKkt::new().solve(&inst, &realized).unwrap();
        assert_eq!(out.admitted(), 6);
    }

    #[test]
    fn saturated_instance_spills() {
        // 2 stations ≈ 6600 MHz total vs 80 requests ≈ 800 MHz each: most
        // must spill to the cloud.
        let inst = instance(80, 2, 9);
        let realized = Realizations::draw(&inst, 9);
        let out = HeuKkt::new().solve(&inst, &realized).unwrap();
        assert!(out.admitted() < 15, "admitted {}", out.admitted());
        assert!(out.admitted() >= 5);
    }

    #[test]
    fn deterministic() {
        let inst = instance(30, 4, 2);
        let realized = Realizations::draw(&inst, 2);
        let a = HeuKkt::new().solve(&inst, &realized).unwrap();
        let b = HeuKkt::new().solve(&inst, &realized).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }
}
