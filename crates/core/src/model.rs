//! Problem instances: topology + workload + paper parameters, with the
//! derived quantities every algorithm needs.

use mec_topology::slots::SlotLayout;
use mec_topology::station::StationId;
use mec_topology::units::{Compute, DataRate, Latency};
use mec_topology::{PathTable, Topology};
use mec_workload::demand::DemandOutcome;
use mec_workload::request::Request;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The paper's global parameters (§VI-A defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceParams {
    /// Compute per unit data rate `C_unit` (20 MHz per MB/s).
    pub c_unit: Compute,
    /// Resource-slot size `C_l` (1000 MHz).
    pub slot_capacity: Compute,
    /// Time-slot length in ms (50 ms).
    pub slot_ms: f64,
}

impl Default for InstanceParams {
    fn default() -> Self {
        Self {
            c_unit: Compute::mhz(20.0),
            slot_capacity: Compute::mhz(1000.0),
            slot_ms: 50.0,
        }
    }
}

/// An offline problem instance: the MEC network, the request set, and the
/// parameters, with shortest paths precomputed.
#[derive(Debug, Clone)]
pub struct Instance {
    topo: Topology,
    paths: PathTable,
    requests: Vec<Request>,
    params: InstanceParams,
}

impl Instance {
    /// Bundles a topology and workload.
    ///
    /// # Panics
    ///
    /// Panics if request ids are not dense `0..n`.
    pub fn new(topo: Topology, requests: Vec<Request>, params: InstanceParams) -> Self {
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id().index(), i, "request ids must be dense");
        }
        let paths = topo.shortest_paths();
        Self {
            topo,
            paths,
            requests,
            params,
        }
    }

    /// The network.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Precomputed all-pairs shortest paths.
    pub fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// The request set `R`.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests `|R|`.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// The global parameters.
    pub const fn params(&self) -> &InstanceParams {
        &self.params
    }

    /// The resource-slot layout of one station (`L = ⌊C/C_l⌋`).
    pub fn slot_layout(&self, station: StationId) -> SlotLayout {
        SlotLayout::partition(
            self.topo.station(station).capacity(),
            self.params.slot_capacity,
        )
    }

    /// Offline latency of serving request `j` at `station` with zero
    /// waiting (Eq. 2 with `b_j = a_j`), or `None` if unreachable.
    pub fn offline_latency(&self, j: usize, station: StationId) -> Option<Latency> {
        self.requests[j].experienced_latency(
            &self.topo,
            &self.paths,
            station,
            0,
            self.params.slot_ms,
        )
    }

    /// Whether serving `j` at `station` with zero waiting meets `D̂_j`.
    pub fn offline_feasible(&self, j: usize, station: StationId) -> bool {
        self.requests[j].meets_deadline_at(&self.topo, &self.paths, station, 0, self.params.slot_ms)
    }

    /// The deadline-feasible stations for request `j` (offline setting).
    pub fn feasible_stations(&self, j: usize) -> Vec<StationId> {
        self.topo
            .station_ids()
            .filter(|&s| self.offline_feasible(j, s))
            .collect()
    }

    /// `ER_{jil}` (Eq. 8): the expected reward of starting request `j` at
    /// slot `l` of `station` — only outcomes whose demand fits in the
    /// capacity remaining *after* the first `l` slots pay out.
    pub fn expected_reward_at(&self, j: usize, station: StationId, l: usize) -> f64 {
        let cap = self.topo.station(station).capacity();
        let used = self.params.slot_capacity * l as f64;
        let available = (cap - used).clamp_non_negative();
        let max_rate = available.sustainable_rate(self.params.c_unit);
        self.requests[j].demand().expected_reward_within(max_rate)
    }

    /// The compute demand of a realized rate: `ρ · C_unit`.
    pub fn demand_of(&self, rate: DataRate) -> Compute {
        rate.demand(self.params.c_unit)
    }
}

/// One realized `(rate, reward)` outcome per request, drawn up-front so
/// every algorithm faces the same world. Algorithms must only read
/// `realized[j]` after deciding to schedule `r_j` (the paper's
/// reveal-on-schedule model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Realizations {
    outcomes: Vec<DemandOutcome>,
}

impl Realizations {
    /// Draws one outcome per request with a seeded PRNG.
    pub fn draw(instance: &Instance, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
        let outcomes = instance
            .requests()
            .iter()
            .map(|r| r.demand().sample(&mut rng))
            .collect();
        Self { outcomes }
    }

    /// Wraps explicit outcomes (tests).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the instance it will be used with
    /// — enforced at use sites via `outcome(j)` indexing.
    pub fn from_outcomes(outcomes: Vec<DemandOutcome>) -> Self {
        Self { outcomes }
    }

    /// The realized outcome of request `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn outcome(&self, j: usize) -> DemandOutcome {
        self.outcomes[j]
    }

    /// Number of realizations.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether there are no realizations.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::generator::{Shape, TopologyBuilder};
    use mec_workload::WorkloadBuilder;

    fn instance(n_requests: usize) -> Instance {
        let topo = TopologyBuilder::new(5).seed(2).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(2)
            .count(n_requests)
            .build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn slot_layouts_match_capacity() {
        let inst = instance(10);
        for s in inst.topo().station_ids() {
            let layout = inst.slot_layout(s);
            assert_eq!(layout.count(), 3, "3000-3600 MHz at C_l = 1000 gives L = 3");
        }
    }

    #[test]
    fn feasible_stations_nonempty_with_default_deadline() {
        // 200 ms deadline is generous for a small Waxman graph.
        let inst = instance(20);
        for j in 0..inst.request_count() {
            assert!(
                !inst.feasible_stations(j).is_empty(),
                "request {j} has no feasible station"
            );
        }
    }

    #[test]
    fn expected_reward_decreases_in_l() {
        let inst = instance(10);
        let s = StationId(0);
        for j in 0..inst.request_count() {
            let l_vals: Vec<f64> = (0..=3).map(|l| inst.expected_reward_at(j, s, l)).collect();
            assert!(
                l_vals.windows(2).all(|w| w[0] >= w[1] - 1e-12),
                "ER must be non-increasing in l: {l_vals:?}"
            );
        }
    }

    #[test]
    fn er_zero_when_no_room() {
        let inst = instance(5);
        let s = StationId(0);
        // Starting at l = L leaves (C - L·C_l) < 1000 MHz; rates of
        // 30+ MB/s need >= 600 MHz, so some outcomes may fit — but at l
        // well past L nothing fits.
        assert_eq!(inst.expected_reward_at(0, s, 10), 0.0);
    }

    #[test]
    fn realizations_deterministic_and_within_support() {
        let inst = instance(50);
        let a = Realizations::draw(&inst, 9);
        let b = Realizations::draw(&inst, 9);
        assert_eq!(a, b);
        for j in 0..inst.request_count() {
            let o = a.outcome(j);
            assert!(inst.requests()[j]
                .demand()
                .outcomes()
                .iter()
                .any(|cand| (cand.rate.as_mbps() - o.rate.as_mbps()).abs() < 1e-12));
        }
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
    }

    #[test]
    fn offline_latency_reachable_everywhere_in_connected_graph() {
        let inst = instance(5);
        for j in 0..5 {
            for s in inst.topo().station_ids() {
                assert!(inst.offline_latency(j, s).is_some());
            }
        }
    }

    #[test]
    fn line_topology_far_station_infeasible_with_tight_deadline() {
        use mec_topology::units::Latency;
        use mec_workload::demand::DemandDistribution;
        use mec_workload::request::{Request, RequestId};
        use mec_workload::task::Task;

        let topo = TopologyBuilder::new(10)
            .shape(Shape::Line)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(5.0, 5.0)
            .build();
        // Deadline 20 ms: home (5.5 ms) feasible; 9 hops away (90 ms one
        // way) not.
        let req = Request::new(
            RequestId(0),
            0.into(),
            0,
            10,
            Task::reference_pipeline(),
            DemandDistribution::deterministic(DataRate::mbps(40.0), 1.0),
            Latency::ms(20.0),
        );
        let inst = Instance::new(topo, vec![req], InstanceParams::default());
        let feas = inst.feasible_stations(0);
        assert!(feas.contains(&StationId(0)));
        assert!(!feas.contains(&StationId(9)));
    }
}
