//! `Appro` — Algorithm 1, the randomized-rounding 1/8-approximation
//! (Theorem 1).
//!
//! 1. Solve the slot-indexed **LP** (see [`crate::slotlp`]).
//! 2. Tentatively assign each request `r_j` to `(station i, slot l)` with
//!    probability `y_{jil} / 4`, ignore it otherwise.
//! 3. Admit slot-by-slot: walking `l = 1..L` and each station, requests
//!    tentatively parked at `(i, l)` are considered in increasing expected
//!    rate, and admitted iff the station's already-realized demand still
//!    fits in the slot prefix `l · C_l`.
//!
//! Demands realize *at admission* (the paper's reveal-on-schedule model);
//! a realized demand larger than the station's remaining capacity earns no
//! reward (Eq. 8's semantics) but still occupies the remainder.

use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use crate::placement::TaskPlacement;
use crate::slotlp::{FractionalAssignment, SlotLp, SlotLpSolver, Truncation};
use mec_lp::SolverKind;
use mec_sim::Metrics;
use mec_topology::station::StationId;
use mec_topology::units::{total_cmp, Compute};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The rounding scale of Algorithm 1 (`y_{jil} / 4`).
pub(crate) const ROUNDING_DIVISOR: f64 = 4.0;

/// A tentative (pre-admission) placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Tentative {
    pub station: StationId,
    pub slot: usize,
}

/// Samples step 2 of Algorithm 1: each request keeps one `(i, l)` with
/// probability `y_{jil}/4`, or is ignored. Requests where `eligible` is
/// `false` (already admitted in a previous backfill round) are skipped.
pub(crate) fn sample_tentative<R: Rng + ?Sized>(
    frac: &FractionalAssignment,
    eligible: &[bool],
    rng: &mut R,
) -> Vec<Option<Tentative>> {
    (0..frac.request_count())
        .map(|j| {
            if !eligible[j] {
                return None;
            }
            let mut u: f64 = rng.gen();
            for &(station, slot, y) in frac.for_request(j) {
                let p = y / ROUNDING_DIVISOR;
                if u < p {
                    return Some(Tentative { station, slot });
                }
                u -= p;
            }
            None
        })
        .collect()
}

/// Station-side admission state shared by `Appro` and `Heu`.
#[derive(Debug, Clone)]
pub(crate) struct AdmissionState {
    /// Realized compute already committed per station.
    pub occupied: Vec<Compute>,
    /// Per-request serving station (the pipeline's primary host).
    pub assignment: Vec<Option<StationId>>,
    /// Per-request collected reward (0 if rejected or truncated).
    pub reward: Vec<f64>,
    /// Per-request task placement (consolidated on admission; `Heu`'s
    /// migration spreads it, §IV-B).
    pub placements: Vec<Option<TaskPlacement>>,
}

impl AdmissionState {
    pub fn new(instance: &Instance) -> Self {
        let n = instance.request_count();
        Self {
            occupied: vec![Compute::ZERO; instance.topo().station_count()],
            assignment: vec![None; n],
            reward: vec![0.0; n],
            placements: vec![None; n],
        }
    }

    /// Admits request `j` at `station`, realizing its demand: reward is
    /// earned only if the realized demand fits in the remaining capacity.
    pub fn admit(
        &mut self,
        instance: &Instance,
        realized: &Realizations,
        j: usize,
        station: StationId,
    ) {
        let outcome = realized.outcome(j);
        let demand = instance.demand_of(outcome.rate);
        let capacity = instance.topo().station(station).capacity();
        let remaining = (capacity - self.occupied[station.index()]).clamp_non_negative();
        let fits = demand.as_mhz() <= remaining.as_mhz() + 1e-9;
        self.reward[j] = if fits { outcome.reward } else { 0.0 };
        self.occupied[station.index()] += demand.min(remaining);
        self.assignment[j] = Some(station);
        self.placements[j] = Some(TaskPlacement::consolidated(
            station,
            instance.requests()[j].task_count(),
        ));
    }

    /// Builds the final metrics: admitted requests record the generalized
    /// Eq.-2 latency of their (possibly distributed) task placement with
    /// zero waiting; the rest count as rejected.
    pub fn into_outcome(self, instance: &Instance, started: Instant) -> OffloadOutcome {
        let mut metrics = Metrics::new();
        for j in 0..instance.request_count() {
            match &self.placements[j] {
                Some(placement) => {
                    let latency = placement
                        .latency(instance, j)
                        .expect("placements only use reachable stations");
                    metrics.record_completion(self.reward[j], latency.as_ms());
                }
                None => metrics.record_expired(),
            }
        }
        OffloadOutcome::new(metrics, self.assignment, started.elapsed())
    }
}

/// Groups tentative placements by `(station, slot)` and sorts each group by
/// expected rate ascending — the order step 5 of Algorithm 1 consumes.
pub(crate) fn grouped_by_slot(
    instance: &Instance,
    tentative: &[Option<Tentative>],
) -> Vec<Vec<Vec<usize>>> {
    let stations = instance.topo().station_count();
    let max_l = (0..stations)
        .map(|s| instance.slot_layout(StationId(s)).count())
        .max()
        .unwrap_or(0);
    // grouped[station][l - 1] = request indices.
    let mut grouped: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); max_l]; stations];
    for (j, t) in tentative.iter().enumerate() {
        if let Some(t) = t {
            grouped[t.station.index()][t.slot - 1].push(j);
        }
    }
    for station_groups in &mut grouped {
        for group in station_groups.iter_mut() {
            group.sort_by(|&a, &b| {
                total_cmp(
                    &instance.requests()[a].demand().expected_rate(),
                    &instance.requests()[b].demand().expected_rate(),
                )
            });
        }
    }
    grouped
}

/// Runs one slot-by-slot admission sweep (steps 3-7 of Algorithm 1) over a
/// tentative placement, mutating the shared [`AdmissionState`].
pub(crate) fn admission_sweep(
    instance: &Instance,
    realized: &Realizations,
    tentative: &[Option<Tentative>],
    state: &mut AdmissionState,
) {
    let grouped = grouped_by_slot(instance, tentative);
    let max_l = grouped.iter().map(Vec::len).max().unwrap_or(0);
    for l in 1..=max_l {
        for station in instance.topo().station_ids() {
            let layout = instance.slot_layout(station);
            if l > layout.count() {
                continue;
            }
            let prefix = layout.slot_size() * l as f64;
            // Requests parked at (station, l), cheapest expected rate
            // first (step 5).
            for &j in &grouped[station.index()][l - 1] {
                // Step 6: admit only while the realized occupancy still
                // fits inside the slot prefix.
                if state.occupied[station.index()].as_mhz() <= prefix.as_mhz() + 1e-9 {
                    state.admit(instance, realized, j, station);
                }
            }
        }
    }
}

/// Final revealed-information fill (§IV-A: "we determine the assignment of
/// the randomly assigned requests according to the revealed data rate
/// information of currently executing requests"): once the lottery rounds
/// are exhausted, still-unassigned requests are offered — in decreasing
/// expected-reward-per-MHz order — to the feasible station whose *realized*
/// residual capacity still covers their expected demand. Admission uses the
/// same reveal-at-admission accounting, so this step only ever adds reward
/// and the Theorem-1 guarantee from round 1 is untouched.
pub(crate) fn residual_fill(
    instance: &Instance,
    realized: &Realizations,
    state: &mut AdmissionState,
) {
    let mut order: Vec<usize> = (0..instance.request_count())
        .filter(|&j| state.assignment[j].is_none())
        .collect();
    let density = |j: usize| {
        let d = instance
            .demand_of(instance.requests()[j].demand().expected_rate())
            .as_mhz()
            .max(1e-9);
        instance.requests()[j].demand().expected_reward() / d
    };
    order.sort_by(|&a, &b| total_cmp(&density(b), &density(a)));
    for j in order {
        let need = instance.demand_of(instance.requests()[j].demand().expected_rate());
        let target = instance
            .feasible_stations(j)
            .into_iter()
            .map(|s| {
                let remaining = (instance.topo().station(s).capacity() - state.occupied[s.index()])
                    .clamp_non_negative();
                (s, remaining)
            })
            .filter(|(_, remaining)| remaining.as_mhz() + 1e-9 >= need.as_mhz())
            .max_by(|a, b| total_cmp(&a.1, &b.1))
            .map(|(s, _)| s);
        if let Some(s) = target {
            state.admit(instance, realized, j, s);
        }
    }
}

/// Algorithm 1 (`Appro`).
///
/// `rounds` controls backfilling: round 1 is the verbatim paper algorithm
/// (whose expected reward is ≥ `Opt/8`, Theorem 1); additional rounds
/// re-run the `y/4` lottery for still-unassigned requests over the
/// residual capacity. Backfilling never evicts an admitted request, so
/// every extra round only adds reward — the guarantee is preserved while
/// matching the packed operating point the paper's evaluation reports.
#[derive(Debug, Clone, Copy)]
pub struct Appro {
    seed: u64,
    rounds: usize,
    solver: SolverKind,
}

/// Default number of backfill rounds.
pub(crate) const DEFAULT_ROUNDS: usize = 32;

impl Appro {
    /// Creates the algorithm with a rounding seed and default backfill.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rounds: DEFAULT_ROUNDS,
            solver: SolverKind::default(),
        }
    }

    /// Overrides the number of rounding rounds (1 = the verbatim paper
    /// algorithm; used by the Theorem-1 ratio experiment).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "need at least one rounding round");
        self.rounds = rounds;
        self
    }

    /// Picks which simplex solves the LP relaxation (the dense tableau is
    /// the correctness oracle; the revised solver is the default).
    #[must_use]
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }
}

impl OfflineAlgorithm for Appro {
    fn name(&self) -> &'static str {
        "Appro"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let n = instance.request_count();
        let subset: Vec<usize> = (0..n).collect();
        let lp = SlotLp::build(instance, &subset, Truncation::Standard);
        let frac = SlotLpSolver::new(self.solver)
            .solve(&lp, n)
            .map_err(|e| format!("LP solve failed: {e}"))?;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA55A_5AA5);
        let mut state = AdmissionState::new(instance);
        {
            mec_obs::prof_scope!("appro.rounding");
            for _ in 0..self.rounds {
                let eligible: Vec<bool> = state.assignment.iter().map(Option::is_none).collect();
                if eligible.iter().all(|&e| !e) {
                    break;
                }
                let tentative = sample_tentative(&frac, &eligible, &mut rng);
                if tentative.iter().all(Option::is_none) {
                    continue;
                }
                admission_sweep(instance, realized, &tentative, &mut state);
            }
        }
        if self.rounds > 1 {
            // rounds == 1 is the verbatim paper algorithm (used by the
            // Theorem-1 ratio experiment); otherwise finish with the
            // revealed-information fill.
            mec_obs::prof_span!(
                "appro.residual_fill",
                residual_fill(instance, realized, &mut state)
            );
        }
        Ok(state.into_outcome(instance, started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn produces_feasible_assignment() {
        let inst = instance(30, 5, 4);
        let realized = Realizations::draw(&inst, 4);
        let out = Appro::new(4).solve(&inst, &realized).unwrap();
        // Capacity audit: realized demands of admitted requests never
        // exceed any station's capacity.
        let mut used = vec![0.0; inst.topo().station_count()];
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                // Deadline feasibility (Constraint 11).
                assert!(inst.offline_feasible(j, *s));
                used[s.index()] += inst.demand_of(realized.outcome(j).rate).as_mhz();
            }
        }
        for (i, &u) in used.iter().enumerate() {
            let cap = inst.topo().station(StationId(i)).capacity().as_mhz();
            // Occupancy is truncated at capacity inside admit(); the audit
            // allows one straddling request per station (the Lemma-1 slack).
            assert!(
                u <= cap + 1000.0 + 1e-6,
                "station {i}: {u} used vs {cap} capacity"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(25, 4, 9);
        let realized = Realizations::draw(&inst, 9);
        let a = Appro::new(1).solve(&inst, &realized).unwrap();
        let b = Appro::new(1).solve(&inst, &realized).unwrap();
        assert_eq!(a.metrics().total_reward(), b.metrics().total_reward());
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn reward_nonnegative_and_bounded() {
        let inst = instance(40, 5, 11);
        let realized = Realizations::draw(&inst, 11);
        let out = Appro::new(2).solve(&inst, &realized).unwrap();
        let max_possible: f64 = (0..inst.request_count())
            .map(|j| realized.outcome(j).reward)
            .sum();
        assert!(out.metrics().total_reward() >= 0.0);
        assert!(out.metrics().total_reward() <= max_possible + 1e-9);
    }

    #[test]
    fn empty_instance() {
        let inst = instance(0, 3, 1);
        let realized = Realizations::draw(&inst, 1);
        let out = Appro::new(0).solve(&inst, &realized).unwrap();
        assert_eq!(out.metrics().total_reward(), 0.0);
        assert_eq!(out.admitted(), 0);
    }

    #[test]
    fn tentative_sampling_respects_mass() {
        // A fabricated fractional solution with known mass: request 0 has
        // y = 1.0 total, so it should be kept ~ 25% of the time.
        let inst = instance(1, 2, 3);
        let subset = vec![0usize];
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let frac = lp.solve(1).unwrap();
        let mass = frac.mass(0);
        let mut kept = 0usize;
        let trials = 20_000;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..trials {
            if sample_tentative(&frac, &[true], &mut rng)[0].is_some() {
                kept += 1;
            }
        }
        let freq = kept as f64 / trials as f64;
        let expect = mass / ROUNDING_DIVISOR;
        assert!(
            (freq - expect).abs() < 0.02,
            "kept {freq}, expected {expect} (mass {mass})"
        );
    }
}
