//! The paper's slot-indexed LP relaxations: **LP** (§IV-A) and **LP-PT**
//! (§V-A).
//!
//! Variables `y_{jil}` say "request `j` starts at resource slot `l` of
//! station `i`". The objective maximizes `Σ y_{jil} · ER_{jil}` (Eq. 8);
//! Constraint (9) lets each request start at most once; Constraint (10)
//! bounds, for every slot prefix, the *truncated expected* demand packed
//! into it by `2 · l · C_l` — the factor 2 is what Lemma 1 needs to absorb
//! the one request that may straddle a prefix boundary. Deadline
//! constraint (11) is enforced structurally: infeasible `(j, i)` pairs get
//! no variable.
//!
//! LP-PT tightens the truncation with the per-request fair share
//! `C(bs_i)/|R_t|` (Constraint 23), which is how `DynamicRR` throttles
//! per-slot contention.

use crate::model::Instance;
use mec_lp::{Cmp, LpError, Problem, Sense, VarId};
use mec_topology::station::StationId;
use mec_topology::units::DataRate;
use serde::{Deserialize, Serialize};

/// Which truncation Constraint (10)/(23) applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Truncation {
    /// The offline **LP**: truncate by the prefix rate `l·C_l / C_unit`.
    Standard,
    /// **LP-PT**: additionally truncate by the fair share
    /// `C(bs_i) / active` (Eq. 23), with `active = |R_t|`.
    PerRequestShare {
        /// Number of requests admitted to the current time slot `|R_t|`.
        active: usize,
    },
}

/// One `y_{jil}` variable's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotVar {
    /// Request index `j` (into the subset passed to [`SlotLp::build`]).
    pub request: usize,
    /// Station `i`.
    pub station: StationId,
    /// 1-based starting resource slot `l`.
    pub slot: usize,
}

/// A built slot-indexed LP, ready to solve.
#[derive(Debug, Clone)]
pub struct SlotLp {
    problem: Problem,
    vars: Vec<(SlotVar, VarId)>,
}

/// The fractional solution `y`, grouped per request.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalAssignment {
    /// `per_request[j]` lists `(station, slot l, y)` with `y > 0`.
    per_request: Vec<Vec<(StationId, usize, f64)>>,
    objective: f64,
}

impl FractionalAssignment {
    /// The options (with positive mass) for one request.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn for_request(&self, j: usize) -> &[(StationId, usize, f64)] {
        &self.per_request[j]
    }

    /// Number of requests covered.
    pub fn request_count(&self) -> usize {
        self.per_request.len()
    }

    /// The LP optimum `LPOpt` — an upper bound on the integral optimum
    /// (Lemma 1).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Total fractional mass of one request (`Σ_il y_jil ≤ 1`).
    pub fn mass(&self, j: usize) -> f64 {
        self.per_request[j].iter().map(|&(_, _, y)| y).sum()
    }
}

impl SlotLp {
    /// Builds the LP over a subset of the instance's requests.
    ///
    /// `subset` holds request indices (use `0..n` for the full offline
    /// problem). The LP has one variable per deadline-feasible
    /// `(request, station, slot)` triple.
    pub fn build(instance: &Instance, subset: &[usize], truncation: Truncation) -> Self {
        mec_obs::prof_scope!("slotlp.build");
        let mut problem = Problem::new(Sense::Maximize);
        let mut vars: Vec<(SlotVar, VarId)> = Vec::new();
        let c_unit = instance.params().c_unit;
        let slot_cap = instance.params().slot_capacity;

        // Variables + objective.
        for (local_j, &j) in subset.iter().enumerate() {
            for station in instance.topo().station_ids() {
                if !instance.offline_feasible(j, station) {
                    continue;
                }
                let layout = instance.slot_layout(station);
                for l in layout.indices() {
                    let er = instance.expected_reward_at(j, station, l.get());
                    let var = problem.add_var(er);
                    vars.push((
                        SlotVar {
                            request: local_j,
                            station,
                            slot: l.get(),
                        },
                        var,
                    ));
                }
            }
        }

        // Constraint (9): each request starts at most once.
        for local_j in 0..subset.len() {
            let coeffs: Vec<(VarId, f64)> = vars
                .iter()
                .filter(|(sv, _)| sv.request == local_j)
                .map(|&(_, v)| (v, 1.0))
                .collect();
            if !coeffs.is_empty() {
                problem.add_constraint(coeffs, Cmp::Le, 1.0);
            }
        }

        // Constraint (10)/(23): truncated expected demand per slot prefix.
        for station in instance.topo().station_ids() {
            let layout = instance.slot_layout(station);
            let share_rate: Option<DataRate> = match truncation {
                Truncation::Standard => None,
                Truncation::PerRequestShare { active } => {
                    if active == 0 {
                        None
                    } else {
                        Some(
                            (instance.topo().station(station).capacity() / active as f64)
                                .sustainable_rate(c_unit),
                        )
                    }
                }
            };
            for l in layout.indices() {
                let prefix_rate = l.prefix_capacity(slot_cap).sustainable_rate(c_unit);
                let cap_rate = match share_rate {
                    Some(s) => s.min(prefix_rate),
                    None => prefix_rate,
                };
                let mut coeffs: Vec<(VarId, f64)> = Vec::new();
                for &(sv, v) in &vars {
                    if sv.station == station && sv.slot <= l.get() {
                        let j = subset[sv.request];
                        let trunc = instance.requests()[j]
                            .demand()
                            .expected_truncated_rate(cap_rate)
                            .as_mbps();
                        if trunc > 0.0 {
                            coeffs.push((v, trunc));
                        }
                    }
                }
                if !coeffs.is_empty() {
                    problem.add_constraint(coeffs, Cmp::Le, 2.0 * prefix_rate.as_mbps());
                }
            }
        }

        Self { problem, vars }
    }

    /// Number of `y` variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The underlying [`Problem`] (read access for diagnostics).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Solves the relaxation.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`]; a well-formed instance is always feasible
    /// (`y = 0` satisfies everything) and bounded (`y ≤ 1` via Eq. 9).
    pub fn solve(&self, subset_len: usize) -> Result<FractionalAssignment, LpError> {
        mec_obs::prof_scope!("slotlp.solve");
        let pivots_before = mec_lp::pivots_performed();
        let sol = self.problem.solve();
        mec_obs::prof_count!("simplex_pivots", mec_lp::pivots_performed() - pivots_before);
        let sol = sol?;
        let mut per_request = vec![Vec::new(); subset_len];
        for &(sv, v) in &self.vars {
            let y = sol.value(v);
            if y > 1e-9 {
                per_request[sv.request].push((sv.station, sv.slot, y));
            }
        }
        Ok(FractionalAssignment {
            per_request,
            objective: sol.objective(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(3).build();
        let requests = WorkloadBuilder::new(&topo).seed(3).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn builds_and_solves() {
        let inst = instance(12, 4);
        let subset: Vec<usize> = (0..12).collect();
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        assert!(lp.var_count() > 0);
        let frac = lp.solve(subset.len()).unwrap();
        assert!(frac.objective() > 0.0);
        // Masses respect Constraint (9).
        for j in 0..12 {
            assert!(frac.mass(j) <= 1.0 + 1e-6, "mass({j}) = {}", frac.mass(j));
        }
    }

    #[test]
    fn lp_upper_bounds_total_expected_reward() {
        // With ample capacity the LP should admit everything fully:
        // objective close to the sum of best ER over (i, l=1).
        let inst = instance(3, 4);
        let subset = vec![0, 1, 2];
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let frac = lp.solve(3).unwrap();
        let best_sum: f64 = (0..3)
            .map(|j| {
                inst.topo()
                    .station_ids()
                    .map(|s| inst.expected_reward_at(j, s, 1))
                    .fold(0.0, f64::max)
            })
            .sum();
        assert!(frac.objective() <= best_sum + 1e-6);
        // 3 requests against 4 stations: nearly everything fits.
        assert!(frac.objective() >= 0.9 * best_sum);
    }

    #[test]
    fn truncation_with_share_tightens() {
        let inst = instance(20, 3);
        let subset: Vec<usize> = (0..20).collect();
        let std = SlotLp::build(&inst, &subset, Truncation::Standard)
            .solve(20)
            .unwrap();
        let pt = SlotLp::build(&inst, &subset, Truncation::PerRequestShare { active: 20 })
            .solve(20)
            .unwrap();
        // Tighter truncation cannot increase the LP value... note: smaller
        // per-variable coefficients *loosen* constraint (10); the direction
        // depends on instance. Just check both solve and stay bounded.
        assert!(std.objective().is_finite());
        assert!(pt.objective().is_finite());
    }

    #[test]
    fn empty_subset() {
        let inst = instance(5, 3);
        let lp = SlotLp::build(&inst, &[], Truncation::Standard);
        assert_eq!(lp.var_count(), 0);
        let frac = lp.solve(0).unwrap();
        assert_eq!(frac.objective(), 0.0);
        assert_eq!(frac.request_count(), 0);
    }

    #[test]
    fn subset_indices_are_local() {
        let inst = instance(10, 3);
        let subset = vec![7, 2]; // global ids
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let frac = lp.solve(2).unwrap();
        assert_eq!(frac.request_count(), 2);
        // Local index 0 corresponds to global request 7.
        let _ = frac.for_request(0);
        let _ = frac.for_request(1);
    }
}
