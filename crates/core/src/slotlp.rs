//! The paper's slot-indexed LP relaxations: **LP** (§IV-A) and **LP-PT**
//! (§V-A).
//!
//! Variables `y_{jil}` say "request `j` starts at resource slot `l` of
//! station `i`". The objective maximizes `Σ y_{jil} · ER_{jil}` (Eq. 8);
//! Constraint (9) lets each request start at most once; Constraint (10)
//! bounds, for every slot prefix, the *truncated expected* demand packed
//! into it by `2 · l · C_l` — the factor 2 is what Lemma 1 needs to absorb
//! the one request that may straddle a prefix boundary. Deadline
//! constraint (11) is enforced structurally: infeasible `(j, i)` pairs get
//! no variable.
//!
//! LP-PT tightens the truncation with the per-request fair share
//! `C(bs_i)/|R_t|` (Constraint 23), which is how `DynamicRR` throttles
//! per-slot contention.

use crate::model::Instance;
use mec_lp::revised;
use mec_lp::{
    BasisCol, BasisSnapshot, Cmp, LpError, Problem, RevisedConfig, Sense, Solution, SolverKind,
    VarId, WarmOutcome,
};
use mec_topology::station::StationId;
use mec_topology::units::DataRate;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which truncation Constraint (10)/(23) applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Truncation {
    /// The offline **LP**: truncate by the prefix rate `l·C_l / C_unit`.
    Standard,
    /// **LP-PT**: additionally truncate by the fair share
    /// `C(bs_i) / active` (Eq. 23), with `active = |R_t|`.
    PerRequestShare {
        /// Number of requests admitted to the current time slot `|R_t|`.
        active: usize,
    },
}

/// One `y_{jil}` variable's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotVar {
    /// Request index `j` (into the subset passed to [`SlotLp::build`]).
    pub request: usize,
    /// Station `i`.
    pub station: StationId,
    /// 1-based starting resource slot `l`.
    pub slot: usize,
}

/// Identity of a `y_{jil}` variable that is stable **across slots**: it
/// names the request globally (instance index, not subset position), so a
/// basis learned on slot `t`'s subset can be re-aimed at slot `t+1`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarKey {
    /// Global request index into [`Instance::requests`].
    pub request: usize,
    /// Station `i`.
    pub station: StationId,
    /// 1-based starting resource slot `l`.
    pub slot: usize,
}

/// Identity of an LP row that is stable across slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowKey {
    /// Constraint (9) for a request, named globally.
    Start(usize),
    /// Constraint (10)/(23) for a station's slot prefix `l`.
    Prefix(StationId, usize),
}

/// A basis member remembered by stable identity rather than position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyCol {
    Var(VarKey),
    Slack(RowKey),
}

/// A built slot-indexed LP, ready to solve.
#[derive(Debug, Clone)]
pub struct SlotLp {
    problem: Problem,
    vars: Vec<(SlotVar, VarId)>,
    var_keys: Vec<VarKey>,
    row_keys: Vec<RowKey>,
}

/// The fractional solution `y`, grouped per request.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalAssignment {
    /// `per_request[j]` lists `(station, slot l, y)` with `y > 0`.
    per_request: Vec<Vec<(StationId, usize, f64)>>,
    objective: f64,
}

impl FractionalAssignment {
    /// The options (with positive mass) for one request.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn for_request(&self, j: usize) -> &[(StationId, usize, f64)] {
        &self.per_request[j]
    }

    /// Number of requests covered.
    pub fn request_count(&self) -> usize {
        self.per_request.len()
    }

    /// The LP optimum `LPOpt` — an upper bound on the integral optimum
    /// (Lemma 1).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Total fractional mass of one request (`Σ_il y_jil ≤ 1`).
    pub fn mass(&self, j: usize) -> f64 {
        self.per_request[j].iter().map(|&(_, _, y)| y).sum()
    }
}

impl SlotLp {
    /// Builds the LP over a subset of the instance's requests.
    ///
    /// `subset` holds request indices (use `0..n` for the full offline
    /// problem). The LP has one variable per deadline-feasible
    /// `(request, station, slot)` triple.
    pub fn build(instance: &Instance, subset: &[usize], truncation: Truncation) -> Self {
        mec_obs::prof_scope!("slotlp.build");
        let mut problem = Problem::new(Sense::Maximize);
        let mut vars: Vec<(SlotVar, VarId)> = Vec::new();
        let mut var_keys: Vec<VarKey> = Vec::new();
        let mut row_keys: Vec<RowKey> = Vec::new();
        let c_unit = instance.params().c_unit;
        let slot_cap = instance.params().slot_capacity;

        // Variables + objective.
        for (local_j, &j) in subset.iter().enumerate() {
            for station in instance.topo().station_ids() {
                if !instance.offline_feasible(j, station) {
                    continue;
                }
                let layout = instance.slot_layout(station);
                for l in layout.indices() {
                    let er = instance.expected_reward_at(j, station, l.get());
                    let var = problem.add_var(er);
                    vars.push((
                        SlotVar {
                            request: local_j,
                            station,
                            slot: l.get(),
                        },
                        var,
                    ));
                    var_keys.push(VarKey {
                        request: j,
                        station,
                        slot: l.get(),
                    });
                }
            }
        }

        // Constraint (9): each request starts at most once.
        for (local_j, &j) in subset.iter().enumerate() {
            let coeffs: Vec<(VarId, f64)> = vars
                .iter()
                .filter(|(sv, _)| sv.request == local_j)
                .map(|&(_, v)| (v, 1.0))
                .collect();
            if !coeffs.is_empty() {
                problem.add_constraint(coeffs, Cmp::Le, 1.0);
                row_keys.push(RowKey::Start(j));
            }
        }

        // Constraint (10)/(23): truncated expected demand per slot prefix.
        for station in instance.topo().station_ids() {
            let layout = instance.slot_layout(station);
            let share_rate: Option<DataRate> = match truncation {
                Truncation::Standard => None,
                Truncation::PerRequestShare { active } => {
                    if active == 0 {
                        None
                    } else {
                        Some(
                            (instance.topo().station(station).capacity() / active as f64)
                                .sustainable_rate(c_unit),
                        )
                    }
                }
            };
            for l in layout.indices() {
                let prefix_rate = l.prefix_capacity(slot_cap).sustainable_rate(c_unit);
                let cap_rate = match share_rate {
                    Some(s) => s.min(prefix_rate),
                    None => prefix_rate,
                };
                let mut coeffs: Vec<(VarId, f64)> = Vec::new();
                for &(sv, v) in &vars {
                    if sv.station == station && sv.slot <= l.get() {
                        let j = subset[sv.request];
                        let trunc = instance.requests()[j]
                            .demand()
                            .expected_truncated_rate(cap_rate)
                            .as_mbps();
                        if trunc > 0.0 {
                            coeffs.push((v, trunc));
                        }
                    }
                }
                if !coeffs.is_empty() {
                    problem.add_constraint(coeffs, Cmp::Le, 2.0 * prefix_rate.as_mbps());
                    row_keys.push(RowKey::Prefix(station, l.get()));
                }
            }
        }

        Self {
            problem,
            vars,
            var_keys,
            row_keys,
        }
    }

    /// Number of `y` variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The underlying [`Problem`] (read access for diagnostics).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Solves the relaxation with the default solver (a cold revised
    /// simplex; the dense tableau remains reachable via
    /// [`SlotLpSolver`] with [`SolverKind::Dense`]).
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`]; a well-formed instance is always feasible
    /// (`y = 0` satisfies everything) and bounded (`y ≤ 1` via Eq. 9).
    pub fn solve(&self, subset_len: usize) -> Result<FractionalAssignment, LpError> {
        mec_obs::prof_scope!("slotlp.solve");
        let pivots_before = mec_lp::pivots_performed();
        let sol = match revised::solve(&self.problem, &RevisedConfig::default()) {
            Ok(sol) => Ok(sol),
            // The slot LP is always feasible and bounded, so a revised
            // failure is numerical; the dense tableau is the fallback
            // oracle.
            Err(LpError::IterationLimit) => self.problem.solve(),
            Err(e) => Err(e),
        };
        mec_obs::prof_count!("simplex_pivots", mec_lp::pivots_performed() - pivots_before);
        Ok(self.extract(&sol?, subset_len))
    }

    /// Reads the fractional assignment out of a raw LP solution.
    fn extract(&self, sol: &Solution, subset_len: usize) -> FractionalAssignment {
        let mut per_request = vec![Vec::new(); subset_len];
        for &(sv, v) in &self.vars {
            let y = sol.value(v);
            if y > 1e-9 {
                per_request[sv.request].push((sv.station, sv.slot, y));
            }
        }
        FractionalAssignment {
            per_request,
            objective: sol.objective(),
        }
    }
}

/// Counters describing how a [`SlotLpSolver`]'s solves actually ran.
///
/// Every field is deterministic — pivot and refactorization counts come
/// from the simplex's own arithmetic, never wall-clock — so the stats
/// are safe to surface in traces and snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total solves issued.
    pub solves: u64,
    /// Solves that started from a previous slot's basis.
    pub warm_hits: u64,
    /// Solves where a cached basis was offered but rejected as stale.
    pub warm_fallbacks: u64,
    /// Solves with no usable cache (first slot, resets, dense kind).
    pub cold_starts: u64,
    /// Simplex pivots attributed to this solver's solves.
    pub pivots: u64,
    /// Basis refactorizations attributed to this solver's solves.
    pub refactorizations: u64,
}

/// A persistent slot-LP solver that carries the optimal basis from one
/// slot's LP to the next.
///
/// Successive per-slot LPs differ only by arrival/expiry deltas: a few
/// request columns and start-once rows appear or vanish while the station
/// prefix rows persist. The solver snapshots the optimal basis after each
/// solve, keyed by [`VarKey`]/[`RowKey`] identity rather than position,
/// and re-aims it at the next LP's layout. Departed members degrade to the
/// owning row's slack (the cold choice for that row), so a mostly-shared
/// basis warm-starts phase 2 directly and the simplex only repairs the
/// delta. Any stale snapshot falls back to a cold start — warm-starting
/// is a latency optimization, never a correctness risk.
#[derive(Debug, Clone)]
pub struct SlotLpSolver {
    kind: SolverKind,
    warm_enabled: bool,
    warm: Option<Vec<(RowKey, KeyCol)>>,
    stats: SolverStats,
    /// When set, each solve's wall-clock duration is buffered for
    /// [`SlotLpSolver::drain_solve_times_ms`]. Off by default: timing is
    /// observability-only and must stay out of deterministic streams.
    record_times: bool,
    solve_times_ms: Vec<f64>,
}

impl SlotLpSolver {
    /// Creates a solver of the given kind with warm-starting enabled.
    pub fn new(kind: SolverKind) -> Self {
        Self {
            kind,
            warm_enabled: true,
            warm: None,
            stats: SolverStats::default(),
            record_times: false,
            solve_times_ms: Vec::new(),
        }
    }

    /// Enables wall-clock timing of each solve. The buffered durations
    /// are for live histograms only; they never influence the solve.
    pub fn set_record_times(&mut self, on: bool) {
        self.record_times = on;
        if !on {
            self.solve_times_ms.clear();
        }
    }

    /// Drains the solve durations (milliseconds) buffered since the
    /// last drain. Empty unless [`SlotLpSolver::set_record_times`] is on.
    pub fn drain_solve_times_ms(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.solve_times_ms)
    }

    /// Enables or disables the cross-slot warm-start cache (revised only;
    /// the dense tableau always starts cold).
    #[must_use]
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_enabled = enabled;
        if !enabled {
            self.warm = None;
        }
        self
    }

    /// Which simplex this solver drives.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Drops the cached basis (e.g. on an instance swap).
    pub fn reset(&mut self) {
        self.warm = None;
    }

    /// Solves `lp`, warm-starting from the previous solve when possible.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] exactly like [`SlotLp::solve`].
    pub fn solve(
        &mut self,
        lp: &SlotLp,
        subset_len: usize,
    ) -> Result<FractionalAssignment, LpError> {
        mec_obs::prof_scope!("slotlp.solve");
        self.stats.solves += 1;
        let pivots_before = mec_lp::pivots_performed();
        let refactors_before = mec_lp::refactors_performed();
        let started = self.record_times.then(std::time::Instant::now);
        let result = self.solve_inner(lp, subset_len);
        if let Some(t0) = started {
            self.solve_times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let pivots = mec_lp::pivots_performed() - pivots_before;
        self.stats.pivots += pivots;
        self.stats.refactorizations += mec_lp::refactors_performed() - refactors_before;
        mec_obs::prof_count!("simplex_pivots", pivots);
        result
    }

    fn solve_inner(
        &mut self,
        lp: &SlotLp,
        subset_len: usize,
    ) -> Result<FractionalAssignment, LpError> {
        if self.kind == SolverKind::Dense {
            self.stats.cold_starts += 1;
            let sol = lp.problem.solve()?;
            return Ok(lp.extract(&sol, subset_len));
        }

        let config = RevisedConfig::default();
        let snapshot = if self.warm_enabled {
            self.translate(lp)
        } else {
            None
        };
        match revised::solve_with_basis(&lp.problem, &config, snapshot.as_ref()) {
            Ok((sol, basis, outcome)) => {
                match outcome {
                    WarmOutcome::Warm => {
                        // Belt and suspenders: a warm solve that drifted
                        // off the feasible region restarts cold.
                        if !lp.problem.is_feasible(sol.values(), 1e-6) {
                            self.warm = None;
                            self.stats.warm_fallbacks += 1;
                            return self.solve_inner(lp, subset_len);
                        }
                        self.stats.warm_hits += 1;
                    }
                    WarmOutcome::FellBack => self.stats.warm_fallbacks += 1,
                    WarmOutcome::Cold => self.stats.cold_starts += 1,
                }
                self.remember(lp, &basis);
                Ok(lp.extract(&sol, subset_len))
            }
            // Numerical breakdown: drop the cache and use the dense oracle.
            Err(LpError::IterationLimit) => {
                self.warm = None;
                self.stats.cold_starts += 1;
                let sol = lp.problem.solve()?;
                Ok(lp.extract(&sol, subset_len))
            }
            Err(e) => Err(e),
        }
    }

    /// Re-aims the cached basis at `lp`'s row/column layout.
    fn translate(&self, lp: &SlotLp) -> Option<BasisSnapshot> {
        let cache = self.warm.as_ref()?;
        if lp.row_keys.is_empty() {
            return None;
        }
        let cached: HashMap<RowKey, KeyCol> = cache.iter().copied().collect();
        let var_index: HashMap<VarKey, usize> = lp
            .var_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i))
            .collect();
        let row_index: HashMap<RowKey, usize> = lp
            .row_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i))
            .collect();
        let mut cols: Vec<BasisCol> = Vec::with_capacity(lp.row_keys.len());
        for (r, rk) in lp.row_keys.iter().enumerate() {
            let carried = match cached.get(rk) {
                Some(KeyCol::Var(vk)) => var_index.get(vk).map(|&v| BasisCol::Structural(v)),
                Some(KeyCol::Slack(srk)) => row_index.get(srk).map(|&i| BasisCol::Slack(i)),
                None => None,
            };
            // A row with no surviving basis member starts on its own slack
            // — exactly what a cold basis would assign it.
            cols.push(carried.unwrap_or(BasisCol::Slack(r)));
        }
        // Column deltas can collapse two rows onto one column (e.g. both
        // inherit the same survivor). Later claimants degrade to their own
        // slack; if even that is taken the duplicate stays — the installer
        // dedups and unit-fills, so a clash only weakens the hint.
        let mut used: HashSet<BasisCol> = HashSet::with_capacity(cols.len());
        for (r, c) in cols.iter_mut().enumerate() {
            if !used.insert(*c) {
                let own = BasisCol::Slack(r);
                if used.insert(own) {
                    *c = own;
                }
            }
        }
        Some(BasisSnapshot { cols })
    }

    /// Stores the optimal basis keyed by stable identities.
    fn remember(&mut self, lp: &SlotLp, basis: &BasisSnapshot) {
        let mut keyed = Vec::with_capacity(basis.cols.len());
        for (r, &col) in basis.cols.iter().enumerate() {
            let key = match col {
                BasisCol::Structural(v) => KeyCol::Var(lp.var_keys[v]),
                BasisCol::Slack(row) => KeyCol::Slack(lp.row_keys[row]),
                // The slot LP is all-`≤`, so these blocks are empty; treat
                // defensively as the row's own slack.
                BasisCol::Surplus(_) | BasisCol::Artificial(_) => KeyCol::Slack(lp.row_keys[r]),
            };
            keyed.push((lp.row_keys[r], key));
        }
        self.warm = Some(keyed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(3).build();
        let requests = WorkloadBuilder::new(&topo).seed(3).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn builds_and_solves() {
        let inst = instance(12, 4);
        let subset: Vec<usize> = (0..12).collect();
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        assert!(lp.var_count() > 0);
        let frac = lp.solve(subset.len()).unwrap();
        assert!(frac.objective() > 0.0);
        // Masses respect Constraint (9).
        for j in 0..12 {
            assert!(frac.mass(j) <= 1.0 + 1e-6, "mass({j}) = {}", frac.mass(j));
        }
    }

    #[test]
    fn lp_upper_bounds_total_expected_reward() {
        // With ample capacity the LP should admit everything fully:
        // objective close to the sum of best ER over (i, l=1).
        let inst = instance(3, 4);
        let subset = vec![0, 1, 2];
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let frac = lp.solve(3).unwrap();
        let best_sum: f64 = (0..3)
            .map(|j| {
                inst.topo()
                    .station_ids()
                    .map(|s| inst.expected_reward_at(j, s, 1))
                    .fold(0.0, f64::max)
            })
            .sum();
        assert!(frac.objective() <= best_sum + 1e-6);
        // 3 requests against 4 stations: nearly everything fits.
        assert!(frac.objective() >= 0.9 * best_sum);
    }

    #[test]
    fn truncation_with_share_tightens() {
        let inst = instance(20, 3);
        let subset: Vec<usize> = (0..20).collect();
        let std = SlotLp::build(&inst, &subset, Truncation::Standard)
            .solve(20)
            .unwrap();
        let pt = SlotLp::build(&inst, &subset, Truncation::PerRequestShare { active: 20 })
            .solve(20)
            .unwrap();
        // Tighter truncation cannot increase the LP value... note: smaller
        // per-variable coefficients *loosen* constraint (10); the direction
        // depends on instance. Just check both solve and stay bounded.
        assert!(std.objective().is_finite());
        assert!(pt.objective().is_finite());
    }

    #[test]
    fn empty_subset() {
        let inst = instance(5, 3);
        let lp = SlotLp::build(&inst, &[], Truncation::Standard);
        assert_eq!(lp.var_count(), 0);
        let frac = lp.solve(0).unwrap();
        assert_eq!(frac.objective(), 0.0);
        assert_eq!(frac.request_count(), 0);
    }

    #[test]
    fn solver_kinds_agree_on_objective() {
        let inst = instance(15, 4);
        let subset: Vec<usize> = (0..15).collect();
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let dense = SlotLpSolver::new(SolverKind::Dense).solve(&lp, 15).unwrap();
        let revised = SlotLpSolver::new(SolverKind::Revised)
            .solve(&lp, 15)
            .unwrap();
        assert!(
            (dense.objective() - revised.objective()).abs() < 1e-6,
            "dense {} vs revised {}",
            dense.objective(),
            revised.objective()
        );
    }

    #[test]
    fn warm_cache_carries_across_sliding_subsets() {
        // A sliding window over the request population mimics the per-slot
        // arrival/expiry deltas DynamicRR produces.
        let inst = instance(30, 4);
        let mut warm = SlotLpSolver::new(SolverKind::Revised);
        let mut cold = SlotLpSolver::new(SolverKind::Revised).warm_start(false);
        for start in 0..12 {
            let subset: Vec<usize> = (start..start + 14).collect();
            let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
            let a = warm.solve(&lp, subset.len()).unwrap();
            let b = cold.solve(&lp, subset.len()).unwrap();
            assert!(
                (a.objective() - b.objective()).abs() < 1e-6,
                "slot {start}: warm {} vs cold {}",
                a.objective(),
                b.objective()
            );
        }
        let stats = warm.stats();
        assert_eq!(stats.solves, 12);
        assert!(
            stats.warm_hits >= 8,
            "expected mostly warm starts, got {stats:?}"
        );
        assert_eq!(cold.stats().warm_hits, 0);
    }

    #[test]
    fn warm_solver_survives_subset_shrink_and_growth() {
        let inst = instance(25, 3);
        let mut solver = SlotLpSolver::new(SolverKind::Revised);
        for subset in [
            (0..20).collect::<Vec<usize>>(),
            (5..10).collect(),
            vec![],
            (0..25).collect(),
        ] {
            let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
            let got = solver.solve(&lp, subset.len()).unwrap();
            let fresh = lp.solve(subset.len()).unwrap();
            assert!(
                (got.objective() - fresh.objective()).abs() < 1e-6,
                "subset len {}: {} vs {}",
                subset.len(),
                got.objective(),
                fresh.objective()
            );
        }
    }

    #[test]
    fn reset_clears_the_cache() {
        let inst = instance(10, 3);
        let subset: Vec<usize> = (0..10).collect();
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let mut solver = SlotLpSolver::new(SolverKind::Revised);
        solver.solve(&lp, 10).unwrap();
        solver.reset();
        solver.solve(&lp, 10).unwrap();
        assert_eq!(solver.stats().warm_hits, 0);
        assert_eq!(solver.stats().cold_starts, 2);
    }

    #[test]
    fn subset_indices_are_local() {
        let inst = instance(10, 3);
        let subset = vec![7, 2]; // global ids
        let lp = SlotLp::build(&inst, &subset, Truncation::Standard);
        let frac = lp.solve(2).unwrap();
        assert_eq!(frac.request_count(), 2);
        // Local index 0 corresponds to global request 7.
        let _ = frac.for_request(0);
        let _ = frac.for_request(1);
    }
}
