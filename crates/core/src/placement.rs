//! Distributed task placement (§IV-B).
//!
//! `Appro` consolidates a request's whole pipeline into one station; `Heu`
//! removes that assumption by migrating individual tasks. A
//! [`TaskPlacement`] records, per task `M_{j,k}`, the station executing it,
//! and generalizes Eq. 2's latency: the stream flows
//! `home → s_1 → s_2 → … → s_K → home`, paying one-way transmission on
//! every leg and the per-task processing delay at each host. With every
//! task on one station this collapses to the consolidated round trip
//! `2 · d(home, s)` plus the pipeline's processing time — exactly Eq. 2.

use crate::model::Instance;
use mec_topology::station::StationId;
use mec_topology::units::Latency;
use serde::{Deserialize, Serialize};

/// Per-task station assignment for one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPlacement {
    stations: Vec<StationId>,
}

impl TaskPlacement {
    /// All `k` tasks on one station (the `Appro` assumption).
    ///
    /// # Panics
    ///
    /// Panics if `tasks == 0`.
    pub fn consolidated(station: StationId, tasks: usize) -> Self {
        assert!(tasks >= 1, "pipelines have at least one task");
        Self {
            stations: vec![station; tasks],
        }
    }

    /// Explicit per-task stations.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is empty.
    pub fn new(stations: Vec<StationId>) -> Self {
        assert!(!stations.is_empty(), "pipelines have at least one task");
        Self { stations }
    }

    /// The station executing task `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn station_of(&self, k: usize) -> StationId {
        self.stations[k]
    }

    /// Per-task stations in pipeline order.
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.stations.len()
    }

    /// Whether the whole pipeline sits on one station.
    pub fn is_consolidated(&self) -> bool {
        self.stations.windows(2).all(|w| w[0] == w[1])
    }

    /// Moves task `k` to `target`, returning the modified placement.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn with_task_moved(&self, k: usize, target: StationId) -> Self {
        let mut stations = self.stations.clone();
        stations[k] = target;
        Self { stations }
    }

    /// The generalized Eq.-2 latency of serving request `j` under this
    /// placement with zero waiting: transmission along
    /// `home → s_1 → … → s_K → home` plus per-task processing at each
    /// host. `None` if any leg is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if the placement's task count differs from the request's.
    pub fn latency(&self, instance: &Instance, j: usize) -> Option<Latency> {
        let request = &instance.requests()[j];
        assert_eq!(
            self.stations.len(),
            request.task_count(),
            "placement does not match the request's pipeline"
        );
        let paths = instance.paths();
        let home = request.home();
        let mut total = Latency::ZERO;
        // Transmission legs.
        let mut cursor = home;
        for &s in &self.stations {
            total += paths.delay(cursor, s)?;
            cursor = s;
        }
        total += paths.delay(cursor, home)?;
        // Processing at each host.
        for (task, &s) in request.tasks().iter().zip(&self.stations) {
            total += instance.topo().station(s).unit_proc_delay() * task.complexity();
        }
        Some(total)
    }

    /// Whether this placement meets the request's latency requirement with
    /// zero waiting.
    pub fn feasible(&self, instance: &Instance, j: usize) -> bool {
        self.latency(instance, j)
            .is_some_and(|d| d.as_ms() <= instance.requests()[j].deadline().as_ms() + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::generator::{Shape, TopologyBuilder};
    use mec_workload::WorkloadBuilder;

    fn instance() -> Instance {
        let topo = TopologyBuilder::new(4)
            .shape(Shape::Line)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(2.0, 2.0)
            .build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(0)
            .count(3)
            .tasks_range(4, 4)
            .build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn consolidated_matches_eq2() {
        let inst = instance();
        for j in 0..3 {
            for s in inst.topo().station_ids() {
                let p = TaskPlacement::consolidated(s, inst.requests()[j].task_count());
                assert!(p.is_consolidated());
                let via_placement = p.latency(&inst, j).unwrap();
                let via_eq2 = inst.offline_latency(j, s).unwrap();
                assert!(
                    (via_placement.as_ms() - via_eq2.as_ms()).abs() < 1e-9,
                    "request {j} at {s}: {via_placement} vs {via_eq2}"
                );
            }
        }
    }

    #[test]
    fn migration_adds_the_expected_legs() {
        let inst = instance();
        let j = 0;
        let home = inst.requests()[j].home();
        let base = TaskPlacement::consolidated(home, 4);
        let base_lat = base.latency(&inst, j).unwrap();
        // Move the last task one hop away: adds one outbound and one
        // return leg of 2 ms each (line topology), and the processing
        // delay stays equal (uniform proc range).
        let neighbor = inst.topo().neighbors(home)[0].0;
        let moved = base.with_task_moved(3, neighbor);
        assert!(!moved.is_consolidated());
        assert_eq!(moved.station_of(3), neighbor);
        let moved_lat = moved.latency(&inst, j).unwrap();
        assert!((moved_lat.as_ms() - base_lat.as_ms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn middle_task_migration_pays_two_extra_hops() {
        let inst = instance();
        let j = 0;
        let home = inst.requests()[j].home();
        let base = TaskPlacement::consolidated(home, 4);
        let neighbor = inst.topo().neighbors(home)[0].0;
        // Moving a middle task forces home→nb and nb→home legs around it.
        let moved = base.with_task_moved(1, neighbor);
        let delta =
            moved.latency(&inst, j).unwrap().as_ms() - base.latency(&inst, j).unwrap().as_ms();
        assert!((delta - 4.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_uses_deadline() {
        let inst = instance();
        let p = TaskPlacement::consolidated(0.into(), inst.requests()[0].task_count());
        // 200 ms deadline, single-digit latencies: feasible.
        assert!(p.feasible(&inst, 0));
    }

    #[test]
    #[should_panic(expected = "placement does not match")]
    fn wrong_arity_rejected() {
        let inst = instance();
        let p = TaskPlacement::consolidated(0.into(), 2);
        let _ = p.latency(&inst, 0);
    }
}
