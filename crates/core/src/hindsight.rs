//! Hindsight bound: the value of clairvoyance.
//!
//! None of the paper's algorithms can beat a scheduler that knows every
//! realized `(rate, reward)` *before* assigning. The LP relaxation of that
//! clairvoyant assignment problem is a certified upper bound on the
//! realized reward of **any** policy — the distance to it is the "price of
//! uncertainty" the slot-indexed design tries to shrink.

use crate::model::{Instance, Realizations};
use mec_lp::{Cmp, LpError, Problem, Sense, VarId};

/// Certified upper bound on the realized reward any offline policy can
/// collect on `(instance, realized)`: the LP relaxation of the clairvoyant
/// generalized assignment problem (realized demands packed into realized
/// capacities, realized rewards as the objective).
///
/// # Errors
///
/// Propagates [`LpError`]; the LP is always feasible (assign nothing) and
/// bounded (each request at most once), so errors indicate numerical
/// trouble only.
pub fn hindsight_bound(instance: &Instance, realized: &Realizations) -> Result<f64, LpError> {
    let n = instance.request_count();
    let mut problem = Problem::new(Sense::Maximize);
    let mut vars: Vec<(usize, usize, VarId)> = Vec::new();
    for j in 0..n {
        let outcome = realized.outcome(j);
        for station in instance.feasible_stations(j) {
            // Clairvoyant: the realized reward, earned iff the request is
            // (fractionally) placed.
            let v = problem.add_var(outcome.reward);
            vars.push((j, station.index(), v));
        }
    }
    for j in 0..n {
        let coeffs: Vec<(VarId, f64)> = vars
            .iter()
            .filter(|&&(jj, _, _)| jj == j)
            .map(|&(_, _, v)| (v, 1.0))
            .collect();
        if !coeffs.is_empty() {
            problem.add_constraint(coeffs, Cmp::Le, 1.0);
        }
    }
    for station in instance.topo().station_ids() {
        let coeffs: Vec<(VarId, f64)> = vars
            .iter()
            .filter(|&&(_, s, _)| s == station.index())
            .map(|&(j, _, v)| (v, instance.demand_of(realized.outcome(j).rate).as_mhz()))
            .collect();
        if !coeffs.is_empty() {
            problem.add_constraint(
                coeffs,
                Cmp::Le,
                instance.topo().station(station).capacity().as_mhz(),
            );
        }
    }
    problem.solve().map(|s| s.objective())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use crate::{Appro, Greedy, Heu, HeuKkt, Ocorp, OfflineAlgorithm};
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn world(seed: u64, n: usize) -> (Instance, Realizations) {
        let topo = TopologyBuilder::new(5).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        let instance = Instance::new(topo, requests, InstanceParams::default());
        let realized = Realizations::draw(&instance, seed);
        (instance, realized)
    }

    #[test]
    fn bounds_every_algorithm() {
        for seed in 0..3 {
            let (instance, realized) = world(seed, 40);
            let bound = hindsight_bound(&instance, &realized).unwrap();
            let algos: Vec<Box<dyn OfflineAlgorithm>> = vec![
                Box::new(Appro::new(seed)),
                Box::new(Heu::new(seed)),
                Box::new(HeuKkt::new()),
                Box::new(Ocorp::new()),
                Box::new(Greedy::new()),
            ];
            for algo in algos {
                let reward = algo
                    .solve(&instance, &realized)
                    .unwrap()
                    .metrics()
                    .total_reward();
                assert!(
                    reward <= bound + 1e-6,
                    "{} ({reward}) above the clairvoyant bound ({bound})",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_when_everything_fits() {
        // Tiny workload, roomy network: the bound equals the total
        // realized reward.
        let (instance, realized) = world(7, 4);
        let bound = hindsight_bound(&instance, &realized).unwrap();
        let total: f64 = (0..4).map(|j| realized.outcome(j).reward).sum();
        assert!((bound - total).abs() < 1e-6);
    }

    #[test]
    fn empty_instance_bound_zero() {
        let (instance, realized) = world(1, 0);
        assert_eq!(hindsight_bound(&instance, &realized).unwrap(), 0.0);
    }
}
