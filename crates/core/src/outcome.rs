//! Offline algorithm interface and result type.

use crate::model::{Instance, Realizations};
use mec_sim::Metrics;
use mec_topology::station::StationId;
use std::fmt;
use std::time::Duration;

/// Result of running one offline algorithm on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadOutcome {
    metrics: Metrics,
    /// Per-request serving station (`None` = rejected/ignored).
    assignment: Vec<Option<StationId>>,
    runtime: Duration,
}

impl OffloadOutcome {
    /// Bundles metrics, the per-request assignment, and the wall-clock
    /// runtime of the solve.
    pub fn new(metrics: Metrics, assignment: Vec<Option<StationId>>, runtime: Duration) -> Self {
        Self {
            metrics,
            assignment,
            runtime,
        }
    }

    /// Reward/latency metrics.
    pub const fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The per-request assignment (`None` = not admitted).
    pub fn assignment(&self) -> &[Option<StationId>] {
        &self.assignment
    }

    /// Number of admitted requests.
    pub fn admitted(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Wall-clock runtime of the solve (Fig 3(c)).
    pub const fn runtime(&self) -> Duration {
        self.runtime
    }
}

impl fmt::Display for OffloadOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} admitted | {} | {:.1} ms solve",
            self.admitted(),
            self.metrics,
            self.runtime.as_secs_f64() * 1000.0
        )
    }
}

/// An offline (non-preemptive, §IV) reward-maximization algorithm.
///
/// Implementations must only read `realized.outcome(j)` after committing to
/// admit request `j` — the paper's reveal-on-schedule information model.
pub trait OfflineAlgorithm {
    /// The algorithm's display name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Solves the instance against the given realizations.
    ///
    /// # Errors
    ///
    /// Implementations report solver failures (e.g. LP iteration limits) as
    /// human-readable strings; well-formed instances never fail.
    fn solve(&self, instance: &Instance, realized: &Realizations)
        -> Result<OffloadOutcome, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let mut m = Metrics::new();
        m.record_completion(10.0, 5.0);
        let o = OffloadOutcome::new(
            m,
            vec![Some(StationId(1)), None, Some(StationId(0))],
            Duration::from_millis(3),
        );
        assert_eq!(o.admitted(), 2);
        assert_eq!(o.metrics().total_reward(), 10.0);
        assert_eq!(o.runtime(), Duration::from_millis(3));
        assert!(format!("{o}").contains("2 admitted"));
    }
}
